// pctagg_shell — an interactive (or piped) SQL shell for the percentage
// aggregation library.
//
//   $ ./build/tools/pctagg_shell
//   pctagg> .load sales data/sales.csv
//   pctagg> SELECT state, city, Vpct(salesAmt BY city)
//      ...> FROM sales GROUP BY state, city;
//   pctagg> .explain SELECT store, Hpct(salesAmt BY dweek) FROM sales
//                    GROUP BY store;
//
// Statements may span lines and end with ';'. Dot-commands are single-line:
//   .help                      this text
//   .tables                    list tables
//   .schema <table>            show a table's columns
//   .load <table> <file.csv>   load a CSV file (schema inferred)
//   .save <table> <file.csv>   write a table to CSV
//   .gen <employee|sales|transactionline|census> <name> <rows>
//                              create a synthetic paper workload table
//   .explain <sql>             print the generated evaluation script
//   .olap <sql>                run a Vpct query via the OLAP window baseline
//   .cache <on|off>            toggle the shared-summary cache
//   .timer <on|off>            print per-statement wall-clock time
//   .stats                     dump process metrics (Prometheus text; in
//                              remote mode, the server's via STATS)
//   .remote <host:port>        forward statements to a pctagg_server
//   .local                     drop the remote connection, back to embedded
//   .quit                      exit
//
// In remote mode every statement (and .tables/.schema/.gen/.explain/.olap/
// .cache) is forwarded through the PctProtocol client — the same code path
// pctagg_client uses — so the shell doubles as a protocol smoke test.

#include <cstdio>
#include <unistd.h>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "engine/csv.h"
#include "obs/metrics.h"
#include "pctagg.h"
#include "server/client.h"
#include "workload/generators.h"

namespace {

using pctagg::PctClient;
using pctagg::PctDatabase;
using pctagg::RequestVerb;
using pctagg::Result;
using pctagg::Status;
using pctagg::Table;
using pctagg::WireResponse;

struct ShellState {
  PctDatabase db;
  bool timer = false;
  std::optional<PctClient> remote;
};

std::vector<std::string> SplitWords(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> words;
  std::string word;
  while (in >> word) words.push_back(word);
  return words;
}

void PrintStatus(const Status& status) {
  std::printf("error: %s\n", status.ToString().c_str());
}

void PrintElapsed(const ShellState& state, double millis) {
  if (state.timer) std::printf("elapsed: %.3f ms\n", millis);
}

// Forwards one wire call in remote mode and prints the reply.
void RunRemoteCall(ShellState* state, RequestVerb verb,
                   const std::string& payload) {
  pctagg::Stopwatch timer;
  Result<WireResponse> reply = state->remote->Call(verb, payload);
  double millis = timer.ElapsedMillis();
  if (!reply.ok()) {
    PrintStatus(reply.status());
    std::printf("connection lost, back to embedded mode\n");
    state->remote.reset();
    return;
  }
  if (!reply->status.ok()) {
    PrintStatus(reply->status);
    return;
  }
  if (!reply->body.empty()) std::fputs(reply->body.c_str(), stdout);
  if (verb == RequestVerb::kQuery || verb == RequestVerb::kOlap) {
    std::printf("(%llu rows)\n", (unsigned long long)reply->rows);
  }
  PrintElapsed(*state, millis);
}

void RunStatement(ShellState* state, const std::string& sql) {
  if (state->remote.has_value()) {
    RunRemoteCall(state, RequestVerb::kQuery, sql);
    return;
  }
  pctagg::Stopwatch timer;
  // Execute dispatches: SELECT / EXPLAIN forms to Query, INSERT / COPY to
  // the append path (the shell is single-threaded, so writer exclusivity
  // holds trivially).
  Result<Table> result = state->db.Execute(sql);
  double millis = timer.ElapsedMillis();
  if (!result.ok()) {
    PrintStatus(result.status());
    return;
  }
  std::fputs(result->ToString().c_str(), stdout);
  std::printf("(%zu rows)\n", result->num_rows());
  PrintElapsed(*state, millis);
}

void RunDotCommand(ShellState* state, const std::string& line) {
  PctDatabase* db = &state->db;
  std::vector<std::string> words = SplitWords(line);
  const std::string& cmd = words[0];
  bool remote = state->remote.has_value();
  if (cmd == ".help") {
    std::printf(
        ".tables | .schema <t> | .load <t> <csv> | .save <t> <csv> |\n"
        ".gen <kind> <name> <rows> | .explain <sql> | .olap <sql> |\n"
        ".cache on|off | .timer on|off | .stats | .remote <host:port> |\n"
        ".local | .quit — SQL statements end with ';'\n");
    return;
  }
  if (cmd == ".timer" && words.size() == 2) {
    state->timer = words[1] == "on";
    std::printf("timer %s\n", state->timer ? "on" : "off");
    return;
  }
  if (cmd == ".remote" && words.size() == 2) {
    std::string host = words[1];
    int port = 7477;
    size_t colon = host.rfind(':');
    if (colon != std::string::npos) {
      port = std::atoi(host.c_str() + colon + 1);
      host = host.substr(0, colon);
    }
    Result<PctClient> client = PctClient::Connect(host, port);
    if (!client.ok()) {
      PrintStatus(client.status());
      return;
    }
    state->remote = std::move(client).value();
    std::printf("connected to %s:%d — statements now run remotely\n",
                host.c_str(), port);
    return;
  }
  if (cmd == ".local") {
    if (remote) {
      state->remote->Call(RequestVerb::kQuit, "");
      state->remote.reset();
    }
    std::printf("embedded mode\n");
    return;
  }
  if (cmd == ".tables") {
    if (remote) {
      RunRemoteCall(state, RequestVerb::kTables, "");
      return;
    }
    for (const std::string& name : db->catalog().TableNames()) {
      Result<Table*> t = db->catalog().GetTable(name);
      std::printf("%s (%zu rows, %zu columns)\n", name.c_str(),
                  t.ok() ? (*t)->num_rows() : 0,
                  t.ok() ? (*t)->num_columns() : 0);
    }
    return;
  }
  if (cmd == ".schema" && words.size() == 2) {
    if (remote) {
      RunRemoteCall(state, RequestVerb::kSchema, words[1]);
      return;
    }
    Result<Table*> t = db->catalog().GetTable(words[1]);
    if (!t.ok()) {
      PrintStatus(t.status());
      return;
    }
    std::printf("%s(%s)\n", words[1].c_str(),
                (*t)->schema().ToString().c_str());
    return;
  }
  if (cmd == ".load" && words.size() == 3) {
    if (remote) {
      std::printf(".load is local-only; use .gen in remote mode\n");
      return;
    }
    Result<Table> t = pctagg::ReadCsvFileAuto(words[2]);
    if (!t.ok()) {
      PrintStatus(t.status());
      return;
    }
    size_t rows = t.value().num_rows();
    Status s = db->ReplaceTable(words[1], std::move(t).value());
    if (!s.ok()) {
      PrintStatus(s);
      return;
    }
    std::printf("loaded %zu rows into %s\n", rows, words[1].c_str());
    return;
  }
  if (cmd == ".save" && words.size() == 3) {
    if (remote) {
      std::printf(".save is local-only\n");
      return;
    }
    Result<Table*> t = db->catalog().GetTable(words[1]);
    if (!t.ok()) {
      PrintStatus(t.status());
      return;
    }
    Status s = pctagg::WriteCsvFile(**t, words[2]);
    if (!s.ok()) {
      PrintStatus(s);
      return;
    }
    std::printf("wrote %zu rows to %s\n", (*t)->num_rows(), words[2].c_str());
    return;
  }
  if (cmd == ".gen" && words.size() == 4) {
    if (remote) {
      RunRemoteCall(state, RequestVerb::kGen,
                    words[1] + " " + words[2] + " " + words[3]);
      return;
    }
    size_t n = static_cast<size_t>(std::atoll(words[3].c_str()));
    std::string kind = pctagg::ToLower(words[1]);
    Table t;
    if (kind == "employee") {
      t = pctagg::GenerateEmployee(n);
    } else if (kind == "sales") {
      t = pctagg::GenerateSales(n);
    } else if (kind == "transactionline") {
      t = pctagg::GenerateTransactionLine(n);
    } else if (kind == "census") {
      t = pctagg::GenerateCensusLike(n);
    } else {
      std::printf("unknown workload kind: %s\n", words[1].c_str());
      return;
    }
    Status s = db->ReplaceTable(words[2], std::move(t));
    if (!s.ok()) {
      PrintStatus(s);
      return;
    }
    std::printf("generated %zu %s rows into %s\n", n, kind.c_str(),
                words[2].c_str());
    return;
  }
  if (cmd == ".explain") {
    std::string sql = line.substr(cmd.size());
    if (remote) {
      RunRemoteCall(state, RequestVerb::kExplain, sql);
      return;
    }
    Result<std::string> script = db->Explain(sql);
    if (!script.ok()) {
      PrintStatus(script.status());
      return;
    }
    std::fputs(script->c_str(), stdout);
    return;
  }
  if (cmd == ".olap") {
    std::string sql = line.substr(cmd.size());
    if (remote) {
      RunRemoteCall(state, RequestVerb::kOlap, sql);
      return;
    }
    pctagg::Stopwatch timer;
    Result<Table> t = db->QueryOlapBaseline(sql);
    double millis = timer.ElapsedMillis();
    if (!t.ok()) {
      PrintStatus(t.status());
      return;
    }
    std::fputs(t->ToString().c_str(), stdout);
    PrintElapsed(*state, millis);
    return;
  }
  if (cmd == ".stats") {
    if (remote) {
      RunRemoteCall(state, RequestVerb::kStats, "");
      return;
    }
    std::fputs(pctagg::obs::GlobalMetrics().RenderPrometheus().c_str(),
               stdout);
    return;
  }
  if (cmd == ".cache" && words.size() == 2) {
    if (remote) {
      RunRemoteCall(state, RequestVerb::kSet, "cache " + words[1]);
      return;
    }
    db->EnableSummaryCache(words[1] == "on");
    std::printf("summary cache %s\n", words[1] == "on" ? "enabled" : "disabled");
    return;
  }
  std::printf("unrecognized command (try .help): %s\n", line.c_str());
}

}  // namespace

int main() {
  ShellState state;
  std::string pending;
  std::string line;
  bool interactive = isatty(fileno(stdin));
  if (interactive) {
    std::printf("pctagg shell — Vpct/Hpct percentage aggregations. "
                ".help for commands.\n");
  }
  while (true) {
    if (interactive) {
      const char* prompt = state.remote.has_value() ? "remote> " : "pctagg> ";
      std::fputs(pending.empty() ? prompt : "   ...> ", stdout);
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    // Dot commands are single-line and only valid with no pending SQL.
    if (pending.empty() && !line.empty() && line[0] == '.') {
      if (line == ".quit" || line == ".exit") break;
      RunDotCommand(&state, line);
      continue;
    }
    pending += line;
    pending.push_back('\n');
    if (line.find(';') == std::string::npos) continue;
    std::string sql;
    sql.swap(pending);
    if (sql.find_first_not_of(" \t\n;") == std::string::npos) continue;
    RunStatement(&state, sql);
  }
  return 0;
}
