// pctagg_client — command-line client for the pctagg query service.
//
// One-shot:
//   $ ./build/tools/pctagg_client --connect 127.0.0.1:7477
//         --query "SELECT d1, Vpct(a BY d1) FROM f GROUP BY d1"
//
// Interactive / piped (statements end with ';', dot-commands as in the
// shell's remote mode):
//   $ ./build/tools/pctagg_client --connect 127.0.0.1:7477
//   remote> SELECT state, Vpct(salesAmt BY state) FROM sales GROUP BY state;
//   remote> .tables
//   remote> .set timeout_ms 500
//   remote> .quit

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "server/client.h"

namespace {

using pctagg::PctClient;
using pctagg::RequestVerb;
using pctagg::Result;
using pctagg::WireResponse;

// Prints a server reply: errors to stderr, result CSV / text to stdout.
// Returns false on transport failure (connection unusable).
bool PrintReply(const Result<WireResponse>& reply, bool show_timing) {
  if (!reply.ok()) {
    std::fprintf(stderr, "transport error: %s\n",
                 reply.status().ToString().c_str());
    return false;
  }
  if (!reply->status.ok()) {
    std::fprintf(stderr, "error: %s\n", reply->status.ToString().c_str());
    return true;
  }
  if (!reply->body.empty()) std::fputs(reply->body.c_str(), stdout);
  if (reply->rows > 0 || reply->cols > 0) {
    std::printf("(%llu rows)\n", (unsigned long long)reply->rows);
  }
  if (show_timing) {
    std::printf("server time: %.3f ms\n",
                static_cast<double>(reply->micros) / 1000.0);
  }
  return true;
}

// Maps a client dot-command to a wire call; returns false to quit.
bool RunDotCommand(PctClient* client, const std::string& line,
                   bool* show_timing) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  std::string rest;
  std::getline(in, rest);
  size_t start = rest.find_first_not_of(" \t");
  rest = start == std::string::npos ? "" : rest.substr(start);
  if (cmd == ".quit" || cmd == ".exit") {
    client->Call(RequestVerb::kQuit, "");
    return false;
  }
  if (cmd == ".help") {
    std::printf(
        ".tables | .schema <t> | .explain <sql> | .olap <sql> |\n"
        ".gen <kind> <name> <rows> | .drop <t> | .shard <t> <column> |\n"
        ".set <opt> <val> | .show | .stats | .ping | .timer on|off |\n"
        ".quit — SQL ends with ';'\n");
    return true;
  }
  if (cmd == ".timer") {
    *show_timing = rest == "on";
    std::printf("timer %s\n", *show_timing ? "on" : "off");
    return true;
  }
  RequestVerb verb;
  if (cmd == ".tables") {
    verb = RequestVerb::kTables;
  } else if (cmd == ".schema") {
    verb = RequestVerb::kSchema;
  } else if (cmd == ".explain") {
    verb = RequestVerb::kExplain;
  } else if (cmd == ".olap") {
    verb = RequestVerb::kOlap;
  } else if (cmd == ".gen") {
    verb = RequestVerb::kGen;
  } else if (cmd == ".drop") {
    verb = RequestVerb::kDrop;
  } else if (cmd == ".shard") {
    verb = RequestVerb::kShard;
  } else if (cmd == ".set") {
    verb = RequestVerb::kSet;
  } else if (cmd == ".show") {
    verb = RequestVerb::kShow;
  } else if (cmd == ".stats") {
    verb = RequestVerb::kStats;
  } else if (cmd == ".ping") {
    verb = RequestVerb::kPing;
  } else {
    std::printf("unrecognized command (try .help): %s\n", line.c_str());
    return true;
  }
  return PrintReply(client->Call(verb, rest), *show_timing);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 7477;
  std::string one_shot;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      std::string hp = argv[++i];
      size_t colon = hp.rfind(':');
      if (colon == std::string::npos) {
        host = hp;
      } else {
        host = hp.substr(0, colon);
        port = std::atoi(hp.c_str() + colon + 1);
      }
    } else if (arg == "--query" && i + 1 < argc) {
      one_shot = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--connect host:port] [--query \"sql\"]\n",
                   argv[0]);
      return 2;
    }
  }

  Result<PctClient> client = PctClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect %s:%d: %s\n", host.c_str(), port,
                 client.status().ToString().c_str());
    return 1;
  }

  if (!one_shot.empty()) {
    Result<WireResponse> reply = client->Query(one_shot);
    if (!PrintReply(reply, /*show_timing=*/false)) return 1;
    return reply->status.ok() ? 0 : 1;
  }

  bool interactive = isatty(fileno(stdin));
  bool show_timing = false;
  std::string pending, line;
  while (true) {
    if (interactive) {
      std::fputs(pending.empty() ? "remote> " : "   ...> ", stdout);
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    if (pending.empty() && !line.empty() && line[0] == '.') {
      if (!RunDotCommand(&*client, line, &show_timing)) break;
      continue;
    }
    pending += line;
    pending.push_back('\n');
    if (line.find(';') == std::string::npos) continue;
    std::string sql;
    sql.swap(pending);
    if (sql.find_first_not_of(" \t\n;") == std::string::npos) continue;
    if (!PrintReply(client->Query(sql), show_timing)) break;
  }
  return 0;
}
