#!/usr/bin/env bash
# End-to-end crash-recovery smoke: start pctagg_server with a data directory
# and fsync=always, append rows over the wire, kill -9 the server mid-flight,
# restart it on the same directory, and verify every acknowledged append
# survived. Exercises the full stack the unit tests fork around: real
# process, real sockets, real SIGKILL.
#
# Usage: scripts/recovery_smoke.sh [build-dir]   (default: build)

set -u
cd "$(dirname "$0")/.."

BUILD=${1:-build}
SERVER=$BUILD/tools/pctagg_server
CLIENT=$BUILD/tools/pctagg_client
PORT=${PCTAGG_SMOKE_PORT:-7497}
DATA_DIR=$(mktemp -d /tmp/pctagg_recovery_smoke_XXXXXX)
SERVER_PID=

fail() {
  echo "FAIL: $*" >&2
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  rm -rf "$DATA_DIR"
  exit 1
}

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  rm -rf "$DATA_DIR"
}
trap cleanup EXIT

[ -x "$SERVER" ] || fail "$SERVER not built"
[ -x "$CLIENT" ] || fail "$CLIENT not built"

start_server() {
  "$SERVER" --port "$PORT" --data-dir "$DATA_DIR/db" --wal-fsync always &
  SERVER_PID=$!
  for _ in $(seq 1 50); do
    if printf '.ping\n.quit\n' | "$CLIENT" --connect 127.0.0.1:"$PORT" \
        >/dev/null 2>&1; then
      return 0
    fi
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server died during startup"
    sleep 0.1
  done
  fail "server did not start listening"
}

# How many rows the server reports for table `f` ("" when absent).
table_rows() {
  printf '.tables\n.quit\n' | "$CLIENT" --connect 127.0.0.1:"$PORT" 2>/dev/null |
    awk -F, '$1 == "f" { print $2 }'
}

echo "=== phase 1: seed a table and append under fsync=always"
start_server

printf '.gen sales f 5000\n.quit\n' | "$CLIENT" --connect 127.0.0.1:"$PORT" \
  >/dev/null || fail "could not create table"

# 40 acknowledged single-row appends; the client exits nonzero if any errs.
APPENDS=40
for i in $(seq 1 "$APPENDS"); do
  "$CLIENT" --connect 127.0.0.1:"$PORT" --query \
    "INSERT INTO f VALUES ($i, $i, 1, 1, 1, 1, 1, 1, 1, 9.5)" \
    >/dev/null || fail "append $i not acknowledged"
done

ROWS_BEFORE=$(table_rows)
EXPECTED=$((5000 + APPENDS))
[ "$ROWS_BEFORE" = "$EXPECTED" ] ||
  fail "pre-kill row count $ROWS_BEFORE != $EXPECTED"
echo "    $APPENDS appends acknowledged, table at $ROWS_BEFORE rows"

echo "=== phase 2: kill -9, restart on the same data dir"
kill -9 "$SERVER_PID" || fail "kill failed"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=

start_server
ROWS_AFTER=$(table_rows)
[ "$ROWS_AFTER" = "$EXPECTED" ] ||
  fail "recovered row count $ROWS_AFTER != $EXPECTED (lost acknowledged writes)"
echo "    recovered $ROWS_AFTER rows after SIGKILL"

echo "=== phase 3: the recovered table still appends and queries"
"$CLIENT" --connect 127.0.0.1:"$PORT" --query \
  "INSERT INTO f VALUES (0, 0, 1, 1, 1, 1, 1, 1, 1, 1.0)" >/dev/null ||
  fail "post-recovery append failed"
"$CLIENT" --connect 127.0.0.1:"$PORT" --query \
  "SELECT state, Vpct(salesAmt BY state) AS pct FROM f GROUP BY state" \
  >/dev/null || fail "post-recovery query failed"
[ "$(table_rows)" = "$((EXPECTED + 1))" ] || fail "post-recovery append lost"

echo "=== phase 4: graceful shutdown checkpoints and restarts clean"
kill -TERM "$SERVER_PID" || fail "SIGTERM failed"
for _ in $(seq 1 50); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$SERVER_PID" 2>/dev/null && fail "server did not exit on SIGTERM"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=
[ -f "$DATA_DIR/db/CLEAN" ] || fail "no clean-shutdown marker after SIGTERM"

start_server
[ "$(table_rows)" = "$((EXPECTED + 1))" ] || fail "rows lost across clean restart"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=

echo "recovery smoke passed"
