#!/usr/bin/env bash
# Local dry-run of .github/workflows/ci.yml: runs each CI job's commands with
# whatever toolchain this machine has, and *skips* (rather than fails) jobs
# whose tools are missing — clang, ccache, clang-format and clang-tidy are
# present on the CI image but not necessarily here. Exit code is nonzero only
# when a job that could run failed.
#
# Usage: scripts/ci_dry_run.sh [--quick]
#   --quick   gcc Release only (skip the Debug leg and the sanitizers)

set -u
cd "$(dirname "$0")/.."

QUICK=0
[ "${1:-}" = "--quick" ] && QUICK=1

FAILED=()
SKIPPED=()

note() { printf '\n=== %s ===\n' "$*"; }

run_job() {  # run_job <name> <cmd...>
  local name=$1
  shift
  note "$name"
  if "$@"; then
    echo "[$name] OK"
  else
    echo "[$name] FAILED"
    FAILED+=("$name")
  fi
}

skip_job() {
  note "$1 — SKIPPED ($2)"
  SKIPPED+=("$1")
}

have() { command -v "$1" >/dev/null 2>&1; }

JOBS="$(nproc 2>/dev/null || echo 2)"

build_and_test() {  # build_and_test <dir> <cc> <cxx> <build_type> [extra cmake args...]
  local dir=$1 cc=$2 cxx=$3 type=$4
  shift 4
  CC=$cc CXX=$cxx cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE="$type" "$@" &&
    cmake --build "$dir" -j"$JOBS" &&
    ctest --test-dir "$dir" -j"$JOBS" --timeout 300 --output-on-failure
  local rc=$?
  # Mirror the CI jobs' trailing ccache-stats step (informational only).
  have ccache && ccache -s
  return $rc
}

# --- build-test matrix -------------------------------------------------------
LAUNCHER=()
if have ccache; then
  LAUNCHER=(-DCMAKE_C_COMPILER_LAUNCHER=ccache -DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

run_job "gcc Release" build_and_test build-ci-gcc-release gcc g++ Release "${LAUNCHER[@]}"
if [ "$QUICK" = 0 ]; then
  run_job "gcc Debug" build_and_test build-ci-gcc-debug gcc g++ Debug "${LAUNCHER[@]}"
  if have clang++; then
    run_job "clang Release" build_and_test build-ci-clang-release clang clang++ Release "${LAUNCHER[@]}"
    run_job "clang Debug" build_and_test build-ci-clang-debug clang clang++ Debug "${LAUNCHER[@]}"
  else
    skip_job "clang matrix" "clang++ not installed"
  fi
fi

# --- sanitizers --------------------------------------------------------------
if [ "$QUICK" = 0 ]; then
  run_job "ASan" build_and_test build-ci-asan gcc g++ Debug -DPCTAGG_SANITIZE=address
  note "TSan"
  if CC=gcc CXX=g++ cmake -B build-ci-tsan -S . -DCMAKE_BUILD_TYPE=Debug \
       -DPCTAGG_SANITIZE=thread &&
     cmake --build build-ci-tsan -j"$JOBS" &&
     ctest --test-dir build-ci-tsan --timeout 600 --output-on-failure \
       -R "server_smoke_tsan|parallel_ops_tsan|lattice_tsan|dist_tsan|mqo_tsan|MetricsTest|MetricsRegistryTest"; then
    echo "[TSan] OK"
  else
    echo "[TSan] FAILED"
    FAILED+=("TSan")
  fi
else
  skip_job "sanitizers" "--quick"
fi

# --- bench smoke matrix ------------------------------------------------------
# Same bench/baseline/env-prefix rows as the bench-smoke matrix in ci.yml.
bench_smoke() {  # bench_smoke <binary> <baseline> <env_prefix>
  cmake --build build-ci-gcc-release -j"$JOBS" --target "$1" &&
    python3 scripts/bench_smoke.py \
      --binary "build-ci-gcc-release/bench/$1" \
      --baseline "$2" \
      --env-prefix "$3" \
      --json-name "$2" \
      --out bench-artifacts \
      --max-regression-pct 25
}

run_job "bench smoke (parallel)" bench_smoke bench_parallel_scaling BENCH_parallel.json PCTAGG_PARALLEL_BENCH
run_job "bench smoke (dictionary)" bench_smoke bench_dictionary BENCH_dictionary.json PCTAGG_DICT_BENCH
run_job "bench smoke (append)" bench_smoke bench_append_delta BENCH_append.json PCTAGG_APPEND_BENCH
run_job "bench smoke (fused)" bench_smoke bench_fused BENCH_fused.json PCTAGG_FUSED_BENCH
run_job "bench smoke (persistence)" bench_smoke bench_persistence BENCH_persistence.json PCTAGG_PERSISTENCE
run_job "bench smoke (lattice)" bench_smoke bench_lattice BENCH_lattice.json PCTAGG_LATTICE_BENCH
run_job "bench smoke (shard)" bench_smoke bench_shard BENCH_shard.json PCTAGG_SHARD_BENCH
run_job "bench smoke (mqo)" bench_smoke bench_mqo BENCH_mqo.json PCTAGG_MQO_BENCH

# --- EXPLAIN ANALYZE samples -------------------------------------------------
note "EXPLAIN ANALYZE samples"
if cmake --build build-ci-gcc-release -j"$JOBS" --target pctagg_shell &&
   mkdir -p bench-artifacts &&
   printf '.gen sales sales 100000\nEXPLAIN ANALYZE SELECT state, Vpct(salesAmt BY state) FROM sales GROUP BY state;\nEXPLAIN ANALYZE SELECT state, Hpct(salesAmt BY dweek) FROM sales GROUP BY state;\nEXPLAIN ANALYZE SELECT monthNo, dweek, store, Vpct(salesAmt BY dweek) AS pct, sum(salesAmt) AS s FROM sales GROUP BY CUBE(monthNo, dweek, store);\n.quit\n' \
     | build-ci-gcc-release/tools/pctagg_shell > bench-artifacts/explain_analyze_samples.txt &&
   [ "$(grep -c 'fused-scan:' bench-artifacts/explain_analyze_samples.txt)" -eq 1 ] &&
   [ "$(grep -c 'lattice-rollup:' bench-artifacts/explain_analyze_samples.txt)" -eq 7 ]; then
  echo "[explain samples] OK (one fused scan feeds all 7 rollup levels)"
else
  echo "[explain samples] FAILED"
  FAILED+=("explain samples")
fi

# --- recovery smoke ----------------------------------------------------------
note "recovery smoke (kill -9)"
if cmake --build build-ci-gcc-release -j"$JOBS" --target pctagg_server_bin pctagg_client &&
   scripts/recovery_smoke.sh build-ci-gcc-release; then
  echo "[recovery smoke] OK"
else
  echo "[recovery smoke] FAILED"
  FAILED+=("recovery smoke")
fi

# --- shard smoke -------------------------------------------------------------
note "shard smoke (2 workers + coordinator)"
if cmake --build build-ci-gcc-release -j"$JOBS" --target pctagg_server_bin pctagg_client &&
   scripts/shard_smoke.sh build-ci-gcc-release; then
  echo "[shard smoke] OK"
else
  echo "[shard smoke] FAILED"
  FAILED+=("shard smoke")
fi

# --- format ------------------------------------------------------------------
if have clang-format; then
  note "clang-format (changed files vs HEAD~1)"
  files=$(git diff --name-only --diff-filter=d HEAD~1 -- '*.cc' '*.h')
  if [ -z "$files" ]; then
    echo "no C++ files changed"
  elif echo "$files" | xargs clang-format --dry-run -Werror; then
    echo "[format] OK"
  else
    echo "[format] FAILED"
    FAILED+=("format")
  fi
else
  skip_job "clang-format" "clang-format not installed"
fi

# --- clang-tidy --------------------------------------------------------------
# Mirrors the tidy job: diff-only over changed sources, curated checks from
# the repo-root .clang-tidy with WarningsAsErrors, against the Release
# compile commands.
if have clang-tidy; then
  note "clang-tidy (changed files vs HEAD~1)"
  files=$(git diff --name-only --diff-filter=d HEAD~1 -- \
    'src/*.cc' 'tests/*.cc' 'bench/*.cc')
  if [ -z "$files" ]; then
    echo "no C++ sources changed"
  elif cmake -B build-ci-gcc-release -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null &&
       echo "$files" | xargs clang-tidy -p build-ci-gcc-release --quiet; then
    echo "[tidy] OK"
  else
    echo "[tidy] FAILED"
    FAILED+=("tidy")
  fi
else
  skip_job "clang-tidy" "clang-tidy not installed"
fi

# --- cmake lint --------------------------------------------------------------
# -Wno-error=restrict: gcc 12 raises a bogus -Wrestrict inside libstdc++'s
# char_traits.h on std::string ops at -O2+ (gcc PR105651).
run_job "cmake lint (-Werror)" bash -c "
  cmake --warn-uninitialized -B build-ci-lint -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS='-Werror -Wno-error=restrict' &&
  cmake --build build-ci-lint -j$JOBS"

# --- summary -----------------------------------------------------------------
note "summary"
echo "skipped: ${SKIPPED[*]:-none}"
if [ "${#FAILED[@]}" -gt 0 ]; then
  echo "FAILED: ${FAILED[*]}"
  exit 1
fi
echo "all runnable jobs passed"
