#!/usr/bin/env python3
"""CI bench-smoke regression guard.

Runs a standalone bench binary (bench_parallel_scaling by default; any
binary emitting the same JSON shape, e.g. bench_dictionary with
--env-prefix PCTAGG_DICT_BENCH --json-name BENCH_dictionary.json) at a
reduced size and compares the machine-independent ratio metrics against the
committed baseline at the repository root:

  * aggregate.dop[].speedup_vs_seed — the kernel rewrite's speedup over the
    seed scalar loop, per DOP. Absolute milliseconds vary wildly across CI
    hosts; this ratio is measured seed-vs-new on the *same* host in the same
    process, so it transfers.
  * aggregate.dop[].ms at DOP=1 — the kernel's absolute serial time, as a
    cross-check: the allocation-heavy seed reference loop is the noisiest
    part of the ratio, so a ratio drop with stable absolute time is noise,
    not a regression.

Fails (exit 1) only when BOTH the DOP=1 speedup ratio drops AND the DOP=1
absolute time rises by more than --max-regression-pct versus the committed
baseline — a real kernel regression moves both; host noise moves one.

The fresh JSON and the comparison report land in --out for artifact upload.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile


def load_json(path):
    with open(path) as f:
        return json.load(f)


def by_dop(report, field):
    return {row["dop"]: row[field] for row in report["aggregate"]["dop"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True,
                        help="path to the bench binary")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON to compare against")
    parser.add_argument("--out", default="bench-artifacts",
                        help="directory for the fresh JSON + report")
    parser.add_argument("--env-prefix", default="PCTAGG_PARALLEL_BENCH",
                        help="prefix of the binary's _ROWS/_REPS env vars")
    parser.add_argument("--json-name", default="BENCH_parallel.json",
                        help="JSON file the binary writes into its cwd")
    parser.add_argument("--max-regression-pct", type=float, default=25.0,
                        help="allowed drop in dop=1 speedup_vs_seed")
    parser.add_argument("--rows", type=int, default=None,
                        help="sales rows (default: the baseline's row count — "
                             "speedup_vs_seed grows with input size, so the "
                             "guard is only meaningful at matching size)")
    parser.add_argument("--reps", type=int, default=None,
                        help="repetitions, best-of (default: the baseline's)")
    args = parser.parse_args()

    baseline = load_json(args.baseline)
    if args.reps is None:
        args.reps = baseline.get("repetitions", 3)
    if args.rows is None:
        args.rows = baseline["rows"]
    elif args.rows != baseline["rows"]:
        print("warning: --rows %d differs from the baseline's %d; the "
              "speedup guard may mis-fire" % (args.rows, baseline["rows"]))
    os.makedirs(args.out, exist_ok=True)

    # The binary writes its JSON into its cwd; run it in a scratch directory
    # so the committed baseline is never clobbered.
    env = dict(os.environ)
    env[args.env_prefix + "_ROWS"] = str(args.rows)
    env[args.env_prefix + "_REPS"] = str(args.reps)
    binary = os.path.abspath(args.binary)
    smoke_name = args.json_name.replace(".json", "_smoke.json")
    with tempfile.TemporaryDirectory() as scratch:
        proc = subprocess.run([binary, "--smoke"], cwd=scratch, env=env,
                              stdout=subprocess.PIPE)
        if proc.returncode != 0:
            print("FAIL: bench binary exited %d (its own correctness/budget "
                  "checks or a setup error)" % proc.returncode)
            return 1
        fresh = json.loads(proc.stdout)
        shutil.copy(os.path.join(scratch, args.json_name),
                    os.path.join(args.out, smoke_name))

    base_speedup = by_dop(baseline, "speedup_vs_seed")
    fresh_speedup = by_dop(fresh, "speedup_vs_seed")
    base_ms = by_dop(baseline, "ms")
    fresh_ms = by_dop(fresh, "ms")

    lines = ["bench smoke: %d rows, %d reps (baseline: %d rows)"
             % (args.rows, args.reps, baseline["rows"])]
    failed = False
    for dop in sorted(base_speedup):
        if dop not in fresh_speedup:
            lines.append("dop=%d: MISSING from fresh run" % dop)
            failed = True
            continue
        ratio_pct = ((fresh_speedup[dop] - base_speedup[dop])
                     / base_speedup[dop] * 100.0)
        ms_pct = (fresh_ms[dop] - base_ms[dop]) / base_ms[dop] * 100.0
        # Only DOP=1 is a hard guard: multi-worker rows measure scheduling on
        # whatever core count the CI host happens to have. Both signals must
        # breach the budget — see the module docstring.
        guard = dop == 1
        verdict = "ok"
        if (guard and ratio_pct < -args.max_regression_pct
                and ms_pct > args.max_regression_pct):
            verdict = "FAIL (> %.0f%% regression)" % args.max_regression_pct
            failed = True
        lines.append(
            "dop=%d: speedup_vs_seed %.2f -> %.2f (%+.1f%%), "
            "ms %.2f -> %.2f (%+.1f%%)%s %s"
            % (dop, base_speedup[dop], fresh_speedup[dop], ratio_pct,
               base_ms[dop], fresh_ms[dop], ms_pct,
               " [guard]" if guard else "", verdict))
    lines.append("dop1_regression_pct: baseline %.2f, fresh %.2f"
                 % (baseline["aggregate"]["dop1_regression_pct"],
                    fresh["aggregate"]["dop1_regression_pct"]))

    report = "\n".join(lines) + "\n"
    sys.stdout.write(report)
    with open(os.path.join(args.out, "bench_smoke_report.txt"), "w") as f:
        f.write(report)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
