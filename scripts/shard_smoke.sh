#!/usr/bin/env bash
# End-to-end sharding smoke: start two worker pctagg_server processes and a
# coordinator pointing at them, SHARD a generated table over the wire, and
# verify (1) the sharded answer is byte-identical to the pre-shard answer on
# an INT64 measure, (2) SHOW reports the topology, (3) a sharded table is
# read-only, and (4) killing a worker turns the next query into a typed
# Unavailable instead of a hang. Real processes, real sockets, real SIGKILL
# — the multi-process path the in-process dist_test forks around.
#
# Usage: scripts/shard_smoke.sh [build-dir]   (default: build)

set -u
cd "$(dirname "$0")/.."

BUILD=${1:-build}
SERVER=$BUILD/tools/pctagg_server
CLIENT=$BUILD/tools/pctagg_client
BASE_PORT=${PCTAGG_SHARD_SMOKE_PORT:-7571}
COORD_PORT=$BASE_PORT
W1_PORT=$((BASE_PORT + 1))
W2_PORT=$((BASE_PORT + 2))
SCRATCH=$(mktemp -d /tmp/pctagg_shard_smoke_XXXXXX)
PIDS=()

fail() {
  echo "FAIL: $*" >&2
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null; done
  rm -rf "$SCRATCH"
  exit 1
}

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null; done
  rm -rf "$SCRATCH"
}
trap cleanup EXIT

[ -x "$SERVER" ] || fail "$SERVER not built"
[ -x "$CLIENT" ] || fail "$CLIENT not built"

wait_ready() {  # wait_ready <port> <pid>
  for _ in $(seq 1 50); do
    if printf '.ping\n.quit\n' | "$CLIENT" --connect 127.0.0.1:"$1" \
        >/dev/null 2>&1; then
      return 0
    fi
    kill -0 "$2" 2>/dev/null || fail "server on port $1 died during startup"
    sleep 0.1
  done
  fail "server on port $1 did not start listening"
}

# INT64 measure (itemId) so the distributed merge is bit-identical; ORDER BY
# pins row order against the merge-on-arrival gather.
QUERY="SELECT dweek, state, Vpct(itemId BY state) AS pct, count(*) AS n \
FROM f GROUP BY dweek, state ORDER BY dweek, state"

echo "=== phase 1: two workers + coordinator"
"$SERVER" --port "$W1_PORT" &
PIDS+=($!)
W1_PID=$!
wait_ready "$W1_PORT" "$W1_PID"
"$SERVER" --port "$W2_PORT" &
PIDS+=($!)
W2_PID=$!
wait_ready "$W2_PORT" "$W2_PID"
"$SERVER" --port "$COORD_PORT" \
  --worker 127.0.0.1:"$W1_PORT" --worker 127.0.0.1:"$W2_PORT" &
PIDS+=($!)
COORD_PID=$!
wait_ready "$COORD_PORT" "$COORD_PID"
echo "    workers on $W1_PORT/$W2_PORT, coordinator on $COORD_PORT"

echo "=== phase 2: generate, query, SHARD, re-query"
printf '.gen sales f 20000\n.quit\n' | "$CLIENT" --connect 127.0.0.1:"$COORD_PORT" \
  >/dev/null || fail "could not generate table"

"$CLIENT" --connect 127.0.0.1:"$COORD_PORT" --query "$QUERY" \
  > "$SCRATCH/before.csv" || fail "pre-shard query failed"

printf '.shard f city\n.quit\n' | "$CLIENT" --connect 127.0.0.1:"$COORD_PORT" \
  > "$SCRATCH/shard.txt" 2>&1 || fail "SHARD failed"
grep -q "sharded f" "$SCRATCH/shard.txt" || fail "SHARD not acknowledged"

"$CLIENT" --connect 127.0.0.1:"$COORD_PORT" --query "$QUERY" \
  > "$SCRATCH/after.csv" || fail "post-shard query failed"
diff -q "$SCRATCH/before.csv" "$SCRATCH/after.csv" >/dev/null ||
  fail "sharded answer differs from the single-node answer"
echo "    sharded answer is byte-identical to pre-shard"

echo "=== phase 3: topology in SHOW, sharded table is read-only"
printf '.show\n.quit\n' | "$CLIENT" --connect 127.0.0.1:"$COORD_PORT" \
  > "$SCRATCH/show.txt" || fail ".show failed"
grep -q "dist: 2 workers" "$SCRATCH/show.txt" ||
  fail "SHOW does not report the 2-worker topology"

if "$CLIENT" --connect 127.0.0.1:"$COORD_PORT" --query \
    "INSERT INTO f VALUES (0, 0, 1, 1, 1, 1, 1, 1, 1, 1.0)" \
    > "$SCRATCH/insert.txt" 2>&1; then
  fail "INSERT into a sharded table was accepted"
fi
grep -q "read-only" "$SCRATCH/insert.txt" ||
  fail "INSERT rejection does not explain the table is read-only"
echo "    INSERT rejected with the read-only message"

echo "=== phase 4: kill a worker; queries degrade to typed Unavailable"
kill -9 "$W2_PID" || fail "kill failed"
wait "$W2_PID" 2>/dev/null
if "$CLIENT" --connect 127.0.0.1:"$COORD_PORT" --query "$QUERY" \
    > "$SCRATCH/lost.txt" 2>&1; then
  fail "query succeeded with a dead worker"
fi
grep -q "Unavailable" "$SCRATCH/lost.txt" ||
  fail "shard loss did not surface as Unavailable: $(cat "$SCRATCH/lost.txt")"
grep -q "shard 1" "$SCRATCH/lost.txt" ||
  fail "the error does not name the lost shard: $(cat "$SCRATCH/lost.txt")"
echo "    lost worker reported as: $(head -1 "$SCRATCH/lost.txt")"

echo "shard smoke passed"
