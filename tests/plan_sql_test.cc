// Snapshot-style tests of the generated SQL scripts — the paper's framework
// is a code generator, so the emitted statements are part of the contract.
// Each strategy's script must contain (and not contain) the statements the
// paper prescribes for it.

#include <gtest/gtest.h>

#include "core/horizontal_planner.h"
#include "core/olap_planner.h"
#include "core/vpct_planner.h"
#include "sql/parser.h"

namespace pctagg {
namespace {

Schema FactSchema() {
  return Schema({{"d1", DataType::kInt64},
                 {"d2", DataType::kInt64},
                 {"d3", DataType::kInt64},
                 {"a", DataType::kFloat64}});
}

AnalyzedQuery Analyzed(const std::string& sql) {
  SelectStatement stmt = ParseSelect(sql).value();
  return Analyze(stmt, FactSchema()).value();
}

// Counts non-overlapping occurrences of `needle` in `haystack`.
size_t CountOf(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

constexpr char kVpctSql[] =
    "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2";

TEST(PlanSqlTest, VpctBestStrategyScript) {
  std::string sql = PlanVpctQuery(Analyzed(kVpctSql), VpctStrategy{})
                        .value()
                        .ToSql();
  // Fk from F at the GROUP BY level.
  EXPECT_NE(sql.find("sum(a) AS __psum_1 FROM f GROUP BY d1, d2"),
            std::string::npos)
      << sql;
  // Fj from the partial aggregate Fk (distributivity).
  EXPECT_NE(sql.find("sum(__psum_1) AS __ptot_1 FROM Fk"), std::string::npos);
  // Matching index on the common subkey.
  EXPECT_NE(sql.find("(d1)"), std::string::npos);
  // Division via INSERT-join with the zero guard.
  EXPECT_NE(sql.find("CASE WHEN Fj.__ptot_1 <> 0"), std::string::npos);
  EXPECT_NE(sql.find("JOIN"), std::string::npos);
  EXPECT_EQ(sql.find("UPDATE"), std::string::npos);
}

TEST(PlanSqlTest, VpctUpdateStrategyScript) {
  VpctStrategy s;
  s.insert_result = false;
  std::string sql = PlanVpctQuery(Analyzed(kVpctSql), s).value().ToSql();
  EXPECT_NE(sql.find("UPDATE"), std::string::npos);
  EXPECT_NE(sql.find("SET __psum_1 = CASE WHEN"), std::string::npos);
  EXPECT_NE(sql.find("/* FV = Fk"), std::string::npos);  // no third table
}

TEST(PlanSqlTest, VpctFjFromFScript) {
  VpctStrategy s;
  s.fj_from_fk = false;
  std::string sql = PlanVpctQuery(Analyzed(kVpctSql), s).value().ToSql();
  // The coarse aggregate reads F again, not Fk.
  EXPECT_NE(sql.find("sum(a) AS __ptot_1 FROM f GROUP BY d1"),
            std::string::npos)
      << sql;
}

TEST(PlanSqlTest, VpctMismatchedIndexScript) {
  VpctStrategy s;
  s.matching_indexes = false;
  std::string sql = PlanVpctQuery(Analyzed(kVpctSql), s).value().ToSql();
  // An index is still created, just not on the join subkey.
  EXPECT_NE(sql.find("CREATE INDEX"), std::string::npos);
  EXPECT_NE(sql.find("(__ptot_1)"), std::string::npos);
}

TEST(PlanSqlTest, VpctWhereMaterializesFilteredFact) {
  std::string sql =
      PlanVpctQuery(Analyzed("SELECT d1, d2, Vpct(a BY d2) AS pct FROM f "
                             "WHERE d3 = 1 GROUP BY d1, d2"),
                    VpctStrategy{})
          .value()
          .ToSql();
  EXPECT_NE(sql.find("WHERE d3 = 1"), std::string::npos);
  EXPECT_NE(sql.find("INSERT INTO Fw"), std::string::npos);
}

TEST(PlanSqlTest, VpctMissingRowScripts) {
  VpctStrategy post;
  post.missing_rows = MissingRowPolicy::kPostProcess;
  std::string post_sql =
      PlanVpctQuery(Analyzed(kVpctSql), post).value().ToSql();
  EXPECT_NE(post_sql.find("missing rows over"), std::string::npos);

  VpctStrategy pre;
  pre.missing_rows = MissingRowPolicy::kPreProcess;
  std::string pre_sql = PlanVpctQuery(Analyzed(kVpctSql), pre).value().ToSql();
  EXPECT_NE(pre_sql.find("UNION missing"), std::string::npos);
  EXPECT_NE(pre_sql.find("a = 0"), std::string::npos);
}

TEST(PlanSqlTest, VpctMultiTermScriptHasOneFjPerTerm) {
  std::string sql =
      PlanVpctQuery(Analyzed("SELECT d1, d2, d3, Vpct(a BY d3) AS p1, "
                             "Vpct(a BY d2, d3) AS p2 FROM f "
                             "GROUP BY d1, d2, d3"),
                    VpctStrategy{})
          .value()
          .ToSql();
  EXPECT_EQ(CountOf(sql, "INSERT INTO Fj"), 2u) << sql;
  // Lattice reuse: the coarser Fj reads the finer Fj, not Fk.
  EXPECT_NE(sql.find("FROM Fj"), std::string::npos);
}

constexpr char kHpctSql[] = "SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1";

TEST(PlanSqlTest, HpctDirectCaseScript) {
  HorizontalStrategy s;  // CASE direct
  std::string sql = PlanHorizontalQuery(Analyzed(kHpctSql), s).value().ToSql();
  EXPECT_NE(sql.find("sum(CASE WHEN d2 = v_1..v_N THEN a ELSE 0 END) / sum(a)"),
            std::string::npos)
      << sql;
  EXPECT_EQ(sql.find("SPJ"), std::string::npos);
}

TEST(PlanSqlTest, HpctFromFvScriptEmbedsVpctPlan) {
  HorizontalStrategy s;
  s.method = HorizontalMethod::kCaseFromFV;
  std::string sql = PlanHorizontalQuery(Analyzed(kHpctSql), s).value().ToSql();
  // The vertical percentage subplan appears first...
  EXPECT_NE(sql.find("__psum_1"), std::string::npos);
  EXPECT_NE(sql.find("CASE WHEN Fj.__ptot_1 <> 0"), std::string::npos);
  // ...followed by the transposition of FV.
  EXPECT_NE(sql.find("THEN __pv"), std::string::npos);
}

TEST(PlanSqlTest, SpjScriptMentionsOuterJoinAssembly) {
  HorizontalStrategy s;
  s.method = HorizontalMethod::kSpjDirect;
  std::string sql = PlanHorizontalQuery(Analyzed(kHpctSql), s).value().ToSql();
  EXPECT_NE(sql.find("SPJ: F0 + one F_I per combination"), std::string::npos);
}

TEST(PlanSqlTest, HaggFromFvComputesVerticalAggregateFirst) {
  HorizontalStrategy s;
  s.method = HorizontalMethod::kCaseFromFV;
  std::string sql =
      PlanHorizontalQuery(
          Analyzed("SELECT d1, max(a BY d2) FROM f GROUP BY d1"), s)
          .value()
          .ToSql();
  EXPECT_NE(sql.find("max(a) AS __v FROM f GROUP BY d1, d2"),
            std::string::npos)
      << sql;
}

TEST(PlanSqlTest, AvgFromFvCarriesSumAndCount) {
  HorizontalStrategy s;
  s.method = HorizontalMethod::kCaseFromFV;
  std::string sql =
      PlanHorizontalQuery(
          Analyzed("SELECT d1, avg(a BY d2) FROM f GROUP BY d1"), s)
          .value()
          .ToSql();
  EXPECT_NE(sql.find("sum(a) AS __vs, count(a) AS __vc"), std::string::npos)
      << sql;
}

TEST(PlanSqlTest, OlapScriptUsesWindowsAndDistinct) {
  std::string sql =
      PlanOlapPercentageQuery(Analyzed(kVpctSql)).value().ToSql();
  EXPECT_NE(sql.find("SELECT DISTINCT"), std::string::npos);
  EXPECT_EQ(CountOf(sql, "OVER (PARTITION BY"), 2u) << sql;
  EXPECT_NE(sql.find("sum(a) OVER (PARTITION BY d1, d2) / sum(a) OVER "
                     "(PARTITION BY d1)"),
            std::string::npos)
      << sql;
}

TEST(PlanSqlTest, GrandTotalOlapOmitsPartition) {
  std::string sql = PlanOlapPercentageQuery(
                        Analyzed("SELECT d1, Vpct(a) AS pct FROM f "
                                 "GROUP BY d1"))
                        .value()
                        .ToSql();
  EXPECT_NE(sql.find("/ sum(a) OVER ()"), std::string::npos) << sql;
}

TEST(PlanSqlTest, StepCountsMatchTheFiveStatementNarrative) {
  // The paper notes the from-FV route "incurs overhead from at least five
  // SQL statements"; the direct CASE route is one statement (plus the block
  // handoff).
  HorizontalStrategy direct;
  Plan p_direct = PlanHorizontalQuery(Analyzed(kHpctSql), direct).value();
  HorizontalStrategy via_fv;
  via_fv.method = HorizontalMethod::kCaseFromFV;
  Plan p_fv = PlanHorizontalQuery(Analyzed(kHpctSql), via_fv).value();
  EXPECT_GE(p_fv.num_steps(), p_direct.num_steps() + 3);
}

}  // namespace
}  // namespace pctagg
