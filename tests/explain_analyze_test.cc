// Tests for EXPLAIN ANALYZE: statement-kind parsing, the rendered trace for
// one Vpct and one Hpct strategy on the paper's sales example (golden,
// numbers normalized), and the predicted-vs-actual cost-model fields.

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "core/database.h"
#include "obs/trace.h"
#include "sql/parser.h"
#include "workload/generators.h"

namespace pctagg {
namespace {

constexpr char kVpctSql[] =
    "SELECT state, Vpct(salesAmt BY state) FROM sales GROUP BY state";
constexpr char kHpctSql[] =
    "SELECT state, Hpct(salesAmt BY dweek) FROM sales GROUP BY state";

// Replaces every number (ints, decimals, counter suffixes) with '#' so the
// golden comparison pins the structure — node labels, stat fields, strategy
// names — without depending on timings or exact sizes.
std::string Normalize(const std::string& s) {
  std::string out;
  bool in_number = false;
  for (char c : s) {
    bool numeric =
        std::isdigit(static_cast<unsigned char>(c)) || (in_number && c == '.');
    if (numeric) {
      if (!in_number) out.push_back('#');
      in_number = true;
    } else {
      in_number = false;
      out.push_back(c);
    }
  }
  return out;
}

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable("sales", GenerateSales(400)).ok());
  }
  PctDatabase db_;
};

// --- Statement-kind parsing -------------------------------------------------

TEST(ParseStatementKindTest, RecognizesExplainAndAnalyze) {
  Result<ParsedStatement> plain = ParseStatementKind("SELECT a FROM f");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->explain);
  EXPECT_FALSE(plain->analyze);
  EXPECT_EQ(plain->select_sql, "SELECT a FROM f");

  Result<ParsedStatement> explain =
      ParseStatementKind("EXPLAIN SELECT a FROM f");
  ASSERT_TRUE(explain.ok());
  EXPECT_TRUE(explain->explain);
  EXPECT_FALSE(explain->analyze);
  EXPECT_EQ(explain->select_sql, "SELECT a FROM f");

  Result<ParsedStatement> analyze =
      ParseStatementKind("explain analyze SELECT a FROM f");
  ASSERT_TRUE(analyze.ok());
  EXPECT_TRUE(analyze->explain);
  EXPECT_TRUE(analyze->analyze);
  EXPECT_EQ(analyze->select_sql, "SELECT a FROM f");
}

TEST(ParseStatementKindTest, BareExplainIsAnError) {
  EXPECT_FALSE(ParseStatementKind("EXPLAIN").ok());
  EXPECT_FALSE(ParseStatementKind("EXPLAIN ANALYZE").ok());
}

// --- Golden renders (numbers normalized) ------------------------------------

TEST_F(ExplainAnalyzeTest, VpctGoldenRender) {
  QueryOptions options;
  options.vpct_strategy = VpctStrategy{};  // the paper's best: Fj-from-Fk+INSERT
  Result<std::string> rendered = db_.ExplainAnalyze(kVpctSql, options);
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  EXPECT_EQ(Normalize(*rendered), std::string(
R"(query class: vertical-percentage
strategy: Fj-from-Fk+INSERT+lattice (forced)
cost model: Fj-from-Fk+INSERT=#* Fj-from-F+INSERT=# Fj-from-Fk+UPDATE=# OLAP-window=#  (*=chosen, abstract row-op units)
predicted group rows: #  actual: #
actual row ops: #
total: # ms
plan:
  insert: INSERT INTO Fk_# SELECT state, sum(salesAmt) AS __psum_# FROM sales GROUP BY state
    [wall=#ms cpu=#ms]
    aggregate: keys=packed(#B)
      [rows_in=# rows_out=# morsels=# workers=# hash_groups=# hash_slots=# load=# wall=#ms cpu=#ms]
  insert: INSERT INTO Fj_# SELECT sum(__psum_#) AS __ptot_# FROM Fk_#
    [wall=#ms cpu=#ms]
    aggregate: keys=packed(#B)
      [rows_in=# rows_out=# morsels=# workers=# hash_groups=# hash_slots=# load=# wall=#ms cpu=#ms]
  insert: INSERT INTO FV_# SELECT state, CASE WHEN Fj.__ptot_# <> # THEN Fk.__psum_# / Fj.__ptot_# ELSE NULL END AS vpct_salesAmt FROM Fk_# Fk CROSS JOIN Fj_# Fj
    [wall=#ms cpu=#ms]
)"));
}

TEST_F(ExplainAnalyzeTest, HpctGoldenRender) {
  QueryOptions options;
  HorizontalStrategy h;
  h.method = HorizontalMethod::kCaseDirect;
  options.horizontal_strategy = h;
  Result<std::string> rendered = db_.ExplainAnalyze(kHpctSql, options);
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  EXPECT_EQ(Normalize(*rendered), std::string(
R"(query class: horizontal
strategy: CASE-from-F+hash-dispatch (forced)
cost model: CASE-from-F=#* CASE-from-FV=# SPJ-from-F=# SPJ-from-FV=#  (*=chosen, abstract row-op units)
predicted group rows: #  actual: #
actual row ops: #
total: # ms
plan:
  insert: INSERT INTO FH_# SELECT state, sum(CASE WHEN dweek = v_#v_N THEN salesAmt ELSE # END) / sum(salesAmt), ...xN FROM sales GROUP BY state
    [wall=#ms cpu=#ms]
    pivot: combos=#
      [rows_in=# rows_out=# morsels=# workers=# hash_groups=# hash_slots=# load=# wall=#ms cpu=#ms]
  statement: /* FH = FH_# */
    [wall=#ms cpu=#ms]
)"));
}

// --- Predicted vs actual ----------------------------------------------------

TEST_F(ExplainAnalyzeTest, VpctTracePopulatesPredictedVsActual) {
  obs::QueryTrace trace;
  QueryOptions options;
  options.trace = &trace;
  Result<Table> result = db_.Query(kVpctSql, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(trace.query_class, "vertical-percentage");
  EXPECT_EQ(trace.strategy_source, "advisor");
  EXPECT_NE(trace.strategy.find("Fj-from-"), std::string::npos);
  // Candidates were costed and exactly one is marked chosen.
  ASSERT_GE(trace.predicted_costs.size(), 2u);
  int chosen = 0;
  for (const auto& c : trace.predicted_costs) {
    EXPECT_GT(c.cost, 0.0);
    if (c.chosen) ++chosen;
  }
  EXPECT_EQ(chosen, 1);
  // The cost model predicted |Fk| and the finest aggregate reported it.
  EXPECT_GT(trace.predicted_group_rows, 0.0);
  EXPECT_DOUBLE_EQ(trace.actual_group_rows,
                   static_cast<double>(result->num_rows()));
  EXPECT_GT(trace.ActualRowOps(), 0u);
  // The executed plan has statement nodes with operator children.
  EXPECT_FALSE(trace.root().children.empty());
}

TEST_F(ExplainAnalyzeTest, HpctTracePopulatesPredictedVsActual) {
  obs::QueryTrace trace;
  QueryOptions options;
  options.trace = &trace;
  Result<Table> result = db_.Query(kHpctSql, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(trace.query_class, "horizontal");
  ASSERT_EQ(trace.predicted_costs.size(), 5u);  // CASE/SPJ x F/FV + fused
  int chosen = 0;
  for (const auto& c : trace.predicted_costs) {
    if (c.chosen) ++chosen;
  }
  EXPECT_EQ(chosen, 1);
  EXPECT_GT(trace.predicted_group_rows, 0.0);
  EXPECT_DOUBLE_EQ(trace.actual_group_rows,
                   static_cast<double>(result->num_rows()));
}

// --- Surfacing through Query() ----------------------------------------------

TEST_F(ExplainAnalyzeTest, ExplainAnalyzeThroughQueryReturnsPlanColumn) {
  Result<Table> t = db_.Query(std::string("EXPLAIN ANALYZE ") + kVpctSql);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_columns(), 1u);
  EXPECT_EQ(t->schema().column(0).name, "plan");
  EXPECT_GT(t->num_rows(), 5u);
}

TEST_F(ExplainAnalyzeTest, PlainExplainStillReturnsScript) {
  Result<Table> t = db_.Query(std::string("EXPLAIN ") + kVpctSql);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_columns(), 1u);
  EXPECT_GT(t->num_rows(), 0u);
}

TEST_F(ExplainAnalyzeTest, ForcedStrategyIsReportedAsForced) {
  QueryOptions options;
  options.vpct_strategy = VpctStrategy{};
  obs::QueryTrace trace;
  options.trace = &trace;
  ASSERT_TRUE(db_.Query(kVpctSql, options).ok());
  EXPECT_EQ(trace.strategy_source, "forced");
}

}  // namespace
}  // namespace pctagg
