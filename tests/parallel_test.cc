// Tests for the morsel-driven parallel operator kernels: the dispatcher and
// WaitGroup primitives, the packed key encoding, and — most importantly —
// determinism: parallel aggregate/pivot/join/window output must be
// row-for-row identical to the DOP=1 run across DOP ∈ {2,4,8} and seeds,
// including all-NULL groups and the missing-rows/division-by-zero NULL
// semantics. Everything here runs under the ParallelOps* suites so the
// parallel_ops_tsan ctest target can pin them by name.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/database.h"
#include "engine/aggregate.h"
#include "engine/join.h"
#include "engine/packed_key.h"
#include "engine/parallel.h"
#include "engine/pivot.h"
#include "engine/table_ops.h"
#include "engine/window.h"
#include "workload/generators.h"

namespace pctagg {
namespace {

constexpr size_t kDops[] = {2, 4, 8};

// A randomized fact table big enough to split into several morsels:
// d1(5) x d2(7), int measure m (NULL ~10%, and ALWAYS NULL when d1 == 3 so
// one whole group aggregates to NULL), float measure f.
Table RandomFact(uint64_t seed, size_t n) {
  Rng rng(seed);
  Table t(Schema({{"d1", DataType::kInt64},
                  {"d2", DataType::kInt64},
                  {"m", DataType::kInt64},
                  {"f", DataType::kFloat64}}));
  for (size_t i = 0; i < n; ++i) {
    int64_t d1 = static_cast<int64_t>(rng.Uniform(5));
    Value m = (d1 == 3 || rng.Uniform(10) == 0)
                  ? Value::Null()
                  : Value::Int64(static_cast<int64_t>(rng.Uniform(1000)));
    t.AppendRow({Value::Int64(d1),
                 Value::Int64(static_cast<int64_t>(rng.Uniform(7))), m,
                 Value::Float64(rng.NextDouble() * 100.0)});
  }
  return t;
}

void ExpectTablesIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.schema().column(c).name, b.schema().column(c).name);
    for (size_t r = 0; r < a.num_rows(); ++r) {
      EXPECT_EQ(a.column(c).GetValue(r), b.column(c).GetValue(r))
          << "col " << a.schema().column(c).name << " row " << r;
    }
  }
}

// Same, but numeric cells compare with a relative tolerance — for float
// measures whose parallel sums may reassociate.
void ExpectTablesClose(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    for (size_t r = 0; r < a.num_rows(); ++r) {
      Value va = a.column(c).GetValue(r);
      Value vb = b.column(c).GetValue(r);
      ASSERT_EQ(va.is_null(), vb.is_null()) << "row " << r;
      if (va.is_null()) continue;
      if (va.is_float64() || vb.is_float64()) {
        EXPECT_NEAR(va.AsDouble(), vb.AsDouble(),
                    1e-9 * (1.0 + std::fabs(va.AsDouble())))
            << "col " << c << " row " << r;
      } else {
        EXPECT_EQ(va, vb) << "col " << c << " row " << r;
      }
    }
  }
}

TEST(ParallelOpsWaitGroup, AddDoneWaitAndReuse) {
  WaitGroup wg;
  wg.Wait();  // zero count: returns immediately
  wg.Add(2);
  EXPECT_EQ(wg.count(), 2);
  ThreadPool pool(2);
  pool.Submit([&] { wg.Done(); });
  pool.Submit([&] { wg.Done(); });
  wg.Wait();
  EXPECT_EQ(wg.count(), 0);
  // Reusable after draining.
  wg.Add();
  EXPECT_FALSE(wg.WaitFor(std::chrono::milliseconds(10)));
  wg.Done();
  EXPECT_TRUE(wg.WaitFor(std::chrono::milliseconds(1000)));
}

TEST(ParallelOpsKeys, PackedEncodingIsPrefixFreeAndTyped) {
  Table t(Schema({{"i", DataType::kInt64},
                  {"f", DataType::kFloat64},
                  {"s", DataType::kString}}));
  t.AppendRow({Value::Int64(5), Value::Float64(5.0), Value::String("ab")});
  t.AppendRow({Value::Null(), Value::Null(), Value::String("")});
  t.AppendRow({Value::Int64(0), Value::Float64(0.0), Value::Null()});

  auto key_of = [&](const std::vector<size_t>& cols, size_t row) {
    std::string k;
    KeyEncoder(t, cols).AppendKey(row, &k);
    return k;
  };
  // int64 5 and float64 5.0 stay distinct (type tags).
  EXPECT_NE(key_of({0}, 0), key_of({1}, 0));
  // NULL differs from 0 and from the empty string.
  EXPECT_NE(key_of({0}, 1), key_of({0}, 2));
  EXPECT_NE(key_of({2}, 1), key_of({2}, 2));
  // ("ab","") vs ("a","b"): length prefixes keep concatenations apart.
  Table u(Schema({{"x", DataType::kString}, {"y", DataType::kString}}));
  u.AppendRow({Value::String("ab"), Value::String("")});
  u.AppendRow({Value::String("a"), Value::String("b")});
  std::string k0, k1;
  KeyEncoder enc(u, {0, 1});
  enc.AppendKey(0, &k0);
  enc.AppendKey(1, &k1);
  EXPECT_NE(k0, k1);
  // Identical values encode identically across tables of the same type.
  Table v(Schema({{"z", DataType::kInt64}}));
  v.AppendRow({Value::Int64(5)});
  std::string kv;
  KeyEncoder(v, {0}).AppendKey(0, &kv);
  EXPECT_EQ(key_of({0}, 0), kv);
}

TEST(ParallelOpsKeys, KeyMapAssignsDenseFirstSeenIds) {
  KeyMap m;
  EXPECT_EQ(m.GetOrAdd("a"), (std::pair<size_t, bool>{0, true}));
  EXPECT_EQ(m.GetOrAdd("b"), (std::pair<size_t, bool>{1, true}));
  EXPECT_EQ(m.GetOrAdd("a"), (std::pair<size_t, bool>{0, false}));
  EXPECT_EQ(m.Find("b"), 1u);
  EXPECT_EQ(m.Find("zzz"), SIZE_MAX);
  EXPECT_EQ(m.size(), 2u);
}

TEST(ParallelOpsDispatch, MorselPlanShapes) {
  MorselPlan p = MorselPlan::For(10, 4, 3);
  EXPECT_EQ(p.num_morsels, 4u);  // 3+3+3+1
  EXPECT_EQ(p.num_workers, 4u);
  EXPECT_EQ(p.Begin(3), 9u);
  EXPECT_EQ(p.End(3), 10u);
  // Fewer morsels than dop: workers capped.
  EXPECT_EQ(MorselPlan::For(10, 8, 6).num_workers, 2u);
  // Empty input.
  EXPECT_EQ(MorselPlan::For(0, 8).num_morsels, 0u);
  // Serial.
  EXPECT_EQ(MorselPlan::For(1000, 1).num_workers, 1u);
}

TEST(ParallelOpsDispatch, MorselPlanAutoAdaptiveShapes) {
  // Serial keeps the fixed default granularity.
  MorselPlan serial = MorselPlan::Auto(1 << 20, 1);
  EXPECT_EQ(serial.num_workers, 1u);
  EXPECT_EQ(serial.morsel_rows, kDefaultMorselRows);

  // Workers never exceed what the host can actually run in parallel.
  size_t cpus = AvailableParallelism();
  EXPECT_GE(cpus, 1u);
  EXPECT_LE(MorselPlan::Auto(1 << 22, 64).num_workers, cpus);

  // Adaptive sizing stays inside its bounds and covers every row, across a
  // spread of input sizes and dops.
  for (size_t n : {size_t{0}, size_t{100}, size_t{50000}, size_t{1} << 21}) {
    for (size_t dop : {size_t{2}, size_t{4}, size_t{8}}) {
      MorselPlan p = MorselPlan::Auto(n, dop);
      SCOPED_TRACE("n=" + std::to_string(n) + " dop=" + std::to_string(dop));
      if (p.num_workers > 1) {
        EXPECT_GE(p.morsel_rows, kMinAdaptiveMorselRows);
        EXPECT_LE(p.morsel_rows, kMaxAdaptiveMorselRows);
      }
      EXPECT_EQ(p.num_morsels,
                n == 0 ? 0u : (n + p.morsel_rows - 1) / p.morsel_rows);
      if (p.num_morsels > 0) {
        EXPECT_EQ(p.End(p.num_morsels - 1), n);
      }
      EXPECT_LE(p.num_workers, std::max<size_t>(p.num_morsels, 1));
    }
  }

  // Small inputs collapse to one morsel (the lower bound dominates), so a
  // parallel request degenerates to serial work instead of thread churn.
  EXPECT_EQ(MorselPlan::Auto(10000, 8).num_morsels, 1u);
}

TEST(ParallelOpsDispatch, EveryRowRunsExactlyOnce) {
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  MorselPlan plan = MorselPlan::For(n, 4, 128);
  RunMorsels(plan, [&](size_t worker, size_t begin, size_t end) {
    ASSERT_LT(worker, plan.num_workers);
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "row " << i;
  }
}

// A dispatch from inside a pool task must not deadlock even when every pool
// worker is itself dispatching (the caller self-drains its morsels).
TEST(ParallelOpsDispatch, NestedDispatchFromPoolTasksDoesNotDeadlock) {
  const size_t kTasks = SharedThreadPool().num_threads() * 4;
  WaitGroup wg;
  std::atomic<size_t> total{0};
  for (size_t t = 0; t < kTasks; ++t) {
    wg.Add();
    SharedThreadPool().Submit([&] {
      MorselPlan plan = MorselPlan::For(5000, 4, 64);
      std::atomic<size_t> local{0};
      RunMorsels(plan, [&](size_t, size_t begin, size_t end) {
        local.fetch_add(end - begin);
      });
      total.fetch_add(local.load());
      wg.Done();
    });
  }
  ASSERT_TRUE(wg.WaitFor(std::chrono::milliseconds(60000)));
  EXPECT_EQ(total.load(), kTasks * 5000);
}

TEST(ParallelOpsAggregate, IdenticalToSerialAcrossDopAndSeeds) {
  for (uint64_t seed : {7u, 81u, 2026u}) {
    Table t = RandomFact(seed, 30000);
    auto aggs = [] {
      return std::vector<AggSpec>{{AggFunc::kSum, Col("m"), "s"},
                                  {AggFunc::kCount, Col("m"), "c"},
                                  {AggFunc::kCountStar, nullptr, "n"},
                                  {AggFunc::kAvg, Col("m"), "avg"},
                                  {AggFunc::kMin, Col("m"), "lo"},
                                  {AggFunc::kMax, Col("m"), "hi"}};
    };
    Table serial = HashAggregate(t, {"d1", "d2"}, aggs(), 1).value();
    for (size_t dop : kDops) {
      Table parallel = HashAggregate(t, {"d1", "d2"}, aggs(), dop).value();
      // Integer measures: bit-identical, including group order (first-seen)
      // and the all-NULL d1=3 groups (sum NULL, count 0).
      ExpectTablesIdentical(serial, parallel);
    }
  }
}

TEST(ParallelOpsAggregate, AllNullGroupStaysNull) {
  Table t = RandomFact(11, 20000);
  Table out = HashAggregate(t, {"d1"},
                            {{AggFunc::kSum, Col("m"), "s"},
                             {AggFunc::kCount, Col("m"), "c"}},
                            4)
                  .value();
  bool saw_null_group = false;
  for (size_t r = 0; r < out.num_rows(); ++r) {
    if (!out.column(0).IsNull(r) && out.column(0).Int64At(r) == 3) {
      saw_null_group = true;
      EXPECT_TRUE(out.column(1).IsNull(r));      // sum over all-NULL -> NULL
      EXPECT_EQ(out.column(2).Int64At(r), 0);    // count -> 0
    }
  }
  EXPECT_TRUE(saw_null_group);
}

TEST(ParallelOpsAggregate, FloatSumsCloseToSerial) {
  Table t = RandomFact(29, 30000);
  std::vector<AggSpec> aggs{{AggFunc::kSum, Col("f"), "s"},
                            {AggFunc::kAvg, Col("f"), "avg"},
                            {AggFunc::kMin, Col("f"), "lo"},
                            {AggFunc::kMax, Col("f"), "hi"}};
  Table serial = HashAggregate(t, {"d1", "d2"}, aggs, 1).value();
  for (size_t dop : kDops) {
    Table parallel = HashAggregate(t, {"d1", "d2"}, aggs, dop).value();
    ExpectTablesClose(serial, parallel);
  }
}

TEST(ParallelOpsAggregate, GlobalGroupAndEmptyInput) {
  Table t = RandomFact(3, 5000);
  Table serial =
      HashAggregate(t, {}, {{AggFunc::kSum, Col("m"), "s"}}, 1).value();
  Table parallel =
      HashAggregate(t, {}, {{AggFunc::kSum, Col("m"), "s"}}, 8).value();
  ExpectTablesIdentical(serial, parallel);

  Table empty(Schema({{"d", DataType::kInt64}, {"m", DataType::kInt64}}));
  Table out =
      HashAggregate(empty, {}, {{AggFunc::kSum, Col("m"), "s"}}, 8).value();
  ASSERT_EQ(out.num_rows(), 1u);  // SQL: global group over zero rows
  EXPECT_TRUE(out.column(0).IsNull(0));
}

TEST(ParallelOpsPivot, IdenticalToSerialAcrossDopAndSeeds) {
  for (uint64_t seed : {5u, 97u}) {
    Table t = RandomFact(seed, 30000);
    PivotOptions options;
    options.func = AggFunc::kSum;
    Table serial =
        HashDispatchPivot(t, {"d1"}, {"d2"}, Col("m"), options, 1).value();
    for (size_t dop : kDops) {
      Table parallel =
          HashDispatchPivot(t, {"d1"}, {"d2"}, Col("m"), options, dop).value();
      ExpectTablesIdentical(serial, parallel);
    }
  }
}

TEST(ParallelOpsPivot, PercentModeDivisionByZeroStaysNull) {
  // Group 0 has only zero/NULL measures -> group total 0 -> every percent
  // cell in that group must be NULL, at every dop.
  Table t(Schema({{"g", DataType::kInt64},
                  {"p", DataType::kInt64},
                  {"m", DataType::kInt64}}));
  Rng rng(13);
  for (size_t i = 0; i < 20000; ++i) {
    int64_t g = static_cast<int64_t>(rng.Uniform(4));
    Value m = g == 0 ? (rng.Uniform(2) == 0 ? Value::Null() : Value::Int64(0))
                     : Value::Int64(1 + static_cast<int64_t>(rng.Uniform(50)));
    t.AppendRow(
        {Value::Int64(g), Value::Int64(static_cast<int64_t>(rng.Uniform(3))),
         m});
  }
  PivotOptions options;
  options.percent_of_group_total = true;
  Table serial = HashDispatchPivot(t, {"g"}, {"p"}, Col("m"), options, 1).value();
  for (size_t dop : kDops) {
    Table parallel =
        HashDispatchPivot(t, {"g"}, {"p"}, Col("m"), options, dop).value();
    ExpectTablesIdentical(serial, parallel);
  }
  for (size_t r = 0; r < serial.num_rows(); ++r) {
    if (serial.column(0).Int64At(r) == 0) {
      for (size_t c = 1; c < serial.num_columns(); ++c) {
        EXPECT_TRUE(serial.column(c).IsNull(r));
      }
    }
  }
}

TEST(ParallelOpsPivot, MissingCellSemanticsAcrossDop) {
  // d2 value 6 never occurs with d1=0 -> that cell is NULL (or 0 with
  // default_zero) and must stay so in parallel runs.
  Table t(Schema({{"d1", DataType::kInt64},
                  {"d2", DataType::kInt64},
                  {"m", DataType::kInt64}}));
  Rng rng(17);
  for (size_t i = 0; i < 20000; ++i) {
    int64_t d1 = static_cast<int64_t>(rng.Uniform(3));
    int64_t d2 = static_cast<int64_t>(rng.Uniform(6));
    if (d1 == 0 && d2 == 5) d2 = 4;  // carve the hole
    t.AppendRow({Value::Int64(d1), Value::Int64(d2),
                 Value::Int64(static_cast<int64_t>(rng.Uniform(100)))});
  }
  for (bool default_zero : {false, true}) {
    PivotOptions options;
    options.default_zero = default_zero;
    Table serial =
        HashDispatchPivot(t, {"d1"}, {"d2"}, Col("m"), options, 1).value();
    for (size_t dop : kDops) {
      Table parallel =
          HashDispatchPivot(t, {"d1"}, {"d2"}, Col("m"), options, dop).value();
      ExpectTablesIdentical(serial, parallel);
    }
  }
}

TEST(ParallelOpsJoin, ProbeIdenticalToSerialWithAndWithoutIndex) {
  Table left = RandomFact(23, 25000);
  // Right side: one row per (d1, d2), minus the d1=0 groups so left-outer
  // probes actually produce unmatched rows (NULL right-side outputs).
  Table right =
      Filter(HashAggregate(left, {"d1", "d2"},
                           {{AggFunc::kSum, Col("m"), "tot"}}, 1)
                 .value(),
             Ne(Col("d1"), Lit(Value::Int64(0))))
          .value();
  std::vector<JoinOutput> outputs = {
      {JoinOutput::Side::kLeft, "d1", ""},
      {JoinOutput::Side::kLeft, "m", ""},
      {JoinOutput::Side::kRight, "tot", "tot"}};
  HashIndex index = HashIndex::Build(right, {"d1", "d2"}).value();
  for (JoinKind kind : {JoinKind::kInner, JoinKind::kLeftOuter}) {
    ScopedParallelism serial_scope(1);
    Table serial = HashJoin(left, right, {"d1", "d2"}, {"d1", "d2"}, kind,
                            outputs, nullptr, false)
                       .value();
    for (size_t dop : kDops) {
      ScopedParallelism scope(dop);
      Table parallel = HashJoin(left, right, {"d1", "d2"}, {"d1", "d2"}, kind,
                                outputs, nullptr, false)
                           .value();
      ExpectTablesIdentical(serial, parallel);
      Table indexed = HashJoin(left, right, {"d1", "d2"}, {"d1", "d2"}, kind,
                               outputs, &index, false)
                          .value();
      ExpectTablesIdentical(serial, indexed);
    }
  }
}

TEST(ParallelOpsJoin, LookupColumnIdenticalToSerial) {
  Table left = RandomFact(31, 25000);
  Table right = HashAggregate(left, {"d1"},
                              {{AggFunc::kSum, Col("m"), "tot"}}, 1)
                    .value();
  Column serial = [&] {
    ScopedParallelism scope(1);
    return LookupColumn(left, right, {"d1"}, {"d1"}, "tot", nullptr).value();
  }();
  for (size_t dop : kDops) {
    ScopedParallelism scope(dop);
    Column parallel =
        LookupColumn(left, right, {"d1"}, {"d1"}, "tot", nullptr).value();
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t r = 0; r < serial.size(); ++r) {
      EXPECT_EQ(serial.GetValue(r), parallel.GetValue(r)) << "row " << r;
    }
  }
}

TEST(ParallelOpsWindow, PartitionAggregateIdenticalToSerial) {
  Table t = RandomFact(41, 30000);
  Column serial = [&] {
    ScopedParallelism scope(1);
    return WindowAggregate(t, {"d1", "d2"}, AggFunc::kSum, Col("m")).value();
  }();
  for (size_t dop : kDops) {
    ScopedParallelism scope(dop);
    Column parallel =
        WindowAggregate(t, {"d1", "d2"}, AggFunc::kSum, Col("m")).value();
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t r = 0; r < serial.size(); ++r) {
      EXPECT_EQ(serial.GetValue(r), parallel.GetValue(r)) << "row " << r;
    }
  }
}

// End-to-end: the same Vpct / Hpct / OLAP queries through PctDatabase at
// DOP 1 vs parallel settings, exercising the full planner path including
// missing-rows handling and the percentage division.
TEST(ParallelOpsEndToEnd, QueriesMatchSerialAcrossDop) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("sales", GenerateSales(40000)).ok());
  const char* queries[] = {
      "SELECT monthNo, dweek, Vpct(salesAmt BY dweek) AS pct FROM sales "
      "GROUP BY monthNo, dweek ORDER BY monthNo, dweek",
      "SELECT dweek, Hpct(salesAmt BY monthNo) FROM sales GROUP BY dweek "
      "ORDER BY dweek",
  };
  for (const char* sql : queries) {
    QueryOptions serial_options;
    serial_options.degree_of_parallelism = 1;
    Result<Table> serial = db.Query(sql, serial_options);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (size_t dop : kDops) {
      QueryOptions options;
      options.degree_of_parallelism = dop;
      Result<Table> parallel = db.Query(sql, options);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      // salesAmt is a float measure: sums may reassociate.
      ExpectTablesClose(serial.value(), parallel.value());
    }
  }
  // The OLAP window baseline takes its own plan shape.
  QueryOptions olap1;
  olap1.olap_baseline = true;
  olap1.degree_of_parallelism = 1;
  const char* olap_sql =
      "SELECT dweek, Vpct(salesAmt) AS pct FROM sales GROUP BY dweek "
      "ORDER BY dweek";
  Result<Table> serial = db.Query(olap_sql, olap1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  QueryOptions olap4 = olap1;
  olap4.degree_of_parallelism = 4;
  Result<Table> parallel = db.Query(olap_sql, olap4);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ExpectTablesClose(serial.value(), parallel.value());
}

// dop=0 resolves to the shared pool's size ("auto").
TEST(ParallelOpsEndToEnd, AutoDopResolvesToPoolSize) {
  {
    ScopedParallelism scope(0);
    EXPECT_EQ(CurrentDop(), SharedThreadPool().num_threads());
  }
  EXPECT_EQ(CurrentDop(), 1u);
}

}  // namespace
}  // namespace pctagg
