// Unit tests for the Value scalar type and the typed nullable Column.

#include <gtest/gtest.h>

#include "engine/column.h"
#include "engine/value.h"

namespace pctagg {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_int64());
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_EQ(Value::Int64(42).int64(), 42);
  EXPECT_DOUBLE_EQ(Value::Float64(2.5).float64(), 2.5);
  EXPECT_EQ(Value::String("x").string(), "x");
}

TEST(ValueTest, AsDoubleWidens) {
  EXPECT_DOUBLE_EQ(Value::Int64(3).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Float64(3.5).AsDouble(), 3.5);
}

TEST(ValueTest, Matches) {
  EXPECT_TRUE(Value::Int64(1).Matches(DataType::kInt64));
  EXPECT_FALSE(Value::Int64(1).Matches(DataType::kString));
  EXPECT_TRUE(Value::String("a").Matches(DataType::kString));
  EXPECT_FALSE(Value::Null().Matches(DataType::kInt64));
}

TEST(ValueTest, SqlEqualsNullNeverEqual) {
  EXPECT_FALSE(Value::Null().SqlEquals(Value::Null()));
  EXPECT_FALSE(Value::Null().SqlEquals(Value::Int64(0)));
}

TEST(ValueTest, SqlEqualsCrossNumeric) {
  EXPECT_TRUE(Value::Int64(2).SqlEquals(Value::Float64(2.0)));
  EXPECT_FALSE(Value::Int64(2).SqlEquals(Value::Float64(2.5)));
  EXPECT_FALSE(Value::Int64(2).SqlEquals(Value::String("2")));
}

TEST(ValueTest, ToStringQuotesStrings) {
  EXPECT_EQ(Value::String("ab").ToString(), "'ab'");
  EXPECT_EQ(Value::Int64(-3).ToString(), "-3");
  EXPECT_EQ(Value::Float64(0.25).ToString(), "0.25");
}

TEST(ValueTest, ToStringEscapesEmbeddedQuotes) {
  // SQL-style doubling, so the rendering is a valid literal the parser (and
  // generated trace SQL) can round-trip.
  EXPECT_EQ(Value::String("O'Brien").ToString(), "'O''Brien'");
  EXPECT_EQ(Value::String("'").ToString(), "''''");
  EXPECT_EQ(Value::String("a''b").ToString(), "'a''''b'");
  EXPECT_EQ(Value::String("").ToString(), "''");
}

TEST(ColumnTest, AppendAndRead) {
  Column c(DataType::kInt64);
  c.AppendInt64(1);
  c.AppendNull();
  c.AppendInt64(3);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_EQ(c.Int64At(0), 1);
  EXPECT_EQ(c.Int64At(2), 3);
  EXPECT_EQ(c.GetValue(1), Value::Null());
  EXPECT_EQ(c.GetValue(2), Value::Int64(3));
}

TEST(ColumnTest, AppendValueTypeChecked) {
  Column c(DataType::kString);
  EXPECT_TRUE(c.AppendValue(Value::String("a")).ok());
  EXPECT_TRUE(c.AppendValue(Value::Null()).ok());
  Status bad = c.AppendValue(Value::Int64(1));
  EXPECT_EQ(bad.code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(c.size(), 2u);
}

TEST(ColumnTest, Float64AcceptsIntWidening) {
  Column c(DataType::kFloat64);
  EXPECT_TRUE(c.AppendValue(Value::Int64(2)).ok());
  EXPECT_DOUBLE_EQ(c.Float64At(0), 2.0);
}

TEST(ColumnTest, NumericAt) {
  Column i(DataType::kInt64);
  i.AppendInt64(4);
  EXPECT_DOUBLE_EQ(i.NumericAt(0), 4.0);
  Column f(DataType::kFloat64);
  f.AppendFloat64(1.5);
  EXPECT_DOUBLE_EQ(f.NumericAt(0), 1.5);
}

TEST(ColumnTest, AppendFromCopiesAndWidens) {
  Column src(DataType::kInt64);
  src.AppendInt64(7);
  src.AppendNull();
  Column dst(DataType::kFloat64);
  dst.AppendFrom(src, 0);
  dst.AppendFrom(src, 1);
  EXPECT_DOUBLE_EQ(dst.Float64At(0), 7.0);
  EXPECT_TRUE(dst.IsNull(1));
}

TEST(ColumnTest, SetValue) {
  Column c(DataType::kFloat64);
  c.AppendFloat64(1.0);
  c.AppendFloat64(2.0);
  EXPECT_TRUE(c.SetValue(0, Value::Float64(9.0)).ok());
  EXPECT_TRUE(c.SetValue(1, Value::Null()).ok());
  EXPECT_DOUBLE_EQ(c.Float64At(0), 9.0);
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_FALSE(c.SetValue(5, Value::Float64(0)).ok());
  EXPECT_EQ(c.SetValue(0, Value::String("x")).code(),
            StatusCode::kTypeMismatch);
}

TEST(ColumnTest, KeyBytesDistinguishValues) {
  Column c(DataType::kInt64);
  c.AppendInt64(1);
  c.AppendInt64(2);
  c.AppendNull();
  c.AppendInt64(1);
  std::string k0, k1, k2, k3;
  c.AppendKeyBytes(0, &k0);
  c.AppendKeyBytes(1, &k1);
  c.AppendKeyBytes(2, &k2);
  c.AppendKeyBytes(3, &k3);
  EXPECT_NE(k0, k1);
  EXPECT_NE(k0, k2);
  EXPECT_EQ(k0, k3);
}

TEST(ColumnTest, KeyBytesNullDistinctFromZero) {
  Column c(DataType::kInt64);
  c.AppendInt64(0);
  c.AppendNull();
  std::string zero, null;
  c.AppendKeyBytes(0, &zero);
  c.AppendKeyBytes(1, &null);
  EXPECT_NE(zero, null);
}

TEST(ColumnTest, KeyBytesStringsWithEmbeddedData) {
  // String key bytes carry the dictionary code, so within one column (or
  // columns sharing a dictionary) equal strings — and only equal strings —
  // produce equal bytes, including strings that are prefixes of each other.
  Column c(DataType::kString);
  c.AppendString("ab");
  c.AppendString("a");
  c.AppendString("b");
  c.AppendString("a");
  std::string ka, kb, kc, ka2;
  c.AppendKeyBytes(0, &ka);
  c.AppendKeyBytes(1, &kb);
  c.AppendKeyBytes(2, &kc);
  c.AppendKeyBytes(3, &ka2);
  EXPECT_NE(ka, kb);
  EXPECT_NE(kb, kc);
  EXPECT_EQ(kb, ka2);
  // Fixed-width codes prevent "ab"+"b" colliding with "a"+"bb" when both
  // keys concatenate columns of the same (shared-dictionary) column set.
  std::string two_cols_1 = ka;
  c.AppendKeyBytes(2, &two_cols_1);  // "ab","b"
  std::string two_cols_2 = kb;
  c.AppendKeyBytes(0, &two_cols_2);  // "a","ab"
  EXPECT_NE(two_cols_1, two_cols_2);
}

TEST(ColumnTest, DictionaryRoundTripWithNullsAndEmpties) {
  Column c(DataType::kString);
  c.AppendString("x");
  c.AppendNull();
  c.AppendString("");  // empty string is a value, distinct from NULL
  c.AppendString("x");
  c.AppendString("y");
  ASSERT_EQ(c.size(), 5u);
  EXPECT_EQ(c.StringAt(0), "x");
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_EQ(c.StringAt(2), "");
  EXPECT_EQ(c.GetValue(2), Value::String(""));
  EXPECT_EQ(c.GetValue(1), Value::Null());
  // Duplicates intern to the same code; distinct values get distinct codes.
  EXPECT_EQ(c.codes()[0], c.codes()[3]);
  EXPECT_NE(c.codes()[0], c.codes()[4]);
  EXPECT_EQ(c.dict()->size(), 3u);  // "x", "", "y"
}

TEST(ColumnTest, DictionaryDuplicateHeavyAndAllDistinct) {
  Column dup(DataType::kString);
  for (int i = 0; i < 1000; ++i) dup.AppendString(i % 2 ? "odd" : "even");
  EXPECT_EQ(dup.dict()->size(), 2u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(dup.StringAt(i), i % 2 ? "odd" : "even");
  }
  // All-distinct crosses the dictionary's first chunk boundary (1024).
  Column uniq(DataType::kString);
  const int kN = 3000;
  for (int i = 0; i < kN; ++i) uniq.AppendString("v" + std::to_string(i));
  EXPECT_EQ(uniq.dict()->size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(uniq.StringAt(i), "v" + std::to_string(i)) << i;
  }
}

TEST(ColumnTest, AppendFromSharesDictionary) {
  Column src(DataType::kString);
  src.AppendString("a");
  src.AppendString("b");
  src.AppendNull();
  Column dst(DataType::kString);
  dst.AppendFrom(src, 1);  // fresh empty column adopts the source dictionary
  dst.AppendFrom(src, 2);
  dst.AppendFrom(src, 0);
  EXPECT_EQ(dst.dict(), src.dict());
  EXPECT_EQ(dst.StringAt(0), "b");
  EXPECT_TRUE(dst.IsNull(1));
  EXPECT_EQ(dst.StringAt(2), "a");
  EXPECT_EQ(dst.codes()[0], src.codes()[1]);  // codes copied verbatim
}

TEST(ColumnTest, AppendFromForeignDictionaryReinterns) {
  Column a(DataType::kString);
  a.AppendString("only-in-a");
  Column b(DataType::kString);
  b.AppendString("only-in-b");  // b's dictionary is no longer empty
  b.AppendFrom(a, 0);           // cannot adopt: must re-intern by value
  EXPECT_NE(b.dict(), a.dict());
  EXPECT_EQ(b.StringAt(1), "only-in-a");
  EXPECT_EQ(b.dict()->size(), 2u);
}

}  // namespace
}  // namespace pctagg
