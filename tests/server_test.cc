// Tests for the query service: PctProtocol framing, the QueryExecutor's
// admission/timeout/reader-writer discipline, and full client/server round
// trips over loopback TCP. The ServerSmoke suite doubles as the TSan smoke
// target registered by tests/CMakeLists.txt under PCTAGG_SANITIZE=thread.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/database.h"
#include "engine/csv.h"
#include "server/client.h"
#include "server/executor.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/session.h"

namespace pctagg {
namespace {

Table RandomFact(uint64_t seed, size_t n) {
  Rng rng(seed);
  Table t(Schema({{"d1", DataType::kInt64},
                  {"d2", DataType::kInt64},
                  {"a", DataType::kFloat64}}));
  t.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    t.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(5))),
                 Value::Int64(static_cast<int64_t>(rng.Uniform(6))),
                 Value::Float64(1.0 + rng.NextDouble() * 9.0)});
  }
  return t;
}

constexpr char kVpctSql[] =
    "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2 "
    "ORDER BY d1, d2";

// --- Protocol framing -------------------------------------------------------

TEST(ProtocolTest, EscapeRoundTrip) {
  std::string nasty = "line1\nline2\r\n back\\slash \\n literal";
  EXPECT_EQ(UnescapeLine(EscapeLine(nasty)), nasty);
  EXPECT_EQ(EscapeLine("plain"), "plain");
}

TEST(ProtocolTest, RequestRoundTrip) {
  WireRequest req{RequestVerb::kQuery, "SELECT *\nFROM f"};
  std::string frame = EncodeRequest(req);
  ASSERT_EQ(frame.back(), '\n');
  // Exactly one frame line: embedded newlines must have been escaped.
  EXPECT_EQ(frame.find('\n'), frame.size() - 1);
  Result<WireRequest> decoded =
      DecodeRequestLine(frame.substr(0, frame.size() - 1));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->verb, RequestVerb::kQuery);
  EXPECT_EQ(decoded->payload, req.payload);
}

TEST(ProtocolTest, VerbsAreCaseInsensitive) {
  Result<WireRequest> decoded = DecodeRequestLine("ping");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->verb, RequestVerb::kPing);
}

TEST(ProtocolTest, MalformedFramesAreTypedErrors) {
  Result<WireRequest> unknown = DecodeRequestLine("FROBNICATE now");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
  Result<WireRequest> empty = DecodeRequestLine("");
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, ResponseRoundTrip) {
  WireResponse resp;
  resp.body = "a,b\n1,2\n";
  resp.rows = 1;
  resp.cols = 2;
  resp.micros = 1234;
  std::string frame = EncodeResponse(resp);
  size_t nl = frame.find('\n');
  ASSERT_NE(nl, std::string::npos);
  size_t body_bytes = 0;
  Result<WireResponse> decoded =
      DecodeResponseHeader(frame.substr(0, nl), &body_bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->status.ok());
  EXPECT_EQ(body_bytes, resp.body.size());
  EXPECT_EQ(decoded->rows, 1u);
  EXPECT_EQ(decoded->cols, 2u);
  EXPECT_EQ(decoded->micros, 1234u);
  EXPECT_EQ(frame.substr(nl + 1), resp.body);
}

TEST(ProtocolTest, ErrorResponsePreservesCodeAndMessage) {
  WireResponse resp;
  resp.status = Status::NotFound("no such table: f\nsecond line");
  std::string frame = EncodeResponse(resp);
  size_t body_bytes = 7;
  Result<WireResponse> decoded = DecodeResponseHeader(
      frame.substr(0, frame.size() - 1), &body_bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(body_bytes, 0u);
  EXPECT_EQ(decoded->status.code(), StatusCode::kNotFound);
  EXPECT_EQ(decoded->status.message(), "no such table: f\nsecond line");
}

TEST(ProtocolTest, StatusCodeNamesRoundTrip) {
  for (StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kAnalysisError, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kTypeMismatch,
        StatusCode::kLimitExceeded, StatusCode::kTimeout,
        StatusCode::kUnavailable, StatusCode::kInternal}) {
    EXPECT_EQ(StatusCodeFromName(StatusCodeName(code)), code);
  }
}

// --- QueryExecutor ----------------------------------------------------------

TEST(ExecutorTest, ParsesCreateTableAs) {
  std::string name, select_sql;
  EXPECT_TRUE(QueryExecutor::ParseCreateTableAs(
      "CREATE TABLE t2 AS SELECT d1 FROM f", &name, &select_sql));
  EXPECT_EQ(name, "t2");
  EXPECT_EQ(select_sql, "SELECT d1 FROM f");
  EXPECT_TRUE(QueryExecutor::ParseCreateTableAs(
      "create table x as select * from f", &name, &select_sql));
  EXPECT_FALSE(QueryExecutor::ParseCreateTableAs("SELECT d1 FROM f", &name,
                                                 &select_sql));
  EXPECT_FALSE(QueryExecutor::ParseCreateTableAs("CREATE TABLE t2", &name,
                                                 &select_sql));
}

TEST(ExecutorTest, ClassifiesWriteStatementsIgnoringSemicolons) {
  EXPECT_TRUE(QueryExecutor::IsWriteStatement("CHECKPOINT"));
  EXPECT_TRUE(QueryExecutor::IsWriteStatement("CHECKPOINT;"));
  EXPECT_TRUE(QueryExecutor::IsWriteStatement("checkpoint"));
  EXPECT_TRUE(QueryExecutor::IsWriteStatement("DROP TABLE f;"));
  EXPECT_TRUE(QueryExecutor::IsAppendStatement("INSERT INTO f VALUES (1);"));
  EXPECT_FALSE(QueryExecutor::IsWriteStatement("SELECT 1;"));
}

TEST(ExecutorTest, CheckpointStatementTakesTheWriterPath) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(1, 100)).ok());
  QueryExecutor executor(&db, ExecutorConfig{2, 8});
  // A bare CHECKPOINT; (as the QUERY verb delivers it) must dispatch to
  // Execute() like other write statements, not down the read-only path.
  Result<Table> r =
      executor.ExecuteStatement("CHECKPOINT;", QueryOptions{}, 0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 1u);
}

TEST(ExecutorTest, RunsStatementsAndCreateTableAs) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(1, 500)).ok());
  QueryExecutor executor(&db, ExecutorConfig{2, 8});
  Result<Table> r = executor.ExecuteStatement(kVpctSql, QueryOptions{}, 0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->num_rows(), 0u);
  Result<Table> ctas = executor.ExecuteStatement(
      "CREATE TABLE agg AS SELECT d1, sum(a) AS s FROM f GROUP BY d1",
      QueryOptions{}, 0);
  ASSERT_TRUE(ctas.ok()) << ctas.status().ToString();
  EXPECT_TRUE(db.catalog().HasTable("agg"));
  EXPECT_EQ(executor.executed(), 2u);
}

TEST(ExecutorTest, AdmissionLimitRejectsWithUnavailable) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(2, 200000)).ok());
  // One worker, one slot: while a long query occupies it, every further
  // statement must bounce with kUnavailable.
  QueryExecutor executor(&db, ExecutorConfig{1, 1});
  std::thread slow([&executor] {
    executor.ExecuteStatement(kVpctSql, QueryOptions{}, 0).ok();
  });
  // Wait until the slow statement actually occupies the slot.
  while (executor.in_flight() == 0) std::this_thread::yield();
  Result<Table> r = executor.ExecuteStatement(
      "SELECT d1 FROM f GROUP BY d1", QueryOptions{}, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(executor.rejected(), 1u);
  slow.join();
}

TEST(ExecutorTest, TimeoutFires) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(3, 300000)).ok());
  QueryExecutor executor(&db, ExecutorConfig{1, 8});
  Result<Table> r = executor.ExecuteStatement(kVpctSql, QueryOptions{}, 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_GE(executor.timed_out(), 1u);
  // The abandoned worker must finish cleanly (executor destructor drains).
}

// --- Session ----------------------------------------------------------------

TEST(SessionTest, ApplySetRoundTrip) {
  Session session(7, 30000);
  EXPECT_EQ(session.timeout_ms(), 30000u);
  ASSERT_TRUE(session.ApplySet("timeout_ms 250").ok());
  EXPECT_EQ(session.timeout_ms(), 250u);
  ASSERT_TRUE(session.ApplySet("timeout_ms default").ok());
  EXPECT_EQ(session.timeout_ms(), 30000u);
  ASSERT_TRUE(session.ApplySet("cache on").ok());
  ASSERT_TRUE(session.query_options().use_summary_cache.has_value());
  EXPECT_TRUE(*session.query_options().use_summary_cache);
  ASSERT_TRUE(session.ApplySet("vpct update").ok());
  ASSERT_TRUE(session.query_options().vpct_strategy.has_value());
  EXPECT_FALSE(session.query_options().vpct_strategy->insert_result);
  ASSERT_TRUE(session.ApplySet("horizontal spj").ok());
  EXPECT_EQ(session.query_options().horizontal_strategy->method,
            HorizontalMethod::kSpjDirect);
  EXPECT_FALSE(session.ApplySet("vpct bogus").ok());
  EXPECT_FALSE(session.ApplySet("nonsense on").ok());
}

// --- End-to-end over loopback TCP -------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(size_t fact_rows, ServerConfig config = ServerConfig{}) {
    ASSERT_TRUE(db_.CreateTable("f", RandomFact(42, fact_rows)).ok());
    config.port = 0;
    server_ = std::make_unique<PctServer>(&db_, config);
    ASSERT_TRUE(server_->Start().ok());
  }

  Result<PctClient> Connect() {
    return PctClient::Connect("127.0.0.1", server_->port());
  }

  PctDatabase db_;
  std::unique_ptr<PctServer> server_;
};

TEST_F(ServerTest, QueryRoundTripMatchesEmbeddedResult) {
  StartServer(2000);
  Table reference = db_.Query(kVpctSql).value();
  Result<PctClient> client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<WireResponse> reply = client->Query(kVpctSql);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply->status.ok()) << reply->status.ToString();
  EXPECT_EQ(reply->rows, reference.num_rows());
  EXPECT_EQ(reply->cols, reference.num_columns());
  EXPECT_EQ(reply->body, FormatCsv(reference));
  EXPECT_GT(reply->micros, 0u);
}

TEST_F(ServerTest, MalformedFrameYieldsTypedErrorAndKeepsSessionAlive) {
  StartServer(100);
  Result<PctClient> client = Connect();
  ASSERT_TRUE(client.ok());
  // Unknown verb.
  Result<WireResponse> bad = client->Call(RequestVerb::kQuery, "");
  // (empty QUERY payload is fine at the framing layer; the parser rejects)
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->status.ok());
  // Bad SQL -> ParseError; unknown table -> NotFound; both leave the
  // connection usable.
  Result<WireResponse> parse_err = client->Query("SELEKT nope");
  ASSERT_TRUE(parse_err.ok());
  EXPECT_EQ(parse_err->status.code(), StatusCode::kParseError);
  Result<WireResponse> not_found =
      client->Query("SELECT x FROM missing GROUP BY x");
  ASSERT_TRUE(not_found.ok());
  EXPECT_EQ(not_found->status.code(), StatusCode::kNotFound);
  Result<WireResponse> pong = client->Ping();
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong->status.ok());
}

TEST_F(ServerTest, UnknownVerbOnRawSocketGetsTypedErrFrame) {
  StartServer(100);
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char frame[] = "FROBNICATE now\n";
  ASSERT_TRUE(WriteAll(fd, std::string(frame)).ok());
  LineReader reader(fd);
  Result<std::string> line = reader.ReadLine();
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  size_t body_bytes = 1;
  Result<WireResponse> decoded = DecodeResponseHeader(*line, &body_bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(body_bytes, 0u);
  ::close(fd);
}

TEST_F(ServerTest, SetTimeoutFiresOverTheWire) {
  StartServer(300000);
  Result<PctClient> client = Connect();
  ASSERT_TRUE(client.ok());
  Result<WireResponse> set = client->Call(RequestVerb::kSet, "timeout_ms 1");
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE(set->status.ok()) << set->status.ToString();
  Result<WireResponse> reply = client->Query(kVpctSql);
  ASSERT_TRUE(reply.ok());
  ASSERT_FALSE(reply->status.ok());
  EXPECT_EQ(reply->status.code(), StatusCode::kTimeout);
  // The session survives and can lift its own deadline again.
  ASSERT_TRUE(client->Call(RequestVerb::kSet, "timeout_ms 0").ok());
}

TEST_F(ServerTest, ConcurrentSessionsSeeConsistentResults) {
  StartServer(2000);
  Table reference = db_.Query(kVpctSql).value();
  std::string expected = FormatCsv(reference);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([this, &expected, &failures] {
      Result<PctClient> client = Connect();
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int q = 0; q < 5; ++q) {
        Result<WireResponse> reply = client->Query(kVpctSql);
        if (!reply.ok() || !reply->status.ok() || reply->body != expected) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server_->sessions_opened(), 8u);
}

TEST_F(ServerTest, GenAndDropTakeTheWriterPath) {
  StartServer(100);
  Result<PctClient> client = Connect();
  ASSERT_TRUE(client.ok());
  Result<WireResponse> gen =
      client->Call(RequestVerb::kGen, "employee emp 1000");
  ASSERT_TRUE(gen.ok());
  ASSERT_TRUE(gen->status.ok()) << gen->status.ToString();
  Result<WireResponse> rows = client->Query(
      "SELECT gender, Vpct(salary BY gender) AS pct FROM emp GROUP BY gender");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->status.ok()) << rows->status.ToString();
  EXPECT_EQ(rows->rows, 2u);
  Result<WireResponse> drop = client->Call(RequestVerb::kDrop, "emp");
  ASSERT_TRUE(drop.ok());
  EXPECT_TRUE(drop->status.ok());
  Result<WireResponse> gone = client->Query(
      "SELECT gender, Vpct(salary BY gender) AS pct FROM emp GROUP BY gender");
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone->status.code(), StatusCode::kNotFound);
}

// --- Observability over the wire --------------------------------------------

// Reads the value of one metric from a Prometheus text dump (0 if absent).
// Value lines start at column 0; HELP/TYPE lines are prefixed with "# ".
uint64_t PromValue(const std::string& body, const std::string& metric) {
  std::string needle = "\n" + metric + " ";
  size_t pos = body.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(body.c_str() + pos + needle.size(), nullptr, 10);
}

TEST_F(ServerTest, StatsCountersAdvanceAcrossScriptedSession) {
  StartServer(500);
  Result<PctClient> client = Connect();
  ASSERT_TRUE(client.ok());
  Result<WireResponse> before = client->Stats();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(before->status.ok()) << before->status.ToString();
  uint64_t executed0 =
      PromValue(before->body, "pctagg_server_statements_executed_total");
  uint64_t latency0 =
      PromValue(before->body, "pctagg_server_query_latency_micros_count");

  for (int i = 0; i < 3; ++i) {
    Result<WireResponse> r = client->Query(kVpctSql);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->status.ok()) << r->status.ToString();
  }

  Result<WireResponse> after = client->Stats();
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after->status.ok());
  EXPECT_GE(PromValue(after->body, "pctagg_server_statements_executed_total"),
            executed0 + 3);
  EXPECT_GE(PromValue(after->body, "pctagg_server_query_latency_micros_count"),
            latency0 + 3);
  EXPECT_GE(PromValue(after->body, "pctagg_server_sessions_opened_total"), 1u);
  EXPECT_GE(PromValue(after->body, "pctagg_server_sessions_active"), 1u);
  // The dump is well-formed Prometheus text.
  EXPECT_NE(after->body.find("# TYPE pctagg_server_statements_executed_total "
                             "counter"),
            std::string::npos);
  EXPECT_NE(
      after->body.find("# TYPE pctagg_server_query_latency_micros histogram"),
      std::string::npos);
}

TEST_F(ServerTest, TraceSettingAppendsExecutedPlan) {
  StartServer(1000);
  Result<PctClient> client = Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Call(RequestVerb::kSet, "trace on")->status.ok());
  Result<WireResponse> traced = client->Query(kVpctSql);
  ASSERT_TRUE(traced.ok());
  ASSERT_TRUE(traced->status.ok()) << traced->status.ToString();
  size_t marker = traced->body.find("-- trace\n");
  ASSERT_NE(marker, std::string::npos);
  // CSV result first, then the serialized trace.
  EXPECT_NE(traced->body.substr(0, marker).find("pct"), std::string::npos);
  std::string trace = traced->body.substr(marker);
  EXPECT_NE(trace.find("query class: vertical-percentage"),
            std::string::npos);
  EXPECT_NE(trace.find("strategy: "), std::string::npos);
  EXPECT_NE(trace.find("plan:"), std::string::npos);
  EXPECT_NE(trace.find("aggregate"), std::string::npos);
  // SHOW reflects the flag; turning it off removes the appendix.
  Result<WireResponse> show = client->Call(RequestVerb::kShow, "");
  ASSERT_TRUE(show.ok());
  EXPECT_NE(show->body.find("trace = on"), std::string::npos);
  ASSERT_TRUE(client->Call(RequestVerb::kSet, "trace off")->status.ok());
  Result<WireResponse> plain = client->Query(kVpctSql);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(plain->status.ok());
  EXPECT_EQ(plain->body.find("-- trace\n"), std::string::npos);
}

// Regression test for ctest -j: two servers must coexist in one process (and
// by extension, across concurrently running test binaries) because every
// test binds port 0 and reads the kernel-assigned port back.
TEST(ServerPortTest, TwoServersBindConcurrently) {
  PctDatabase db1, db2;
  ASSERT_TRUE(db1.CreateTable("f", RandomFact(11, 100)).ok());
  ASSERT_TRUE(db2.CreateTable("f", RandomFact(12, 100)).ok());
  ServerConfig config;
  config.port = 0;
  PctServer a(&db1, config), b(&db2, config);
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  EXPECT_NE(a.port(), b.port());
  for (PctServer* server : {&a, &b}) {
    Result<PctClient> client =
        PctClient::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    Result<WireResponse> pong = client->Ping();
    ASSERT_TRUE(pong.ok());
    EXPECT_TRUE(pong->status.ok());
  }
  b.Stop();
  a.Stop();
}

// The smoke suite the TSan ctest target runs: concurrent sessions mixing
// reads with DDL while the server is under way, then a clean shutdown.
TEST(ServerSmoke, MixedTrafficUnderConcurrentSessions) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(7, 1500)).ok());
  db.EnableSummaryCache(true);
  ServerConfig config;
  config.port = 0;
  config.worker_threads = 4;
  PctServer server(&db, config);
  ASSERT_TRUE(server.Start().ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&server, &failures, i] {
      Result<PctClient> client =
          PctClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int q = 0; q < 6; ++q) {
        Result<WireResponse> reply = [&]() -> Result<WireResponse> {
          if (i == 0 && q % 3 == 2) {
            // One session interleaves DDL: regenerate a private table.
            return client->Call(RequestVerb::kGen,
                                "employee emp_" + std::to_string(i) + " 500");
          }
          if (q % 2 == 0) return client->Query(kVpctSql);
          return client->Query("SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1");
        }();
        if (!reply.ok() || !reply->status.ok()) ++failures;
      }
      client->Call(RequestVerb::kQuit, "");
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
  // All plan temporaries cleaned up: base table plus the generated one.
  EXPECT_EQ(db.catalog().TableNames().size(), 2u);
}

}  // namespace
}  // namespace pctagg
