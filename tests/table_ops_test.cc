// Unit tests for Filter, Project, Distinct, Sort and InsertInto.

#include "engine/table_ops.h"

#include <gtest/gtest.h>

namespace pctagg {
namespace {

Table TestTable() {
  Table t(Schema({{"d", DataType::kInt64}, {"a", DataType::kFloat64}}));
  t.AppendRow({Value::Int64(2), Value::Float64(1.0)});
  t.AppendRow({Value::Int64(1), Value::Float64(2.0)});
  t.AppendRow({Value::Int64(2), Value::Float64(3.0)});
  t.AppendRow({Value::Null(), Value::Float64(4.0)});
  return t;
}

TEST(FilterTest, KeepsTrueRowsOnly) {
  Table out = Filter(TestTable(), Eq(Col("d"), Lit(Value::Int64(2)))).value();
  EXPECT_EQ(out.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(out.column(1).Float64At(0), 1.0);
  EXPECT_DOUBLE_EQ(out.column(1).Float64At(1), 3.0);
}

TEST(FilterTest, UnknownPredicateDropsRow) {
  // d = 2 is UNKNOWN for the NULL row: it must not pass the filter.
  Table out = Filter(TestTable(), Eq(Col("d"), Lit(Value::Int64(2)))).value();
  for (size_t i = 0; i < out.num_rows(); ++i) {
    EXPECT_FALSE(out.column(0).IsNull(i));
  }
}

TEST(FilterTest, NonBooleanPredicateRejected) {
  Table t(Schema({{"s", DataType::kString}}));
  t.AppendRow({Value::String("x")});
  EXPECT_EQ(Filter(t, Col("s")).status().code(), StatusCode::kTypeMismatch);
}

TEST(ProjectTest, ComputesAndNames) {
  Table out = Project(TestTable(), {{Col("d"), "d"},
                                    {Mul(Col("a"), Lit(Value::Int64(2))), "a2"}})
                  .value();
  EXPECT_EQ(out.num_columns(), 2u);
  EXPECT_EQ(out.schema().column(1).name, "a2");
  EXPECT_DOUBLE_EQ(out.column(1).Float64At(1), 4.0);
}

TEST(ProjectTest, BindingErrorSurfaces) {
  EXPECT_FALSE(Project(TestTable(), {{Col("zzz"), "x"}}).ok());
}

TEST(DistinctTest, FirstSeenOrder) {
  Table out = Distinct(TestTable(), {"d"}).value();
  ASSERT_EQ(out.num_rows(), 3u);  // 2, 1, NULL
  EXPECT_EQ(out.column(0).Int64At(0), 2);
  EXPECT_EQ(out.column(0).Int64At(1), 1);
  EXPECT_TRUE(out.column(0).IsNull(2));
}

TEST(DistinctTest, NullIsItsOwnValue) {
  Table t(Schema({{"d", DataType::kInt64}}));
  t.AppendRow({Value::Null()});
  t.AppendRow({Value::Null()});
  t.AppendRow({Value::Int64(0)});
  Table out = Distinct(t, {"d"}).value();
  EXPECT_EQ(out.num_rows(), 2u);  // NULL and 0 are distinct
}

TEST(DistinctTest, MultiColumn) {
  Table t(Schema({{"x", DataType::kInt64}, {"y", DataType::kInt64}}));
  t.AppendRow({Value::Int64(1), Value::Int64(1)});
  t.AppendRow({Value::Int64(1), Value::Int64(2)});
  t.AppendRow({Value::Int64(1), Value::Int64(1)});
  Table out = Distinct(t, {"x", "y"}).value();
  EXPECT_EQ(out.num_rows(), 2u);
}

TEST(SortTest, AscendingNullsFirst) {
  Table out = Sort(TestTable(), {"d"}).value();
  EXPECT_TRUE(out.column(0).IsNull(0));
  EXPECT_EQ(out.column(0).Int64At(1), 1);
  EXPECT_EQ(out.column(0).Int64At(2), 2);
  EXPECT_EQ(out.column(0).Int64At(3), 2);
}

TEST(SortTest, StableWithinEqualKeys) {
  Table out = Sort(TestTable(), {"d"}).value();
  // The two d=2 rows keep input order: a=1.0 before a=3.0.
  EXPECT_DOUBLE_EQ(out.column(1).Float64At(2), 1.0);
  EXPECT_DOUBLE_EQ(out.column(1).Float64At(3), 3.0);
}

TEST(SortTest, SecondaryKey) {
  Table t(Schema({{"x", DataType::kInt64}, {"y", DataType::kInt64}}));
  t.AppendRow({Value::Int64(1), Value::Int64(2)});
  t.AppendRow({Value::Int64(1), Value::Int64(1)});
  t.AppendRow({Value::Int64(0), Value::Int64(9)});
  Table out = Sort(t, {"x", "y"}).value();
  EXPECT_EQ(out.column(0).Int64At(0), 0);
  EXPECT_EQ(out.column(1).Int64At(1), 1);
  EXPECT_EQ(out.column(1).Int64At(2), 2);
}

TEST(SortTest, StringsSortLexicographically) {
  Table t(Schema({{"s", DataType::kString}}));
  t.AppendRow({Value::String("pear")});
  t.AppendRow({Value::String("apple")});
  Table out = Sort(t, {"s"}).value();
  EXPECT_EQ(out.column(0).StringAt(0), "apple");
}

TEST(InsertIntoTest, AppendsAllRows) {
  Table dst = TestTable();
  Table src = TestTable();
  ASSERT_TRUE(InsertInto(&dst, src).ok());
  EXPECT_EQ(dst.num_rows(), 8u);
}

TEST(InsertIntoTest, SchemaMismatchRejected) {
  Table dst = TestTable();
  Table other(Schema({{"d", DataType::kInt64}}));
  EXPECT_FALSE(InsertInto(&dst, other).ok());
  Table wrong_type(
      Schema({{"d", DataType::kString}, {"a", DataType::kFloat64}}));
  EXPECT_EQ(InsertInto(&dst, wrong_type).code(), StatusCode::kTypeMismatch);
}

}  // namespace
}  // namespace pctagg
