// Multi-query shared-scan batching (core/mqo_plan.h + server/mqo_gate.h):
// one fused scan serves N concurrent percentage queries. The sweep tests pin
// the headline guarantee — a batched query's bytes are identical to its solo
// execution at every dop — and the gate tests pin the admission rules
// (compatibility keys, deadline escapes, mixed WHERE) and the exactly-one
// cache fill per deduplicated summary entry.

#include "core/mqo_plan.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/database.h"
#include "dist/coordinator.h"
#include "engine/csv.h"
#include "engine/table.h"
#include "obs/metrics.h"
#include "server/executor.h"
#include "server/server.h"
#include "workload/generators.h"

namespace pctagg {
namespace {

// Overlapping dashboard-burst queries over one fact table: shared measures at
// different grouping levels, a global aggregate (empty-() rollup path), and
// both percentage forms. Every ORDER BY is pinned so CSV comparison is exact.
const char* const kBatchSqls[] = {
    "SELECT dayOfWeekNo, stateId, Vpct(itemQty BY stateId) AS pct FROM f "
    "GROUP BY dayOfWeekNo, stateId ORDER BY dayOfWeekNo, stateId",
    "SELECT stateId, sum(itemQty) AS s, count(*) AS n, avg(itemQty) AS a "
    "FROM f GROUP BY stateId ORDER BY stateId",
    "SELECT dayOfWeekNo, min(itemQty) AS mn, max(itemQty) AS mx FROM f "
    "GROUP BY dayOfWeekNo ORDER BY dayOfWeekNo",
    "SELECT sum(itemQty) AS total, count(*) AS n FROM f",
    "SELECT stateId, Hpct(itemQty BY dayOfWeekNo) FROM f "
    "GROUP BY stateId ORDER BY stateId",
};
constexpr size_t kNumBatchSqls = sizeof(kBatchSqls) / sizeof(kBatchSqls[0]);

std::string SoloCsv(PctDatabase* db, const std::string& sql, size_t dop) {
  QueryOptions options;
  options.degree_of_parallelism = dop;
  options.mqo = MqoMode::kOff;
  Result<Table> r = db->Query(sql, options);
  EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  return r.ok() ? FormatCsv(*r) : std::string();
}

// An INT64 fact with NULLs in two group columns (same shape dist_test uses).
Table NullableFact(uint64_t seed, size_t n) {
  Rng rng(seed);
  Table t(Schema({{"k", DataType::kInt64},
                  {"g", DataType::kInt64},
                  {"v", DataType::kInt64}}));
  t.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Value k = rng.Uniform(10) == 0
                  ? Value::Null()
                  : Value::Int64(static_cast<int64_t>(rng.Uniform(7)));
    Value g = rng.Uniform(8) == 0
                  ? Value::Null()
                  : Value::Int64(static_cast<int64_t>(rng.Uniform(5)));
    t.AppendRow({k, g, Value::Int64(static_cast<int64_t>(rng.Uniform(100)))});
  }
  return t;
}

// Plans and executes `sqls` as one batch (no gate, no cache) and asserts each
// member's bytes equal its solo execution at the same dop.
void ExpectBatchBitIdentical(PctDatabase* db,
                             const std::vector<std::string>& sqls,
                             size_t dop) {
  std::vector<AnalyzedQuery> analyzed;
  analyzed.reserve(sqls.size());
  for (const std::string& sql : sqls) {
    Result<AnalyzedQuery> q = db->PrepareQuery(sql);
    ASSERT_TRUE(q.ok()) << sql << ": " << q.status().ToString();
    analyzed.push_back(std::move(*q));
  }
  std::vector<const AnalyzedQuery*> queries;
  for (const AnalyzedQuery& q : analyzed) queries.push_back(&q);
  Result<MqoBatchPlan> plan = PlanMqoBatch(queries);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Result<const Table*> fact =
      static_cast<const PctDatabase*>(db)->catalog().GetTable(plan->table);
  ASSERT_TRUE(fact.ok());
  Result<std::vector<Table>> results =
      ExecuteMqoBatch(*plan, **fact, nullptr, {}, dop);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    EXPECT_EQ(FormatCsv((*results)[i]), SoloCsv(db, sqls[i], dop))
        << "dop=" << dop << " sql=" << sqls[i];
  }
}

// --- Planner ----------------------------------------------------------------

TEST(MqoPlanTest, CompatibilityKeyMatchesSameTableAndWhere) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", GenerateTransactionLine(100)).ok());
  auto key = [&](const std::string& sql) {
    Result<AnalyzedQuery> q = db.PrepareQuery(sql);
    EXPECT_TRUE(q.ok()) << sql;
    return MqoCompatibilityKey(*q);
  };
  // Different grouping / aggregates, same table + WHERE: compatible.
  EXPECT_EQ(key("SELECT stateId, sum(itemQty) AS s FROM f GROUP BY stateId"),
            key("SELECT dayOfWeekNo, count(*) AS n FROM f "
                "GROUP BY dayOfWeekNo"));
  // Mixed WHERE must never batch.
  EXPECT_NE(key("SELECT stateId, sum(itemQty) AS s FROM f "
                "WHERE stateId < 3 GROUP BY stateId"),
            key("SELECT stateId, sum(itemQty) AS s FROM f "
                "WHERE stateId < 5 GROUP BY stateId"));
  EXPECT_NE(key("SELECT stateId, sum(itemQty) AS s FROM f GROUP BY stateId"),
            key("SELECT stateId, sum(itemQty) AS s FROM f "
                "WHERE stateId < 3 GROUP BY stateId"));
}

TEST(MqoPlanTest, UnionScanDedupesSharedPartials) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", GenerateTransactionLine(100)).ok());
  std::vector<AnalyzedQuery> analyzed;
  for (const char* sql :
       {"SELECT stateId, sum(itemQty) AS s FROM f GROUP BY stateId",
        "SELECT dayOfWeekNo, stateId, sum(itemQty) AS s, count(*) AS n "
        "FROM f GROUP BY dayOfWeekNo, stateId"}) {
    analyzed.push_back(*db.PrepareQuery(sql));
  }
  Result<MqoBatchPlan> plan =
      PlanMqoBatch({&analyzed[0], &analyzed[1]});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Union finest level covers both queries; the shared sum(itemQty) is
  // computed once.
  EXPECT_EQ(plan->scan_cols.size(), 2u);
  EXPECT_EQ(plan->scan_partials.size(), 2u);  // sum(itemQty), count(*)
  EXPECT_EQ(plan->partials_requested, 3u);
  EXPECT_LT(plan->scan_partials.size(), plan->partials_requested);
  ASSERT_EQ(plan->members.size(), 2u);
  // The coarser member rolls the union table down to its own level.
  EXPECT_EQ(plan->members[0].finest_cols,
            std::vector<std::string>{"stateId"});
}

// --- Bit-identity sweep ------------------------------------------------------

class MqoSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(MqoSweep, BatchMatchesSoloBitIdentical) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", GenerateTransactionLine(20000)).ok());
  std::vector<std::string> sqls(kBatchSqls, kBatchSqls + kNumBatchSqls);
  ExpectBatchBitIdentical(&db, sqls, GetParam());
}

TEST_P(MqoSweep, NullGroupKeysBatchMatchesSolo) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", NullableFact(11, 4000)).ok());
  std::vector<std::string> sqls = {
      "SELECT g, sum(v) AS s, count(*) AS n FROM f GROUP BY g ORDER BY g",
      "SELECT k, g, sum(v) AS s FROM f GROUP BY k, g ORDER BY k, g",
      "SELECT count(*) AS n, sum(v) AS s FROM f",
  };
  ExpectBatchBitIdentical(&db, sqls, GetParam());
}

TEST_P(MqoSweep, DictionaryStringKeysBatchMatchesSolo) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", GenerateSalesNamed(8000)).ok());
  // INT64 measures only (dept/count) so CSV equality is exact for string
  // dimension keys; float sums carry the documented reassociation caveat.
  std::vector<std::string> sqls = {
      "SELECT state, count(*) AS n, sum(dept) AS d FROM f "
      "GROUP BY state ORDER BY state",
      "SELECT state, city, count(*) AS n FROM f "
      "GROUP BY state, city ORDER BY state, city",
  };
  ExpectBatchBitIdentical(&db, sqls, GetParam());
}

// Through the executor gate: N concurrent compatible queries form one batch
// (one shared scan) and every member's bytes equal its solo execution.
TEST_P(MqoSweep, ExecutorBatchesConcurrentCompatibleQueries) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", GenerateTransactionLine(20000)).ok());
  const size_t dop = GetParam();
  std::vector<std::string> solo(kNumBatchSqls);
  for (size_t i = 0; i < kNumBatchSqls; ++i) {
    solo[i] = SoloCsv(&db, kBatchSqls[i], dop);
  }

  ExecutorConfig config;
  config.worker_threads = 8;
  config.mqo_window_ms = 2000;  // generous: max_batch closes the batch early
  config.mqo_max_batch = kNumBatchSqls;
  QueryExecutor executor(&db, config);
  std::vector<std::string> got(kNumBatchSqls);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kNumBatchSqls; ++i) {
    threads.emplace_back([&, i] {
      QueryOptions opts;
      opts.degree_of_parallelism = dop;
      opts.mqo = MqoMode::kOn;
      Result<Table> r = executor.ExecuteStatement(kBatchSqls[i], opts, 0);
      ASSERT_TRUE(r.ok()) << kBatchSqls[i] << ": " << r.status().ToString();
      got[i] = FormatCsv(*r);
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t i = 0; i < kNumBatchSqls; ++i) {
    EXPECT_EQ(got[i], solo[i]) << kBatchSqls[i];
  }
  EXPECT_EQ(executor.mqo_gate().queries_batched(), kNumBatchSqls);
  EXPECT_EQ(executor.mqo_gate().batches(), 1u);
  EXPECT_GT(executor.mqo_gate().scan_rows_saved(), 0u);
}

// Sharded fact: a batch scatters ONE merged PARTIAL per worker instead of N.
TEST_P(MqoSweep, ShardedBatchScattersOnce) {
  const size_t dop = GetParam();
  PctDatabase coord_db;
  ASSERT_TRUE(
      coord_db.CreateTable("f", GenerateTransactionLine(12000)).ok());
  std::vector<std::string> sqls(kBatchSqls, kBatchSqls + 3);
  std::vector<std::string> want(sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    want[i] = SoloCsv(&coord_db, sqls[i], dop);
  }

  std::vector<std::unique_ptr<PctDatabase>> worker_dbs;
  std::vector<std::unique_ptr<PctServer>> workers;
  std::vector<dist::WorkerEndpoint> endpoints;
  for (size_t i = 0; i < 2; ++i) {
    worker_dbs.push_back(std::make_unique<PctDatabase>());
    ServerConfig wc;
    wc.port = 0;
    wc.worker_threads = 2;
    workers.push_back(
        std::make_unique<PctServer>(worker_dbs.back().get(), wc));
    ASSERT_TRUE(workers.back()->Start().ok());
    endpoints.push_back({"127.0.0.1", workers.back()->port()});
  }
  dist::CoordinatorConfig config;
  config.shard_timeout_ms = 10000;
  config.shard_attempts = 2;
  config.mqo_window_ms = 2000;
  config.mqo_max_batch = sqls.size();
  dist::Coordinator coordinator(&coord_db, endpoints, config);
  ASSERT_TRUE(coordinator.ShardTable("f", "cityId").ok());

  const uint64_t scatters_before =
      obs::GlobalMetrics().CounterValue("pctagg_dist_queries_total");
  std::vector<std::string> got(sqls.size());
  std::vector<std::thread> threads;
  for (size_t i = 0; i < sqls.size(); ++i) {
    threads.emplace_back([&, i] {
      QueryOptions opts;
      opts.degree_of_parallelism = dop;
      Result<std::optional<Table>> r =
          coordinator.MaybeExecute(sqls[i], opts, nullptr);
      ASSERT_TRUE(r.ok()) << sqls[i] << ": " << r.status().ToString();
      ASSERT_TRUE(r->has_value());
      got[i] = FormatCsv(**r);
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t i = 0; i < sqls.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << sqls[i];
  }
  EXPECT_EQ(coordinator.mqo_gate().queries_batched(), sqls.size());
  // The whole batch cost one scatter (one merged PARTIAL per worker).
  EXPECT_EQ(
      obs::GlobalMetrics().CounterValue("pctagg_dist_queries_total"),
      scatters_before + 1);
}

INSTANTIATE_TEST_SUITE_P(Dop, MqoSweep, ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "dop" + std::to_string(info.param);
                         });

// --- Gate admission rules ----------------------------------------------------

// Identical concurrent cache misses: the batch dedupes to ONE summary-cache
// entry and fills it exactly once; a second round answers from the cache.
TEST(MqoGateTest, BatchFillsEachDedupedCacheEntryExactlyOnce) {
  PctDatabase db;
  db.EnableSummaryCache(true);
  ASSERT_TRUE(db.CreateTable("f", GenerateTransactionLine(20000)).ok());
  ExecutorConfig config;
  config.worker_threads = 8;
  config.mqo_window_ms = 2000;
  config.mqo_max_batch = 4;
  QueryExecutor executor(&db, config);
  auto run_round = [&] {
    std::vector<std::thread> threads;
    for (size_t i = 0; i < 4; ++i) {
      threads.emplace_back([&] {
        QueryOptions opts;
        opts.mqo = MqoMode::kOn;
        Result<Table> r = executor.ExecuteStatement(kBatchSqls[1], opts, 0);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      });
    }
    for (std::thread& t : threads) t.join();
  };
  run_round();
  EXPECT_EQ(db.summaries().misses(), 1u);  // one fill for the whole herd
  EXPECT_EQ(db.summaries().size(), 1u);
  EXPECT_EQ(db.summaries().stale_inserts(), 0u);
  run_round();
  EXPECT_EQ(db.summaries().misses(), 1u);  // second batch hits the cache
  EXPECT_GE(db.summaries().hits(), 1u);
}

TEST(MqoGateTest, MixedWhereDoesNotBatch) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", GenerateTransactionLine(5000)).ok());
  const std::vector<std::string> sqls = {
      "SELECT stateId, sum(itemQty) AS s FROM f WHERE stateId < 3 "
      "GROUP BY stateId ORDER BY stateId",
      "SELECT stateId, sum(itemQty) AS s FROM f WHERE stateId < 5 "
      "GROUP BY stateId ORDER BY stateId",
  };
  std::vector<std::string> want;
  for (const std::string& sql : sqls) want.push_back(SoloCsv(&db, sql, 1));

  ExecutorConfig config;
  config.worker_threads = 4;
  config.mqo_window_ms = 150;
  config.mqo_max_batch = 2;
  QueryExecutor executor(&db, config);
  std::vector<std::string> got(sqls.size());
  std::vector<std::thread> threads;
  for (size_t i = 0; i < sqls.size(); ++i) {
    threads.emplace_back([&, i] {
      QueryOptions opts;
      opts.mqo = MqoMode::kOn;
      Result<Table> r = executor.ExecuteStatement(sqls[i], opts, 0);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      got[i] = FormatCsv(*r);
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t i = 0; i < sqls.size(); ++i) EXPECT_EQ(got[i], want[i]);
  // Different WHERE -> different compatibility keys -> two solo batches.
  EXPECT_EQ(executor.mqo_gate().queries_batched(), 0u);
  EXPECT_EQ(executor.mqo_gate().scan_rows_saved(), 0u);
}

// A deadline tighter than the collection window escapes the gate entirely:
// the query runs solo immediately instead of parking.
TEST(MqoGateTest, TightDeadlineEscapesTheGate) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", GenerateTransactionLine(2000)).ok());
  ExecutorConfig config;
  config.worker_threads = 2;
  config.mqo_window_ms = 200;  // escape threshold = 800 ms
  QueryExecutor executor(&db, config);
  QueryOptions opts;
  opts.mqo = MqoMode::kOn;
  Result<Table> r = executor.ExecuteStatement(kBatchSqls[1], opts,
                                              /*timeout_ms=*/300);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(executor.mqo_gate().solo_escapes(), 1u);
  EXPECT_EQ(executor.mqo_gate().batches(), 0u);
  // No deadline (0) never escapes.
  Result<Table> r2 = executor.ExecuteStatement(kBatchSqls[1], opts, 0);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(executor.mqo_gate().solo_escapes(), 1u);
}

// SET mqo off bypasses the gate without touching results.
TEST(MqoGateTest, MqoOffNeverTouchesTheGate) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", GenerateTransactionLine(2000)).ok());
  QueryExecutor executor(&db, ExecutorConfig{2, 64});
  QueryOptions opts;
  opts.mqo = MqoMode::kOff;
  Result<Table> r = executor.ExecuteStatement(kBatchSqls[0], opts, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(FormatCsv(*r), SoloCsv(&db, kBatchSqls[0], 1));
  EXPECT_EQ(executor.mqo_gate().batches(), 0u);
  EXPECT_EQ(executor.mqo_gate().solo_escapes(), 0u);
}

// EXPLAIN ANALYZE through the gate renders the mqo-batch cost candidate.
TEST(MqoGateTest, ExplainAnalyzeShowsBatchCandidate) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", GenerateTransactionLine(5000)).ok());
  QueryExecutor executor(&db, ExecutorConfig{2, 64});
  QueryOptions opts;
  opts.mqo = MqoMode::kAuto;
  Result<Table> r = executor.ExecuteStatement(
      std::string("EXPLAIN ANALYZE ") + kBatchSqls[1], opts, 0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string plan;
  for (size_t i = 0; i < r->num_rows(); ++i) {
    plan += r->column(0).GetValue(i).ToString() + "\n";
  }
  EXPECT_NE(plan.find("mqo-batch"), std::string::npos) << plan;
  EXPECT_NE(plan.find("solo fused scans"), std::string::npos) << plan;
}

}  // namespace
}  // namespace pctagg
