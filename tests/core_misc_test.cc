// Tests for the remaining core pieces: vertical partitioning (max-column
// limit), the StrategyAdvisor recommendations, missing-row helpers, and the
// Plan container itself.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/advisor.h"
#include "core/database.h"
#include "core/missing_rows.h"
#include "core/partition.h"
#include "core/plan.h"
#include "sql/parser.h"

namespace pctagg {
namespace {

Table WideTable(size_t cells) {
  Schema schema;
  schema.AddColumn({"k", DataType::kInt64});
  for (size_t i = 0; i < cells; ++i) {
    schema.AddColumn({"c" + std::to_string(i), DataType::kFloat64});
  }
  Table t(schema);
  for (int64_t row = 0; row < 3; ++row) {
    std::vector<Value> values;
    values.push_back(Value::Int64(row));
    for (size_t i = 0; i < cells; ++i) {
      values.push_back(Value::Float64(static_cast<double>(row * 100 + i)));
    }
    t.AppendRow(values);
  }
  return t;
}

TEST(PartitionTest, SplitsWideTables) {
  Table wide = WideTable(10);
  std::vector<Table> parts = VerticallyPartition(wide, {"k"}, 4).value();
  // 10 cells, 3 per partition (4 max - 1 key) -> 4 partitions.
  ASSERT_EQ(parts.size(), 4u);
  for (const Table& p : parts) {
    EXPECT_LE(p.num_columns(), 4u);
    EXPECT_TRUE(p.schema().HasColumn("k"));
    EXPECT_EQ(p.num_rows(), 3u);
  }
  // All cell columns present exactly once across partitions.
  size_t total_cells = 0;
  for (const Table& p : parts) total_cells += p.num_columns() - 1;
  EXPECT_EQ(total_cells, 10u);
  // Values survive the split.
  EXPECT_DOUBLE_EQ(
      parts[1].ColumnByName("c3").value()->Float64At(2), 203.0);
}

TEST(PartitionTest, NoSplitWhenNarrowEnough) {
  Table wide = WideTable(3);
  std::vector<Table> parts = VerticallyPartition(wide, {"k"}, 10).value();
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].num_columns(), 4u);
}

TEST(PartitionTest, RejectsImpossibleLimit) {
  Table wide = WideTable(3);
  EXPECT_FALSE(VerticallyPartition(wide, {"k"}, 1).ok());
  EXPECT_FALSE(VerticallyPartition(wide, {"nope"}, 4).ok());
}

TEST(PartitionTest, KeyOnlyTableYieldsOnePartition) {
  Table t(Schema({{"k", DataType::kInt64}}));
  t.AppendRow({Value::Int64(1)});
  std::vector<Table> parts = VerticallyPartition(t, {"k"}, 4).value();
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].num_columns(), 1u);
}

TEST(AdvisorTest, EstimatesCardinality) {
  Rng rng(1);
  Table t(Schema({{"lo", DataType::kInt64}, {"hi", DataType::kInt64}}));
  for (int i = 0; i < 5000; ++i) {
    t.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(7))),
                 Value::Int64(static_cast<int64_t>(rng.Uniform(500)))});
  }
  StrategyAdvisor advisor;
  EXPECT_EQ(advisor.EstimateCardinality(t, "lo").value(), 7u);
  EXPECT_GT(advisor.EstimateCardinality(t, "hi").value(), 100u);
  EXPECT_FALSE(advisor.EstimateCardinality(t, "nope").ok());
}

TEST(AdvisorTest, RecommendsDirectForLowSelectivity) {
  Rng rng(2);
  Table t(Schema({{"g", DataType::kInt64},
                  {"lo", DataType::kInt64},
                  {"a", DataType::kFloat64}}));
  for (int i = 0; i < 2000; ++i) {
    t.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(10))),
                 Value::Int64(static_cast<int64_t>(rng.Uniform(7))),
                 Value::Float64(1.0)});
  }
  SelectStatement stmt =
      ParseSelect("SELECT g, Hpct(a BY lo) FROM f GROUP BY g").value();
  AnalyzedQuery q = Analyze(stmt, t.schema()).value();
  StrategyAdvisor advisor;
  EXPECT_EQ(advisor.AdviseHorizontal(t, q).method,
            HorizontalMethod::kCaseDirect);
}

TEST(AdvisorTest, RecommendsFromFvForHighSelectivityOrManyColumns) {
  Rng rng(3);
  Table t(Schema({{"g", DataType::kInt64},
                  {"hi", DataType::kInt64},
                  {"b1", DataType::kInt64},
                  {"b2", DataType::kInt64},
                  {"b3", DataType::kInt64},
                  {"a", DataType::kFloat64}}));
  for (int i = 0; i < 2000; ++i) {
    t.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(10))),
                 Value::Int64(static_cast<int64_t>(rng.Uniform(400))),
                 Value::Int64(static_cast<int64_t>(rng.Uniform(2))),
                 Value::Int64(static_cast<int64_t>(rng.Uniform(2))),
                 Value::Int64(static_cast<int64_t>(rng.Uniform(2))),
                 Value::Float64(1.0)});
  }
  StrategyAdvisor advisor;
  // High selectivity BY column -> from FV.
  SelectStatement s1 =
      ParseSelect("SELECT g, Hpct(a BY hi) FROM f GROUP BY g").value();
  EXPECT_EQ(advisor.AdviseHorizontal(t, Analyze(s1, t.schema()).value()).method,
            HorizontalMethod::kCaseFromFV);
  // Three low-selectivity BY columns -> from FV ("three or more grouping
  // columns").
  SelectStatement s2 =
      ParseSelect("SELECT g, Hpct(a BY b1, b2, b3) FROM f GROUP BY g").value();
  EXPECT_EQ(advisor.AdviseHorizontal(t, Analyze(s2, t.schema()).value()).method,
            HorizontalMethod::kCaseFromFV);
}

TEST(AdvisorTest, VpctAlwaysBestDefaults) {
  Table t(Schema({{"g", DataType::kInt64}, {"a", DataType::kFloat64}}));
  SelectStatement stmt =
      ParseSelect("SELECT g, Vpct(a) FROM f GROUP BY g").value();
  AnalyzedQuery q = Analyze(stmt, t.schema()).value();
  StrategyAdvisor advisor;
  VpctStrategy s = advisor.AdviseVpct(t, q);
  EXPECT_TRUE(s.matching_indexes);
  EXPECT_TRUE(s.insert_result);
  EXPECT_TRUE(s.fj_from_fk);
}

TEST(MissingRowsTest, ExpandFactCoversAllPairs) {
  Table f(Schema({{"g", DataType::kInt64},
                  {"b", DataType::kInt64},
                  {"a", DataType::kFloat64},
                  {"other", DataType::kString}}));
  f.AppendRow({Value::Int64(1), Value::Int64(1), Value::Float64(5),
               Value::String("x")});
  f.AppendRow({Value::Int64(2), Value::Int64(2), Value::Float64(7),
               Value::String("y")});
  Table out = ExpandFactWithMissingRows(f, {"g"}, {"b"}, {"a"}).value();
  // 2 groups x 2 combos = 4 rows total.
  ASSERT_EQ(out.num_rows(), 4u);
  // Synthetic rows carry zero measure and NULL elsewhere.
  bool found_synthetic = false;
  for (size_t i = 2; i < out.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(out.column(2).Float64At(i), 0.0);
    EXPECT_TRUE(out.column(3).IsNull(i));
    found_synthetic = true;
  }
  EXPECT_TRUE(found_synthetic);
}

TEST(MissingRowsTest, InsertResultRowsGrandTotal) {
  Table f(Schema({{"b", DataType::kInt64}, {"a", DataType::kFloat64}}));
  f.AppendRow({Value::Int64(1), Value::Float64(5)});
  f.AppendRow({Value::Int64(2), Value::Float64(5)});
  // Result missing b=2.
  Table result(Schema({{"b", DataType::kInt64}, {"pct", DataType::kFloat64}}));
  result.AppendRow({Value::Int64(1), Value::Float64(1.0)});
  ASSERT_TRUE(
      InsertMissingResultRows(f, {}, {"b"}, {"pct"}, &result).ok());
  ASSERT_EQ(result.num_rows(), 2u);
  EXPECT_EQ(result.column(0).Int64At(1), 2);
  EXPECT_DOUBLE_EQ(result.column(1).Float64At(1), 0.0);
}

TEST(PlanTest, StepsRunInOrderAndErrorsAnnotate) {
  Catalog catalog;
  Plan plan;
  std::vector<int>* order = new std::vector<int>();
  plan.AddStep("step one", [order](ExecContext*) -> Status {
    order->push_back(1);
    return Status::OK();
  });
  plan.AddStep("step two", [order](ExecContext*) -> Status {
    order->push_back(2);
    return Status::Internal("boom");
  });
  plan.AddStep("step three", [order](ExecContext*) -> Status {
    order->push_back(3);
    return Status::OK();
  });
  Status st = plan.Execute(&catalog);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("step two"), std::string::npos);
  EXPECT_EQ(*order, (std::vector<int>{1, 2}));  // step three never ran
  delete order;
}

TEST(PlanTest, ToSqlTerminatesStatements) {
  Plan plan;
  plan.AddStep("SELECT 1", [](ExecContext*) { return Status::OK(); });
  plan.AddStep("SELECT 2;", [](ExecContext*) { return Status::OK(); });
  EXPECT_EQ(plan.ToSql(), "SELECT 1;\nSELECT 2;\n");
}

TEST(PlanTest, CleanupIgnoresMissingTables) {
  Catalog catalog;
  Plan plan;
  plan.AddTempTable("never_created");
  plan.Cleanup(&catalog);  // must not crash
  SUCCEED();
}

TEST(PlanTest, TempNamesAreUnique) {
  EXPECT_NE(NewTempName("Fk"), NewTempName("Fk"));
}

}  // namespace
}  // namespace pctagg
