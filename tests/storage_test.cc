// Tests for the durable storage subsystem's building blocks: CRC-32C
// vectors, primitive/column/table serde round trips, segment files (and
// their corruption detection), the manifest codec, WAL framing with
// torn-tail discard, StorageManager open/append/checkpoint/drop, and the
// DROP TABLE / CHECKPOINT SQL surface.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/database.h"
#include "sql/analyzer.h"
#include "sql/parser.h"
#include "storage/crc32c.h"
#include "storage/file_io.h"
#include "storage/manifest.h"
#include "storage/segment.h"
#include "storage/serde.h"
#include "storage/storage.h"
#include "storage/wal.h"

namespace pctagg {
namespace storage {
namespace {

// A scratch data directory, removed on scope exit.
class TempDir {
 public:
  TempDir() {
    std::string tmpl = "/tmp/pctagg_storage_test_XXXXXX";
    path_ = ::mkdtemp(tmpl.data());
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

Table SampleTable() {
  Table t(Schema({{"k", DataType::kInt64},
                  {"v", DataType::kFloat64},
                  {"s", DataType::kString}}));
  t.AppendRow({Value::Int64(1), Value::Float64(1.5), Value::String("ca")});
  t.AppendRow({Value::Int64(2), Value::Null(), Value::String("or")});
  t.AppendRow({Value::Null(), Value::Float64(-2.25), Value::Null()});
  t.AppendRow({Value::Int64(4), Value::Float64(0.0), Value::String("ca")});
  return t;
}

void ExpectTablesBitIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    const Column& ca = a.column(c);
    const Column& cb = b.column(c);
    ASSERT_EQ(ca.type(), cb.type());
    EXPECT_EQ(ca.validity(), cb.validity()) << "column " << c;
    switch (ca.type()) {
      case DataType::kInt64:
        EXPECT_EQ(ca.int64_data(), cb.int64_data()) << "column " << c;
        break;
      case DataType::kFloat64:
        for (size_t r = 0; r < a.num_rows(); ++r) {
          if (ca.IsNull(r)) continue;
          EXPECT_EQ(ca.Float64At(r), cb.Float64At(r))
              << "column " << c << " row " << r;
        }
        break;
      case DataType::kString:
        // Codes too, not just payloads: recovery promises the same codes.
        EXPECT_EQ(ca.codes(), cb.codes()) << "column " << c;
        ASSERT_EQ(ca.dict()->size(), cb.dict()->size());
        for (uint32_t i = 0; i < ca.dict()->size(); ++i) {
          EXPECT_EQ(ca.dict()->value(i), cb.dict()->value(i));
        }
        break;
    }
  }
}

void CorruptByte(const std::string& path, size_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

// --- CRC-32C ----------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / iSCSI test vector.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string data = "vertical and horizontal percentage aggregations";
  uint32_t whole = Crc32c(data.data(), data.size());
  uint32_t split = Crc32c(data.data(), 10);
  split = Crc32c(split, data.data() + 10, data.size() - 10);
  EXPECT_EQ(whole, split);
}

TEST(Crc32cTest, MaskRoundTripsAndMoves) {
  uint32_t crc = Crc32c("123456789", 9);
  EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
  EXPECT_NE(MaskCrc(crc), crc);
  EXPECT_NE(MaskCrc(0), 0u);  // an all-zero block never validates
}

// --- Primitive serde --------------------------------------------------------

TEST(SerdeTest, PrimitiveRoundTrip) {
  std::string buf;
  AppendU8(&buf, 0xAB);
  AppendU32(&buf, 0xDEADBEEFu);
  AppendU64(&buf, 0x0123456789ABCDEFull);
  AppendLenPrefixed(&buf, "hello");
  ByteReader in(buf);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  std::string_view s;
  ASSERT_TRUE(in.ReadU8(&u8));
  ASSERT_TRUE(in.ReadU32(&u32));
  ASSERT_TRUE(in.ReadU64(&u64));
  ASSERT_TRUE(in.ReadLenPrefixed(&s));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(in.remaining(), 0u);
}

TEST(SerdeTest, ReaderRejectsUnderflow) {
  std::string buf;
  AppendU32(&buf, 7);
  ByteReader in(buf);
  uint64_t u64 = 0;
  EXPECT_FALSE(in.ReadU64(&u64));  // only 4 bytes available
  uint32_t u32 = 0;
  EXPECT_TRUE(in.ReadU32(&u32));  // cursor was left unchanged
  EXPECT_EQ(u32, 7u);
  std::string_view s;
  EXPECT_FALSE(in.ReadLenPrefixed(&s));
}

TEST(SerdeTest, TableRoundTripIsBitIdentical) {
  Table t = SampleTable();
  std::string buf;
  EncodeTable(t, &buf);
  ByteReader in(buf);
  Result<Table> back = DecodeTable(&in);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(in.remaining(), 0u);
  ExpectTablesBitIdentical(t, *back);
}

TEST(SerdeTest, PiecesEncodingMatchesEncodeTableByteForByte) {
  Table t = SampleTable();
  std::string contiguous;
  EncodeTable(t, &contiguous);

  std::string scratch = "prefix";  // pre-existing bytes ride in piece one
  std::vector<TablePiece> pieces;
  EncodeTablePieces(t, &scratch, &pieces, /*first_run_offset=*/6);
  std::string assembled;
  for (const TablePiece& p : pieces) {
    const char* data = p.data != nullptr ? static_cast<const char*>(p.data)
                                         : scratch.data() + p.scratch_offset;
    assembled.append(data, p.size);
  }
  EXPECT_EQ(assembled, contiguous);
}

TEST(SerdeTest, EmptyTableRoundTrips) {
  Table t(Schema({{"a", DataType::kInt64}, {"s", DataType::kString}}));
  std::string buf;
  EncodeTable(t, &buf);
  ByteReader in(buf);
  Result<Table> back = DecodeTable(&in);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), 0u);
  EXPECT_EQ(back->schema().ToString(), t.schema().ToString());
}

TEST(SerdeTest, DecodeRejectsTruncatedPayload) {
  Table t = SampleTable();
  std::string buf;
  EncodeTable(t, &buf);
  for (size_t cut : {buf.size() - 1, buf.size() / 2, size_t{3}}) {
    ByteReader in(buf.data(), cut);
    EXPECT_FALSE(DecodeTable(&in).ok()) << "cut at " << cut;
  }
}

TEST(SerdeTest, DecodeRejectsOutOfRangeDictCode) {
  Table t(Schema({{"s", DataType::kString}}));
  t.AppendRow({Value::String("x")});
  std::string buf;
  EncodeColumn(t.column(0), &buf);
  // Last 4 bytes are row 0's code; point it past the 1-entry dictionary.
  uint32_t bad = 7;
  std::memcpy(buf.data() + buf.size() - 4, &bad, 4);
  ByteReader in(buf);
  EXPECT_FALSE(DecodeColumn(&in, DataType::kString).ok());
}

// --- Segment files ----------------------------------------------------------

TEST(SegmentTest, WriteReadRoundTrip) {
  TempDir dir;
  Table t = SampleTable();
  std::string path = dir.File("t.seg");
  ASSERT_TRUE(WriteSegment(path, t).ok());
  Result<Table> back = ReadSegment(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectTablesBitIdentical(t, *back);
}

TEST(SegmentTest, DetectsBitRotAnywhere) {
  TempDir dir;
  std::string path = dir.File("t.seg");
  ASSERT_TRUE(WriteSegment(path, SampleTable()).ok());
  uint64_t size = FileSize(path).value();
  // Flip one byte at several offsets spanning magic, blocks and footer.
  for (uint64_t offset : {uint64_t{2}, size / 3, size / 2, size - 30,
                          size - 3}) {
    std::string copy = dir.File("corrupt.seg");
    std::filesystem::copy_file(
        path, copy, std::filesystem::copy_options::overwrite_existing);
    CorruptByte(copy, static_cast<size_t>(offset));
    Result<Table> r = ReadSegment(copy);
    EXPECT_FALSE(r.ok()) << "offset " << offset;
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kDataLoss)
          << r.status().ToString();
    }
  }
}

TEST(SegmentTest, DetectsTruncation) {
  TempDir dir;
  std::string path = dir.File("t.seg");
  ASSERT_TRUE(WriteSegment(path, SampleTable()).ok());
  uint64_t size = FileSize(path).value();
  std::filesystem::resize_file(path, size - 10);
  Result<Table> r = ReadSegment(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

// --- Manifest ---------------------------------------------------------------

TEST(ManifestTest, EncodeDecodeRoundTrip) {
  Manifest m;
  m.wal_file = "wal-000007.log";
  m.next_lsn = 42;
  m.tables.push_back({"sales", "seg-000003.seg", 1000, 17});
  m.tables.push_back({"emp", "seg-000004.seg", 0, 0});
  Result<Manifest> back = DecodeManifest(EncodeManifest(m));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->wal_file, m.wal_file);
  EXPECT_EQ(back->next_lsn, m.next_lsn);
  ASSERT_EQ(back->tables.size(), 2u);
  EXPECT_EQ(back->tables[0].name, "sales");
  EXPECT_EQ(back->tables[0].segment_file, "seg-000003.seg");
  EXPECT_EQ(back->tables[0].rows, 1000u);
  EXPECT_EQ(back->tables[0].flush_lsn, 17u);
}

TEST(ManifestTest, RejectsCorruption) {
  Manifest m;
  m.wal_file = "wal-000001.log";
  std::string bytes = EncodeManifest(m);
  std::string tampered = bytes;
  tampered[0] ^= 0x20;
  EXPECT_FALSE(DecodeManifest(tampered).ok());
  EXPECT_FALSE(DecodeManifest(bytes.substr(0, bytes.size() - 4)).ok());
  EXPECT_FALSE(DecodeManifest("").ok());
}

TEST(ManifestTest, FileRoundTrip) {
  TempDir dir;
  Manifest m;
  m.wal_file = "wal-000001.log";
  m.next_lsn = 9;
  m.tables.push_back({"t", "seg-000002.seg", 5, 8});
  std::string path = dir.File("MANIFEST");
  ASSERT_TRUE(WriteManifest(path, m).ok());
  Result<Manifest> back = ReadManifest(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->next_lsn, 9u);
  ASSERT_EQ(back->tables.size(), 1u);
}

// --- WAL --------------------------------------------------------------------

TEST(WalTest, AppendAndReadBack) {
  TempDir dir;
  std::string path = dir.File("wal.log");
  Result<WalWriter> w =
      WalWriter::Create(path, /*next_lsn=*/1, FsyncPolicy::kAlways, 1 << 20);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  Table t = SampleTable();
  std::string payload;
  EncodeAppendPayload("sales", t, &payload);
  for (int i = 0; i < 3; ++i) {
    Result<uint64_t> lsn = w->AppendRecord(kWalRecordAppend, payload);
    ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
    EXPECT_EQ(*lsn, static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(w->fsyncs(), 3u);
  ASSERT_TRUE(w->Close().ok());

  Result<WalReadResult> r = ReadWal(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->tail_reason.empty());
  EXPECT_EQ(r->discarded_bytes, 0u);
  EXPECT_EQ(r->next_lsn, 4u);
  ASSERT_EQ(r->records.size(), 3u);
  for (const WalRecord& rec : r->records) {
    EXPECT_EQ(rec.type, kWalRecordAppend);
    ByteReader in(rec.payload);
    std::string_view name;
    ASSERT_TRUE(in.ReadLenPrefixed(&name));
    EXPECT_EQ(name, "sales");
    Result<Table> back = DecodeTable(&in);
    ASSERT_TRUE(back.ok());
    ExpectTablesBitIdentical(t, *back);
  }
}

TEST(WalTest, TornTailIsDiscardedNotFatal) {
  TempDir dir;
  std::string path = dir.File("wal.log");
  Result<WalWriter> w =
      WalWriter::Create(path, 1, FsyncPolicy::kOff, 1 << 20);
  ASSERT_TRUE(w.ok());
  std::string payload;
  EncodeAppendPayload("t", SampleTable(), &payload);
  ASSERT_TRUE(w->AppendRecord(kWalRecordAppend, payload).ok());
  ASSERT_TRUE(w->AppendRecord(kWalRecordAppend, payload).ok());
  uint64_t intact = w->bytes_written();
  ASSERT_TRUE(w->Close().ok());

  // Simulate a crash mid-write: drop the back half of the second record.
  std::filesystem::resize_file(path, intact - payload.size() / 2);
  Result<WalReadResult> r = ReadWal(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->records.size(), 1u);
  EXPECT_EQ(r->records[0].lsn, 1u);
  EXPECT_FALSE(r->tail_reason.empty());
  EXPECT_GT(r->discarded_bytes, 0u);
  EXPECT_EQ(r->next_lsn, 2u);
}

TEST(WalTest, CorruptRecordStopsReplayAtTear) {
  TempDir dir;
  std::string path = dir.File("wal.log");
  Result<WalWriter> w =
      WalWriter::Create(path, 1, FsyncPolicy::kOff, 1 << 20);
  ASSERT_TRUE(w.ok());
  std::string payload;
  EncodeAppendPayload("t", SampleTable(), &payload);
  ASSERT_TRUE(w->AppendRecord(kWalRecordAppend, payload).ok());
  uint64_t first_end = w->bytes_written();
  ASSERT_TRUE(w->AppendRecord(kWalRecordAppend, payload).ok());
  ASSERT_TRUE(w->Close().ok());

  CorruptByte(path, static_cast<size_t>(first_end) + 30);  // inside record 2
  Result<WalReadResult> r = ReadWal(path);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->records.size(), 1u);
  EXPECT_EQ(r->valid_bytes, first_end);
  EXPECT_FALSE(r->tail_reason.empty());
}

TEST(WalTest, ReopenTruncatesTornTailAndContinues) {
  TempDir dir;
  std::string path = dir.File("wal.log");
  {
    Result<WalWriter> w =
        WalWriter::Create(path, 1, FsyncPolicy::kOff, 1 << 20);
    ASSERT_TRUE(w.ok());
    std::string payload;
    EncodeAppendPayload("t", SampleTable(), &payload);
    ASSERT_TRUE(w->AppendRecord(kWalRecordAppend, payload).ok());
    ASSERT_TRUE(w->Close().ok());
  }
  // Torn garbage after the intact record.
  {
    AppendFile f;
    ASSERT_TRUE(f.OpenForAppend(path).ok());
    ASSERT_TRUE(f.Append("garbage tail bytes").ok());
    ASSERT_TRUE(f.Close().ok());
  }
  Result<WalReadResult> r = ReadWal(path);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->records.size(), 1u);
  Result<WalWriter> w = WalWriter::Reopen(path, r->next_lsn, r->valid_bytes,
                                          FsyncPolicy::kOff, 1 << 20);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  std::string payload;
  EncodeAppendPayload("t", SampleTable(), &payload);
  Result<uint64_t> lsn = w->AppendRecord(kWalRecordAppend, payload);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 2u);
  ASSERT_TRUE(w->Close().ok());
  Result<WalReadResult> again = ReadWal(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->records.size(), 2u);
  EXPECT_TRUE(again->tail_reason.empty());
}

TEST(WalTest, BatchPolicySyncsOnThreshold) {
  TempDir dir;
  Result<WalWriter> w = WalWriter::Create(dir.File("wal.log"), 1,
                                          FsyncPolicy::kBatch,
                                          /*batch_bytes=*/256);
  ASSERT_TRUE(w.ok());
  std::string payload(100, 'x');
  ASSERT_TRUE(w->AppendRecord(kWalRecordAppend, payload).ok());
  EXPECT_EQ(w->fsyncs(), 0u);  // under threshold: no fsync yet
  ASSERT_TRUE(w->AppendRecord(kWalRecordAppend, payload).ok());
  ASSERT_TRUE(w->AppendRecord(kWalRecordAppend, payload).ok());
  EXPECT_GE(w->fsyncs(), 1u);  // crossed 256 accumulated bytes
  uint64_t before = w->fsyncs();
  ASSERT_TRUE(w->Sync().ok());  // explicit barrier is idempotent-ish
  EXPECT_GE(w->fsyncs(), before);
}

// --- StorageManager ---------------------------------------------------------

TEST(StorageManagerTest, FreshDirThenReopenEmpty) {
  TempDir dir;
  StorageOptions opts;
  opts.data_dir = dir.File("db");
  {
    Result<std::unique_ptr<StorageManager>> sm = StorageManager::Open(opts);
    ASSERT_TRUE(sm.ok()) << sm.status().ToString();
    EXPECT_FALSE((*sm)->recovery_stats().opened_existing);
    EXPECT_TRUE((*sm)->TakeRecoveredTables().empty());
  }
  Result<std::unique_ptr<StorageManager>> sm = StorageManager::Open(opts);
  ASSERT_TRUE(sm.ok()) << sm.status().ToString();
  EXPECT_TRUE((*sm)->recovery_stats().opened_existing);
  EXPECT_EQ((*sm)->recovery_stats().tables_loaded, 0u);
}

TEST(StorageManagerTest, AppendsReplayAfterReopen) {
  TempDir dir;
  StorageOptions opts;
  opts.data_dir = dir.File("db");
  opts.fsync = FsyncPolicy::kOff;
  Table t = SampleTable();
  {
    Result<std::unique_ptr<StorageManager>> sm = StorageManager::Open(opts);
    ASSERT_TRUE(sm.ok());
    ASSERT_TRUE((*sm)->PersistTable("t", Table(t.schema())).ok());
    ASSERT_TRUE((*sm)->LogAppend("t", t).ok());
    ASSERT_TRUE((*sm)->SyncWal().ok());
  }
  Result<std::unique_ptr<StorageManager>> sm = StorageManager::Open(opts);
  ASSERT_TRUE(sm.ok()) << sm.status().ToString();
  EXPECT_EQ((*sm)->recovery_stats().wal_records_replayed, 1u);
  std::vector<std::pair<std::string, Table>> tables =
      (*sm)->TakeRecoveredTables();
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].first, "t");
  ExpectTablesBitIdentical(t, tables[0].second);
}

TEST(StorageManagerTest, CheckpointTruncatesWalAndSurvivesReopen) {
  TempDir dir;
  StorageOptions opts;
  opts.data_dir = dir.File("db");
  opts.fsync = FsyncPolicy::kOff;
  Table t = SampleTable();
  {
    Result<std::unique_ptr<StorageManager>> sm = StorageManager::Open(opts);
    ASSERT_TRUE(sm.ok());
    ASSERT_TRUE((*sm)->PersistTable("t", Table(t.schema())).ok());
    ASSERT_TRUE((*sm)->LogAppend("t", t).ok());
    Result<StorageManager::CheckpointStats> ck =
        (*sm)->Checkpoint({{"t", &t}});
    ASSERT_TRUE(ck.ok()) << ck.status().ToString();
    EXPECT_EQ(ck->tables, 1u);
    EXPECT_EQ(ck->rows, t.num_rows());
    EXPECT_GT(ck->bytes, 0u);
    EXPECT_EQ((*sm)->wal_bytes_written(), 0u);  // fresh WAL after checkpoint
  }
  Result<std::unique_ptr<StorageManager>> sm = StorageManager::Open(opts);
  ASSERT_TRUE(sm.ok());
  EXPECT_EQ((*sm)->recovery_stats().wal_records_replayed, 0u);
  std::vector<std::pair<std::string, Table>> tables =
      (*sm)->TakeRecoveredTables();
  ASSERT_EQ(tables.size(), 1u);
  ExpectTablesBitIdentical(t, tables[0].second);
}

TEST(StorageManagerTest, RemoveTableDeletesSegment) {
  TempDir dir;
  StorageOptions opts;
  opts.data_dir = dir.File("db");
  opts.fsync = FsyncPolicy::kOff;
  {
    Result<std::unique_ptr<StorageManager>> sm = StorageManager::Open(opts);
    ASSERT_TRUE(sm.ok());
    ASSERT_TRUE((*sm)->PersistTable("t", SampleTable()).ok());
    ASSERT_TRUE((*sm)->RemoveTable("t").ok());
    // Removing a never-persisted table is fine too.
    ASSERT_TRUE((*sm)->RemoveTable("ghost").ok());
  }
  Result<std::unique_ptr<StorageManager>> sm = StorageManager::Open(opts);
  ASSERT_TRUE(sm.ok());
  EXPECT_TRUE((*sm)->TakeRecoveredTables().empty());
}

TEST(StorageManagerTest, CleanShutdownMarkerIsOneShot) {
  TempDir dir;
  StorageOptions opts;
  opts.data_dir = dir.File("db");
  {
    Result<std::unique_ptr<StorageManager>> sm = StorageManager::Open(opts);
    ASSERT_TRUE(sm.ok());
    ASSERT_TRUE((*sm)->MarkCleanShutdown().ok());
  }
  {
    Result<std::unique_ptr<StorageManager>> sm = StorageManager::Open(opts);
    ASSERT_TRUE(sm.ok());
    EXPECT_TRUE((*sm)->recovery_stats().clean_shutdown);
  }
  // The marker is consumed: a second open (no marker written) is unclean.
  Result<std::unique_ptr<StorageManager>> sm = StorageManager::Open(opts);
  ASSERT_TRUE(sm.ok());
  EXPECT_FALSE((*sm)->recovery_stats().clean_shutdown);
}

// --- DROP TABLE / CHECKPOINT parsing and analysis ---------------------------

TEST(DropParseTest, Forms) {
  Result<DropStatement> r = ParseDrop("DROP TABLE sales");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table, "sales");
  EXPECT_FALSE(r->if_exists);
  r = ParseDrop("drop table if exists Sales;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table, "Sales");
  EXPECT_TRUE(r->if_exists);
  EXPECT_FALSE(ParseDrop("DROP sales").ok());
  EXPECT_FALSE(ParseDrop("DROP TABLE").ok());
  EXPECT_FALSE(ParseDrop("DROP TABLE IF sales").ok());
  EXPECT_FALSE(ParseDrop("DROP TABLE a b").ok());
}

TEST(DropParseTest, StatementKind) {
  EXPECT_EQ(ParseStatementKind("DROP TABLE f")->kind,
            ParsedStatement::Kind::kDrop);
  EXPECT_EQ(ParseStatementKind("checkpoint")->kind,
            ParsedStatement::Kind::kCheckpoint);
  EXPECT_EQ(ParseStatementKind("EXPLAIN DROP TABLE f")->kind,
            ParsedStatement::Kind::kDrop);
}

TEST(DropAnalyzeTest, MissingTable) {
  Catalog catalog;
  catalog.CreateOrReplaceTable("f", SampleTable());
  DropStatement present{"f", false};
  Result<bool> r = AnalyzeDrop(present, catalog);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  DropStatement missing{"nope", false};
  EXPECT_EQ(AnalyzeDrop(missing, catalog).status().code(),
            StatusCode::kNotFound);
  DropStatement benign{"nope", true};
  Result<bool> b = AnalyzeDrop(benign, catalog);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(*b);
}

// --- SQL surface through PctDatabase ----------------------------------------

TEST(DropSqlTest, DropsAndReportsThroughExecute) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", SampleTable()).ok());
  Result<Table> r = db.Execute("DROP TABLE f");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->column(0).Int64At(0), 1);  // dropped = 1
  EXPECT_FALSE(db.catalog().GetTable("f").ok());
  EXPECT_EQ(db.Execute("DROP TABLE f").status().code(), StatusCode::kNotFound);
  Result<Table> benign = db.Execute("DROP TABLE IF EXISTS f");
  ASSERT_TRUE(benign.ok());
  EXPECT_EQ(benign->column(0).Int64At(0), 0);  // dropped = 0
}

TEST(DropSqlTest, ExplainDoesNotDrop) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", SampleTable()).ok());
  Result<Table> r = db.Execute("EXPLAIN DROP TABLE f");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(db.catalog().GetTable("f").ok());  // still there
}

TEST(CheckpointSqlTest, NoStorageIsZeroStats) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", SampleTable()).ok());
  Result<Table> r = db.Execute("CHECKPOINT");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->column(0).Int64At(0), 0);  // tables flushed
}

TEST(DatabaseStorageTest, FullLifecycleRoundTrip) {
  TempDir dir;
  Table t = SampleTable();
  {
    PctDatabase db;
    StorageOptions opts;
    opts.data_dir = dir.File("db");
    opts.fsync = FsyncPolicy::kAlways;
    ASSERT_TRUE(db.OpenStorage(opts).ok());
    ASSERT_TRUE(db.CreateTable("f", t).ok());
    Result<Table> ins =
        db.Execute("INSERT INTO f VALUES (9, 2.5, 'wa'), (10, NULL, 'ca')");
    ASSERT_TRUE(ins.ok()) << ins.status().ToString();
    // No checkpoint, no clean shutdown: recovery must replay the WAL.
  }
  PctDatabase db;
  StorageOptions opts;
  opts.data_dir = dir.File("db");
  ASSERT_TRUE(db.OpenStorage(opts).ok());
  Result<const Table*> back =
      static_cast<const PctDatabase&>(db).catalog().GetTable("f");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ((*back)->num_rows(), t.num_rows() + 2);
  EXPECT_EQ((*back)->column(2).StringAt(4), "wa");
  EXPECT_TRUE((*back)->column(1).IsNull(5));
  EXPECT_EQ((*back)->column(2).StringAt(5), "ca");
  // 'ca' was already in the dictionary: same code as row 0.
  EXPECT_EQ((*back)->column(2).codes()[5], (*back)->column(2).codes()[0]);

  // Queries work against recovered tables.
  Result<Table> q = db.Query(
      "SELECT s, Vpct(v BY s) AS pct FROM f GROUP BY s ORDER BY s");
  EXPECT_TRUE(q.ok()) << q.status().ToString();

  // DROP with storage removes the manifest entry durably.
  ASSERT_TRUE(db.Execute("DROP TABLE f").ok());
  PctDatabase db2;
  StorageOptions opts2;
  opts2.data_dir = dir.File("db");
  ASSERT_TRUE(db2.OpenStorage(opts2).ok());
  EXPECT_FALSE(db2.catalog().GetTable("f").ok());
}

TEST(DatabaseStorageTest, CheckpointStatementFlushes) {
  TempDir dir;
  {
    PctDatabase db;
    StorageOptions opts;
    opts.data_dir = dir.File("db");
    opts.fsync = FsyncPolicy::kOff;  // checkpoint must still be durable
    ASSERT_TRUE(db.OpenStorage(opts).ok());
    ASSERT_TRUE(db.CreateTable("f", SampleTable()).ok());
    ASSERT_TRUE(db.Execute("INSERT INTO f VALUES (5, 5.0, 'nv')").ok());
    Result<Table> ck = db.Execute("CHECKPOINT");
    ASSERT_TRUE(ck.ok()) << ck.status().ToString();
    EXPECT_EQ(ck->column(0).Int64At(0), 1);  // one table flushed
    EXPECT_EQ(ck->column(1).Int64At(0), 5);  // rows
  }
  PctDatabase db;
  StorageOptions opts;
  opts.data_dir = dir.File("db");
  ASSERT_TRUE(db.OpenStorage(opts).ok());
  EXPECT_EQ(db.storage()->recovery_stats().wal_records_replayed, 0u);
  Result<const Table*> back =
      static_cast<const PctDatabase&>(db).catalog().GetTable("f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->num_rows(), 5u);
}

}  // namespace
}  // namespace storage
}  // namespace pctagg
