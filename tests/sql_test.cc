// Unit tests for the SQL front-end: lexer, parser (the extended Vpct/Hpct/BY
// syntax) and parse-level error reporting.

#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace pctagg {
namespace {

TEST(LexerTest, TokenizesKeywordsIdentifiersNumbers) {
  std::vector<Token> toks =
      Tokenize("SELECT d1, sum(a) FROM f WHERE a >= 1.5").value();
  ASSERT_GE(toks.size(), 12u);
  EXPECT_TRUE(toks[0].IsKeyword("SELECT"));
  EXPECT_EQ(toks[1].type, TokenType::kIdentifier);
  EXPECT_EQ(toks[1].text, "d1");
  EXPECT_TRUE(toks[2].IsSymbol(","));
  EXPECT_EQ(toks.back().type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  std::vector<Token> toks = Tokenize("select FrOm group BY").value();
  EXPECT_TRUE(toks[0].IsKeyword("SELECT"));
  EXPECT_TRUE(toks[1].IsKeyword("FROM"));
  EXPECT_TRUE(toks[2].IsKeyword("GROUP"));
  EXPECT_TRUE(toks[3].IsKeyword("BY"));
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  std::vector<Token> toks = Tokenize("'it''s'").value();
  EXPECT_EQ(toks[0].type, TokenType::kString);
  EXPECT_EQ(toks[0].text, "it's");
}

TEST(LexerTest, TwoCharOperators) {
  std::vector<Token> toks = Tokenize("a <= b <> c != d >= e").value();
  EXPECT_TRUE(toks[1].IsSymbol("<="));
  EXPECT_TRUE(toks[3].IsSymbol("<>"));
  EXPECT_TRUE(toks[5].IsSymbol("<>"));  // != normalizes to <>
  EXPECT_TRUE(toks[7].IsSymbol(">="));
}

TEST(LexerTest, Errors) {
  EXPECT_EQ(Tokenize("'unterminated").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Tokenize("a @ b").status().code(), StatusCode::kParseError);
}

TEST(ParserTest, PaperVpctQuery) {
  SelectStatement stmt =
      ParseSelect("SELECT state, city, Vpct(salesAmt BY city) "
                  "FROM sales GROUP BY state, city;")
          .value();
  ASSERT_EQ(stmt.terms.size(), 3u);
  EXPECT_EQ(stmt.terms[0].func, TermFunc::kScalar);
  EXPECT_EQ(stmt.terms[2].func, TermFunc::kVpct);
  EXPECT_TRUE(stmt.terms[2].has_by);
  ASSERT_EQ(stmt.terms[2].by_columns.size(), 1u);
  EXPECT_EQ(stmt.terms[2].by_columns[0], "city");
  EXPECT_EQ(stmt.from_table, "sales");
  ASSERT_TRUE(stmt.has_group_by);
  EXPECT_EQ(stmt.group_by, (std::vector<std::string>{"state", "city"}));
}

TEST(ParserTest, PaperHpctQueryWithExtraAggregate) {
  SelectStatement stmt =
      ParseSelect("SELECT store, Hpct(salesAmt BY dweek), sum(salesAmt) "
                  "FROM sales GROUP BY store")
          .value();
  ASSERT_EQ(stmt.terms.size(), 3u);
  EXPECT_EQ(stmt.terms[1].func, TermFunc::kHpct);
  EXPECT_EQ(stmt.terms[2].func, TermFunc::kSum);
  EXPECT_FALSE(stmt.terms[2].has_by);
}

TEST(ParserTest, DmkdHorizontalAggregations) {
  SelectStatement stmt =
      ParseSelect("SELECT storeId, sum(salesAmt BY dayofweekNo), "
                  "count(distinct transactionid BY dayofweekNo), "
                  "max(1 BY deptId DEFAULT 0) "
                  "FROM transactionLine GROUP BY storeId")
          .value();
  ASSERT_EQ(stmt.terms.size(), 4u);
  EXPECT_EQ(stmt.terms[1].func, TermFunc::kSum);
  EXPECT_TRUE(stmt.terms[1].has_by);
  EXPECT_TRUE(stmt.terms[2].distinct);
  EXPECT_TRUE(stmt.terms[3].has_default);
  EXPECT_DOUBLE_EQ(stmt.terms[3].default_value, 0.0);
}

TEST(ParserTest, CountStarAndPositionalGroupBy) {
  SelectStatement stmt =
      ParseSelect("SELECT departmentId, gender, count(*) "
                  "FROM employee GROUP BY 1, 2")
          .value();
  EXPECT_EQ(stmt.terms[2].func, TermFunc::kCountStar);
  EXPECT_EQ(stmt.group_by, (std::vector<std::string>{"1", "2"}));
}

TEST(ParserTest, WindowOverPartitionBy) {
  SelectStatement stmt =
      ParseSelect("SELECT d1, sum(a) OVER (PARTITION BY d1, d2) FROM f")
          .value();
  ASSERT_EQ(stmt.terms.size(), 2u);
  EXPECT_TRUE(stmt.terms[1].has_over);
  EXPECT_EQ(stmt.terms[1].partition_by,
            (std::vector<std::string>{"d1", "d2"}));
}

TEST(ParserTest, WhereOrderByAliases) {
  SelectStatement stmt =
      ParseSelect("SELECT d AS dim, sum(a) AS total FROM f "
                  "WHERE a > 0 AND d <> 3 GROUP BY d ORDER BY d")
          .value();
  EXPECT_EQ(stmt.terms[0].alias, "dim");
  EXPECT_EQ(stmt.terms[1].alias, "total");
  ASSERT_NE(stmt.where, nullptr);
  EXPECT_EQ(stmt.order_by, (std::vector<OrderItem>{{"d", false}}));
}

TEST(ParserTest, ArithmeticPrecedence) {
  SelectStatement stmt = ParseSelect("SELECT a + b * 2 FROM f").value();
  EXPECT_EQ(stmt.terms[0].argument->ToString(), "(a + (b * 2))");
}

TEST(ParserTest, ParenthesesAndUnaryMinus) {
  SelectStatement stmt = ParseSelect("SELECT (a + b) * -2 FROM f").value();
  EXPECT_EQ(stmt.terms[0].argument->ToString(), "((a + b) * (0 - 2))");
}

TEST(ParserTest, CaseWhenExpression) {
  SelectStatement stmt =
      ParseSelect("SELECT CASE WHEN d = 1 THEN a ELSE 0 END FROM f").value();
  EXPECT_EQ(stmt.terms[0].argument->ToString(),
            "CASE WHEN d = 1 THEN a ELSE 0 END");
}

TEST(ParserTest, IsNullPredicates) {
  SelectStatement stmt =
      ParseSelect("SELECT a FROM f WHERE a IS NOT NULL OR d IS NULL").value();
  EXPECT_NE(stmt.where->ToString().find("IS NULL"), std::string::npos);
}

TEST(ParserTest, StatementRoundTripsThroughToString) {
  std::string sql =
      "SELECT store, Hpct(salesAmt BY dweek), sum(salesAmt) "
      "FROM sales GROUP BY store;";
  SelectStatement stmt = ParseSelect(sql).value();
  SelectStatement again = ParseSelect(stmt.ToString()).value();
  EXPECT_EQ(stmt.ToString(), again.ToString());
}

TEST(ParserTest, Errors) {
  EXPECT_EQ(ParseSelect("SELECT FROM f").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseSelect("SELECT a").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseSelect("SELECT a FROM f GROUP d").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseSelect("SELECT sum(a FROM f").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseSelect("SELECT a FROM f extra junk").status().code(),
            StatusCode::kParseError);
  // '*' only in count().
  EXPECT_EQ(ParseSelect("SELECT sum(*) FROM f").status().code(),
            StatusCode::kParseError);
  // Aggregates cannot nest inside scalar expressions.
  EXPECT_EQ(ParseSelect("SELECT 1 + sum(a) FROM f").status().code(),
            StatusCode::kParseError);
  // DEFAULT requires a number.
  EXPECT_EQ(ParseSelect("SELECT max(1 BY d DEFAULT x) FROM f").status().code(),
            StatusCode::kParseError);
  // CASE without WHEN.
  EXPECT_EQ(ParseSelect("SELECT CASE END FROM f").status().code(),
            StatusCode::kParseError);
}

}  // namespace
}  // namespace pctagg
