// Tests for the vertical-percentage planner: all strategy combinations of
// Table 4 must produce identical results, checked against a brute-force
// reference; plus grand totals, multiple terms, NULL/zero handling, WHERE,
// missing-row policies, and generated-SQL inspection.

#include "core/vpct_planner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <tuple>

#include "common/rng.h"
#include "core/database.h"
#include "sql/parser.h"

namespace pctagg {
namespace {

// A fact table with d1(3) x d2(4) x d3(5) dimensions and a measure that
// includes NULLs, zeros and negatives; one (d1,d2) slice is all-zero so the
// division-by-zero path is exercised.
Table RandomFact(uint64_t seed, size_t n = 400) {
  Rng rng(seed);
  Table t(Schema({{"rid", DataType::kInt64},
                  {"d1", DataType::kInt64},
                  {"d2", DataType::kInt64},
                  {"d3", DataType::kInt64},
                  {"a", DataType::kFloat64}}));
  for (size_t i = 0; i < n; ++i) {
    int64_t d1 = static_cast<int64_t>(rng.Uniform(3));
    int64_t d2 = static_cast<int64_t>(rng.Uniform(4));
    int64_t d3 = static_cast<int64_t>(rng.Uniform(5));
    Value a;
    if (d1 == 0 && d2 == 0) {
      a = Value::Float64(0.0);  // forces a zero total for that group
    } else if (rng.Uniform(10) == 0) {
      a = Value::Null();
    } else {
      a = Value::Float64(std::round((rng.NextDouble() - 0.2) * 100.0));
    }
    t.AppendRow({Value::Int64(static_cast<int64_t>(i)), Value::Int64(d1),
                 Value::Int64(d2), Value::Int64(d3), a});
  }
  return t;
}

// Brute-force Vpct(a BY d2) GROUP BY d1,d2: share of each (d1,d2) sum within
// its d1 total; NULL if the total is zero or the group sum is NULL.
std::map<std::pair<int64_t, int64_t>, Value> ReferenceVpct(const Table& f) {
  std::map<std::pair<int64_t, int64_t>, std::pair<double, bool>> sums;
  std::map<int64_t, std::pair<double, bool>> totals;
  const Column& d1 = *f.ColumnByName("d1").value();
  const Column& d2 = *f.ColumnByName("d2").value();
  const Column& a = *f.ColumnByName("a").value();
  for (size_t i = 0; i < f.num_rows(); ++i) {
    auto key = std::make_pair(d1.Int64At(i), d2.Int64At(i));
    sums.emplace(key, std::make_pair(0.0, false));
    if (a.IsNull(i)) continue;
    sums[key].first += a.Float64At(i);
    sums[key].second = true;
    totals[key.first].first += a.Float64At(i);
    totals[key.first].second = true;
  }
  std::map<std::pair<int64_t, int64_t>, Value> out;
  for (const auto& [key, sum] : sums) {
    auto tot = totals.find(key.first);
    bool tot_ok = tot != totals.end() && tot->second.second &&
                  tot->second.first != 0.0;
    if (!sum.second || !tot_ok) {
      out[key] = Value::Null();
    } else {
      out[key] = Value::Float64(sum.first / tot->second.first);
    }
  }
  return out;
}

std::map<std::pair<int64_t, int64_t>, Value> ResultMap(const Table& t,
                                                       const std::string& pct) {
  std::map<std::pair<int64_t, int64_t>, Value> out;
  const Column& d1 = *t.ColumnByName("d1").value();
  const Column& d2 = *t.ColumnByName("d2").value();
  const Column& p = *t.ColumnByName(pct).value();
  for (size_t i = 0; i < t.num_rows(); ++i) {
    out[{d1.Int64At(i), d2.Int64At(i)}] = p.GetValue(i);
  }
  return out;
}

void ExpectValuesNear(const Value& a, const Value& b) {
  ASSERT_EQ(a.is_null(), b.is_null()) << a.ToString() << " vs " << b.ToString();
  if (!a.is_null()) {
    EXPECT_NEAR(a.AsDouble(), b.AsDouble(), 1e-9);
  }
}

constexpr char kSql[] =
    "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2";

// The three Table 4 knobs as a parameterized sweep: every combination is
// semantically equivalent.
class VpctStrategyEquivalence
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(VpctStrategyEquivalence, MatchesBruteForce) {
  auto [matching_indexes, insert_result, fj_from_fk] = GetParam();
  PctDatabase db;
  Table f = RandomFact(77);
  auto reference = ReferenceVpct(f);
  ASSERT_TRUE(db.CreateTable("f", std::move(f)).ok());
  VpctStrategy strategy;
  strategy.matching_indexes = matching_indexes;
  strategy.insert_result = insert_result;
  strategy.fj_from_fk = fj_from_fk;
  Result<Table> r = db.QueryVpct(kSql, strategy);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto got = ResultMap(r.value(), "pct");
  ASSERT_EQ(got.size(), reference.size());
  for (const auto& [key, expected] : reference) {
    ASSERT_TRUE(got.count(key)) << key.first << "," << key.second;
    ExpectValuesNear(got.at(key), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKnobCombinations, VpctStrategyEquivalence,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

TEST(VpctPlannerTest, GroupPercentagesSumToOne) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(13)).ok());
  Table t = db.Query(kSql).value();
  std::map<int64_t, double> sums;
  std::map<int64_t, bool> has_null;
  const Column& d1 = *t.ColumnByName("d1").value();
  const Column& p = *t.ColumnByName("pct").value();
  for (size_t i = 0; i < t.num_rows(); ++i) {
    if (p.IsNull(i)) {
      has_null[d1.Int64At(i)] = true;
    } else {
      sums[d1.Int64At(i)] += p.Float64At(i);
    }
  }
  for (const auto& [group, total] : sums) {
    if (!has_null[group]) {
      EXPECT_NEAR(total, 1.0, 1e-9) << "group " << group;
    }
  }
}

TEST(VpctPlannerTest, NoByClauseUsesGrandTotal) {
  PctDatabase db;
  Table f(Schema({{"d1", DataType::kInt64}, {"a", DataType::kFloat64}}));
  f.AppendRow({Value::Int64(1), Value::Float64(10)});
  f.AppendRow({Value::Int64(2), Value::Float64(30)});
  ASSERT_TRUE(db.CreateTable("f", std::move(f)).ok());
  Table t = db.Query("SELECT d1, Vpct(a) AS pct FROM f GROUP BY d1 "
                     "ORDER BY d1")
                .value();
  EXPECT_NEAR(t.ColumnByName("pct").value()->Float64At(0), 0.25, 1e-12);
  EXPECT_NEAR(t.ColumnByName("pct").value()->Float64At(1), 0.75, 1e-12);
}

TEST(VpctPlannerTest, ByEqualsGroupByAlsoGrandTotal) {
  PctDatabase db;
  Table f(Schema({{"d1", DataType::kInt64}, {"a", DataType::kFloat64}}));
  f.AppendRow({Value::Int64(1), Value::Float64(10)});
  f.AppendRow({Value::Int64(2), Value::Float64(30)});
  ASSERT_TRUE(db.CreateTable("f", std::move(f)).ok());
  Table t = db.Query("SELECT d1, Vpct(a BY d1) AS pct FROM f GROUP BY d1 "
                     "ORDER BY d1")
                .value();
  EXPECT_NEAR(t.ColumnByName("pct").value()->Float64At(0), 0.25, 1e-12);
}

TEST(VpctPlannerTest, MultipleVpctTermsWithDifferentBy) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(5)).ok());
  Result<Table> r = db.Query(
      "SELECT d1, d2, d3, Vpct(a BY d3) AS p1, Vpct(a BY d2, d3) AS p2, "
      "sum(a) AS s FROM f GROUP BY d1, d2, d3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Table& t = r.value();
  EXPECT_TRUE(t.schema().HasColumn("p1"));
  EXPECT_TRUE(t.schema().HasColumn("p2"));
  EXPECT_TRUE(t.schema().HasColumn("s"));
  // p1 groups by (d1,d2); p2 groups by d1 only: p2 <= ... both in [0,1] when
  // measures are nonnegative — here they can be negative, so just sanity
  // check totals: per (d1,d2), p1 sums to ~1 where defined and total nonzero.
  // (Deeper equivalence is covered by the strategy sweep.)
  // UPDATE strategy also supports m>1:
  VpctStrategy update_strategy;
  update_strategy.insert_result = false;
  Result<Table> r2 = db.QueryVpct(
      "SELECT d1, d2, d3, Vpct(a BY d3) AS p1, Vpct(a BY d2, d3) AS p2 "
      "FROM f GROUP BY d1, d2, d3",
      update_strategy);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_TRUE(r2.value().schema().HasColumn("p1"));
  EXPECT_TRUE(r2.value().schema().HasColumn("p2"));
}

TEST(VpctPlannerTest, CombinedWithOtherAggregates) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(9)).ok());
  Table t = db.Query(
                  "SELECT d1, d2, Vpct(a BY d2) AS pct, sum(a) AS s, "
                  "count(*) AS n, min(a) AS lo FROM f GROUP BY d1, d2")
                .value();
  EXPECT_TRUE(t.schema().HasColumn("s"));
  EXPECT_TRUE(t.schema().HasColumn("n"));
  EXPECT_TRUE(t.schema().HasColumn("lo"));
  // count(*) over the whole fact table adds to 400.
  int64_t total_rows = 0;
  const Column& n = *t.ColumnByName("n").value();
  for (size_t i = 0; i < t.num_rows(); ++i) total_rows += n.Int64At(i);
  EXPECT_EQ(total_rows, 400);
}

TEST(VpctPlannerTest, WhereClauseRestrictsFacts) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(21)).ok());
  Result<Table> all = db.Query(kSql);
  Result<Table> filtered = db.Query(
      "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f WHERE d3 = 1 "
      "GROUP BY d1, d2");
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(filtered.ok());
  EXPECT_LE(filtered.value().num_rows(), all.value().num_rows());
  EXPECT_GT(filtered.value().num_rows(), 0u);
}

TEST(VpctPlannerTest, ZeroTotalGroupYieldsNull) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(3)).ok());
  Table t = db.Query(kSql).value();
  auto got = ResultMap(t, "pct");
  // (d1=0, d2=0) cells are all zero, so the d1=0 total includes zero rows —
  // the (0,0) group itself sums to 0. Its percentage is 0/total or NULL if
  // the whole d1=0 total is 0. Either way the reference map agrees:
  auto reference = ReferenceVpct(*db.catalog().GetTable("f").value());
  ExpectValuesNear(got.at({0, 0}), reference.at({0, 0}));
}

TEST(VpctPlannerTest, PostProcessMissingRowsUniformGroups) {
  PctDatabase db;
  // d2 value 9 appears only under d1=1, so (d1=0, d2=9) is a missing cell.
  Table f(Schema({{"d1", DataType::kInt64},
                  {"d2", DataType::kInt64},
                  {"a", DataType::kFloat64}}));
  f.AppendRow({Value::Int64(0), Value::Int64(1), Value::Float64(10)});
  f.AppendRow({Value::Int64(1), Value::Int64(1), Value::Float64(20)});
  f.AppendRow({Value::Int64(1), Value::Int64(9), Value::Float64(20)});
  ASSERT_TRUE(db.CreateTable("f", std::move(f)).ok());
  VpctStrategy strategy;
  strategy.missing_rows = MissingRowPolicy::kPostProcess;
  Table t = db.QueryVpct("SELECT d1, d2, Vpct(a BY d2) AS pct FROM f "
                         "GROUP BY d1, d2",
                         strategy)
                .value();
  // 2 groups x 2 combos = 4 rows; the inserted (0,9) row has pct 0.
  ASSERT_EQ(t.num_rows(), 4u);
  auto got = ResultMap(t, "pct");
  ExpectValuesNear(got.at({0, 9}), Value::Float64(0.0));
  ExpectValuesNear(got.at({1, 9}), Value::Float64(0.5));
}

TEST(VpctPlannerTest, PreProcessMissingRowsAndVpct1Caveat) {
  PctDatabase db;
  Table f(Schema({{"d1", DataType::kInt64},
                  {"d2", DataType::kInt64},
                  {"a", DataType::kFloat64}}));
  f.AppendRow({Value::Int64(0), Value::Int64(1), Value::Float64(10)});
  f.AppendRow({Value::Int64(1), Value::Int64(1), Value::Float64(20)});
  f.AppendRow({Value::Int64(1), Value::Int64(9), Value::Float64(20)});
  ASSERT_TRUE(db.CreateTable("f", std::move(f)).ok());
  VpctStrategy strategy;
  strategy.missing_rows = MissingRowPolicy::kPreProcess;
  Table t = db.QueryVpct("SELECT d1, d2, Vpct(a BY d2) AS pct FROM f "
                         "GROUP BY d1, d2",
                         strategy)
                .value();
  ASSERT_EQ(t.num_rows(), 4u);
  auto got = ResultMap(t, "pct");
  ExpectValuesNear(got.at({0, 9}), Value::Float64(0.0));
  // The paper's caveat: with pre-inserted rows, Vpct(1) row-count
  // percentages become wrong (the synthetic row is counted).
  Table counts = db.QueryVpct("SELECT d1, d2, Vpct(1 BY d2) AS pct FROM f "
                              "GROUP BY d1, d2",
                              strategy)
                     .value();
  auto cgot = ResultMap(counts, "pct");
  // True row-count share of (0,1) within d1=0 is 100%; with the synthetic
  // (0,9) row it reports 50%.
  ExpectValuesNear(cgot.at({0, 1}), Value::Float64(0.5));
}

TEST(VpctPlannerTest, MissingRowPoliciesRejectMultipleTerms) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(1)).ok());
  VpctStrategy strategy;
  strategy.missing_rows = MissingRowPolicy::kPostProcess;
  Result<Table> r = db.QueryVpct(
      "SELECT d1, d2, d3, Vpct(a BY d2, d3) AS p1, Vpct(a BY d3) AS p2 "
      "FROM f GROUP BY d1, d2, d3",
      strategy);
  EXPECT_FALSE(r.ok());
}

TEST(VpctPlannerTest, GeneratedSqlFollowsStrategy) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(2)).ok());
  SelectStatement stmt = ParseSelect(kSql).value();
  AnalyzedQuery q =
      Analyze(stmt, db.catalog().GetTable("f").value()->schema()).value();

  Plan insert_plan = PlanVpctQuery(q, VpctStrategy{}).value();
  std::string sql = insert_plan.ToSql();
  EXPECT_NE(sql.find("CREATE INDEX"), std::string::npos);
  EXPECT_NE(sql.find("CASE WHEN"), std::string::npos);
  EXPECT_EQ(sql.find("UPDATE"), std::string::npos);

  VpctStrategy upd;
  upd.insert_result = false;
  Plan update_plan = PlanVpctQuery(q, upd).value();
  EXPECT_NE(update_plan.ToSql().find("UPDATE"), std::string::npos);

  VpctStrategy from_f;
  from_f.fj_from_fk = false;
  Plan scan_plan = PlanVpctQuery(q, from_f).value();
  // Fj comes from a second scan of f, not from Fk.
  EXPECT_NE(scan_plan.ToSql().find("FROM f GROUP BY d1"), std::string::npos);
}

TEST(VpctPlannerTest, PlanCleanupDropsTemporaries) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(4)).ok());
  size_t before = db.catalog().TableNames().size();
  ASSERT_TRUE(db.Query(kSql).ok());
  EXPECT_EQ(db.catalog().TableNames().size(), before);
}

TEST(VpctPlannerTest, LatticeReuseSourcesCoarserFjFromFinerFj) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(31)).ok());
  SelectStatement stmt = ParseSelect(
                             "SELECT d1, d2, d3, Vpct(a BY d3) AS p1, "
                             "Vpct(a BY d2, d3) AS p2 "
                             "FROM f GROUP BY d1, d2, d3")
                             .value();
  AnalyzedQuery q =
      Analyze(stmt, db.catalog().GetTable("f").value()->schema()).value();
  // With lattice reuse the coarser Fj (grouped by d1) aggregates the finer
  // Fj (grouped by d1, d2): the generated script shows an Fj reading Fj.
  Plan reuse = PlanVpctQuery(q, VpctStrategy{}).value();
  EXPECT_NE(reuse.ToSql().find("FROM Fj"), std::string::npos)
      << reuse.ToSql();
  VpctStrategy no_reuse;
  no_reuse.lattice_reuse = false;
  Plan plain = PlanVpctQuery(q, no_reuse).value();
  EXPECT_EQ(plain.ToSql().find("FROM Fj"), std::string::npos)
      << plain.ToSql();
  // Identical answers either way.
  Result<Table> a = db.QueryVpct(stmt.ToString(), VpctStrategy{});
  Result<Table> b = db.QueryVpct(stmt.ToString(), no_reuse);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().num_rows(), b.value().num_rows());
  const Column& p1a = *a.value().ColumnByName("p1").value();
  const Column& p2a = *a.value().ColumnByName("p2").value();
  // Compare via maps keyed on (d1,d2,d3).
  auto key_of = [](const Table& t, size_t i) {
    return std::make_tuple(t.ColumnByName("d1").value()->Int64At(i),
                           t.ColumnByName("d2").value()->Int64At(i),
                           t.ColumnByName("d3").value()->Int64At(i));
  };
  std::map<std::tuple<int64_t, int64_t, int64_t>, std::pair<Value, Value>>
      bmap;
  for (size_t i = 0; i < b.value().num_rows(); ++i) {
    bmap[key_of(b.value(), i)] = {
        b.value().ColumnByName("p1").value()->GetValue(i),
        b.value().ColumnByName("p2").value()->GetValue(i)};
  }
  for (size_t i = 0; i < a.value().num_rows(); ++i) {
    const auto& [bp1, bp2] = bmap.at(key_of(a.value(), i));
    ExpectValuesNear(p1a.GetValue(i), bp1);
    ExpectValuesNear(p2a.GetValue(i), bp2);
  }
}

TEST(VpctPlannerTest, LatticeReuseRespectsDifferentMeasures) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(33)).ok());
  // Terms aggregate different expressions: no reuse possible, plans must
  // still be correct.
  Result<Table> r = db.QueryVpct(
      "SELECT d1, d2, d3, Vpct(a BY d2, d3) AS p1, Vpct(1 BY d3) AS p2 "
      "FROM f GROUP BY d1, d2, d3",
      VpctStrategy{});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().schema().HasColumn("p1"));
  EXPECT_TRUE(r.value().schema().HasColumn("p2"));
}

TEST(VpctPlannerTest, RejectsNonVpctQuery) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(4)).ok());
  SelectStatement stmt =
      ParseSelect("SELECT d1, sum(a) FROM f GROUP BY d1").value();
  AnalyzedQuery q =
      Analyze(stmt, db.catalog().GetTable("f").value()->schema()).value();
  EXPECT_FALSE(PlanVpctQuery(q, VpctStrategy{}).ok());
}

}  // namespace
}  // namespace pctagg
