// Tests for the analytic cost model: its rankings must agree with the
// paper's qualitative findings (and with what this repo's benchmarks
// measure), even though its outputs are abstract row-operation counts.

#include "core/cost_model.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pctagg {
namespace {

// Paper-sales-like stats: n=10M, dept x store x dweek x monthNo groups,
// dweek x monthNo result columns.
FactStats BigSalesStats() {
  FactStats s;
  s.rows = 10e6;
  s.group_cardinality = 840000;  // dept(100) x store(100) x dweek(7) x mo(12)
  s.totals_cardinality = 10000;  // dept x store
  s.by_cardinality = 84;         // dweek x monthNo
  return s;
}

// Low-selectivity shape: n=1M, gender x marstatus.
FactStats SmallEmployeeStats() {
  FactStats s;
  s.rows = 1e6;
  s.group_cardinality = 8;   // gender(2) x marstatus(4)
  s.totals_cardinality = 2;  // gender
  s.by_cardinality = 4;      // marstatus
  return s;
}

TEST(CostModelTest, VpctBestStrategyIsThePapersRecommendation) {
  CostModel model;
  for (const FactStats& stats : {BigSalesStats(), SmallEmployeeStats()}) {
    VpctStrategy best = model.PickVpct(stats);
    EXPECT_TRUE(best.fj_from_fk);
    EXPECT_TRUE(best.insert_result);
    EXPECT_TRUE(best.matching_indexes);
  }
}

TEST(CostModelTest, FjFromFkSavingsGrowWithCompression) {
  CostModel model;
  FactStats stats = BigSalesStats();
  VpctStrategy from_fk;
  VpctStrategy from_f;
  from_f.fj_from_fk = false;
  double saving_big =
      model.VpctCost(stats, from_f) - model.VpctCost(stats, from_fk);
  stats.group_cardinality = stats.rows;  // |Fk| == n: no compression
  double saving_none =
      model.VpctCost(stats, from_f) - model.VpctCost(stats, from_fk);
  EXPECT_GT(saving_big, 0);
  EXPECT_GT(saving_big, saving_none);
}

TEST(CostModelTest, UpdatePenaltyScalesWithFv) {
  CostModel model;
  VpctStrategy insert;
  VpctStrategy update;
  update.insert_result = false;
  FactStats big = BigSalesStats();
  FactStats small = SmallEmployeeStats();
  double penalty_big =
      model.VpctCost(big, update) - model.VpctCost(big, insert);
  double penalty_small =
      model.VpctCost(small, update) - model.VpctCost(small, insert);
  EXPECT_GT(penalty_big, penalty_small);
  EXPECT_GE(penalty_small, 0);
}

TEST(CostModelTest, SpjAlwaysLosesToCase) {
  CostModel model;
  for (const FactStats& stats : {BigSalesStats(), SmallEmployeeStats()}) {
    HorizontalStrategy case_direct;
    case_direct.hash_dispatch = false;
    HorizontalStrategy spj;
    spj.method = HorizontalMethod::kSpjDirect;
    EXPECT_GT(model.HorizontalCost(stats, spj),
              model.HorizontalCost(stats, case_direct));
  }
}

TEST(CostModelTest, SpjGapGrowsWithN) {
  CostModel model;
  FactStats stats = BigSalesStats();
  HorizontalStrategy case_direct;
  HorizontalStrategy spj;
  spj.method = HorizontalMethod::kSpjDirect;
  stats.by_cardinality = 4;
  double gap_small = model.HorizontalCost(stats, spj) /
                     model.HorizontalCost(stats, case_direct);
  stats.by_cardinality = 100;
  double gap_large = model.HorizontalCost(stats, spj) /
                     model.HorizontalCost(stats, case_direct);
  EXPECT_GT(gap_large, gap_small);
  EXPECT_GT(gap_large, 10.0);  // the paper's order(s) of magnitude
}

TEST(CostModelTest, FromFvWinsWhenFvIsSmallAndNCellsLarge) {
  CostModel model;
  // Naive CASE evaluation (the DBMS behaviour Table 5 measures).
  HorizontalStrategy direct;
  direct.hash_dispatch = false;
  HorizontalStrategy via_fv;
  via_fv.method = HorizontalMethod::kCaseFromFV;
  via_fv.hash_dispatch = false;
  // employee gender,educat BY age x marstatus: N=400, |FV| tiny.
  FactStats wide;
  wide.rows = 1e6;
  wide.group_cardinality = 4000;
  wide.totals_cardinality = 10;
  wide.by_cardinality = 400;
  EXPECT_LT(model.HorizontalCost(wide, via_fv),
            model.HorizontalCost(wide, direct));
  // dweek only (N=7, FV barely smaller than relevant work): direct must not
  // lose big — the model should keep them within a small factor.
  FactStats narrow;
  narrow.rows = 1e6;
  narrow.group_cardinality = 7;  // |FV| at dweek level
  narrow.totals_cardinality = 1;
  narrow.by_cardinality = 7;
  double ratio = model.HorizontalCost(narrow, direct) /
                 model.HorizontalCost(narrow, via_fv);
  EXPECT_LT(ratio, 3.0);
}

TEST(CostModelTest, OlapAlwaysLosesToVpctBest) {
  CostModel model;
  for (const FactStats& stats : {BigSalesStats(), SmallEmployeeStats()}) {
    EXPECT_GT(model.OlapCost(stats), model.VpctCost(stats, VpctStrategy{}));
  }
}

TEST(CostModelTest, EstimateStatsFromData) {
  Rng rng(17);
  Table t(Schema({{"g", DataType::kInt64},
                  {"b", DataType::kInt64},
                  {"hi", DataType::kInt64},
                  {"a", DataType::kFloat64}}));
  for (int i = 0; i < 5000; ++i) {
    t.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(4))),
                 Value::Int64(static_cast<int64_t>(rng.Uniform(7))),
                 Value::Int64(static_cast<int64_t>(i)),  // key-like
                 Value::Float64(1.0)});
  }
  CostModel model;
  FactStats stats =
      model.EstimateStats(t, {"g", "b"}, {"g"}, {"b"}).value();
  EXPECT_DOUBLE_EQ(stats.rows, 5000);
  EXPECT_NEAR(stats.group_cardinality, 28, 4);  // 4 x 7
  EXPECT_NEAR(stats.totals_cardinality, 4, 0.5);
  EXPECT_NEAR(stats.by_cardinality, 7, 0.5);
  // Key-like columns extrapolate to ~n and the product caps at n.
  FactStats keyed = model.EstimateStats(t, {"hi", "b"}, {}, {}).value();
  EXPECT_DOUBLE_EQ(keyed.group_cardinality, 5000);
  EXPECT_FALSE(model.EstimateStats(t, {"nope"}, {}, {}).ok());
}

// Distributed fan-out economics: on a scan-bound fact the 4-shard plan
// beats the single-node scan, more shards keep helping while scans dominate,
// and when the partial table is nearly as large as the fact (high group
// cardinality) the network/merge terms make fan-out a loss. This crossover
// is what EXPLAIN ANALYZE's "predicted costs" line shows on sharded tables.
TEST(CostModelTest, DistributedCostCrossover) {
  CostModel model;
  FactStats scan_bound = BigSalesStats();
  scan_bound.group_cardinality = 70;  // dweek x stateId: tiny partials
  scan_bound.dop = 1;
  const double single = model.FusedVpctCost(scan_bound);
  const double four = model.DistributedCost(scan_bound, 4, 1, 3);
  EXPECT_LT(four, single);
  EXPECT_GT(single / four, 2.0);  // the bench_shard acceptance floor
  // More shards shrink the scan term further (merge stays negligible here).
  EXPECT_LT(model.DistributedCost(scan_bound, 8, 1, 3), four);
  // Worker-side dop multiplies into the scan term too.
  EXPECT_LT(model.DistributedCost(scan_bound, 4, 4, 3), four);

  // Merge-bound shape: every row its own group, so each shard ships a
  // partial as big as its slice and the coordinator re-aggregates all of
  // it serially — fan-out must lose to the local scan.
  FactStats merge_bound = scan_bound;
  merge_bound.group_cardinality = merge_bound.rows;
  EXPECT_GT(model.DistributedCost(merge_bound, 4, 1, 3),
            model.FusedVpctCost(merge_bound));
}

TEST(CostModelTest, PickHorizontalNeverPicksSpj) {
  CostModel model;
  for (const FactStats& stats : {BigSalesStats(), SmallEmployeeStats()}) {
    HorizontalStrategy best = model.PickHorizontal(stats);
    EXPECT_TRUE(best.method == HorizontalMethod::kCaseDirect ||
                best.method == HorizontalMethod::kCaseFromFV);
  }
}

}  // namespace
}  // namespace pctagg
