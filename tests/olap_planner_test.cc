// Tests for the ANSI OLAP window-function baseline planner and plain window
// queries.

#include "core/olap_planner.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/database.h"
#include "sql/parser.h"

namespace pctagg {
namespace {

Table RandomFact(uint64_t seed, size_t n = 250) {
  Rng rng(seed);
  Table t(Schema({{"d1", DataType::kInt64},
                  {"d2", DataType::kInt64},
                  {"a", DataType::kFloat64}}));
  for (size_t i = 0; i < n; ++i) {
    Value a = rng.Uniform(15) == 0
                  ? Value::Null()
                  : Value::Float64(1.0 + rng.NextDouble() * 9.0);
    t.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(4))),
                 Value::Int64(static_cast<int64_t>(rng.Uniform(5))), a});
  }
  return t;
}

TEST(OlapPlannerTest, MatchesVpctOnRandomData) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(31)).ok());
  std::string sql =
      "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2 "
      "ORDER BY d1, d2";
  Table direct = db.Query(sql).value();
  Table olap = db.QueryOlapBaseline(sql).value();
  ASSERT_EQ(direct.num_rows(), olap.num_rows());
  ASSERT_EQ(direct.num_columns(), olap.num_columns());
  for (size_t i = 0; i < direct.num_rows(); ++i) {
    for (size_t c = 0; c < direct.num_columns(); ++c) {
      Value a = direct.column(c).GetValue(i);
      Value b = olap.column(c).GetValue(i);
      ASSERT_EQ(a.is_null(), b.is_null()) << "row " << i << " col " << c;
      if (!a.is_null() && a.is_float64()) {
        EXPECT_NEAR(a.AsDouble(), b.AsDouble(), 1e-9);
      }
    }
  }
}

TEST(OlapPlannerTest, MatchesVpctWithGrandTotal) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(37)).ok());
  std::string sql =
      "SELECT d1, Vpct(a) AS pct FROM f GROUP BY d1 ORDER BY d1";
  Table direct = db.Query(sql).value();
  Table olap = db.QueryOlapBaseline(sql).value();
  ASSERT_EQ(direct.num_rows(), olap.num_rows());
  for (size_t i = 0; i < direct.num_rows(); ++i) {
    EXPECT_NEAR(direct.ColumnByName("pct").value()->Float64At(i),
                olap.ColumnByName("pct").value()->Float64At(i), 1e-9);
  }
}

TEST(OlapPlannerTest, RejectsNonVpctQueries) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(2)).ok());
  EXPECT_FALSE(
      db.QueryOlapBaseline("SELECT d1, sum(a) FROM f GROUP BY d1").ok());
}

TEST(OlapPlannerTest, GeneratedSqlUsesWindows) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(2)).ok());
  SelectStatement stmt =
      ParseSelect("SELECT d1, d2, Vpct(a BY d2) FROM f GROUP BY d1, d2")
          .value();
  AnalyzedQuery q =
      Analyze(stmt, db.catalog().GetTable("f").value()->schema()).value();
  std::string sql = PlanOlapPercentageQuery(q).value().ToSql();
  EXPECT_NE(sql.find("OVER (PARTITION BY"), std::string::npos);
  EXPECT_NE(sql.find("SELECT DISTINCT"), std::string::npos);
}

TEST(WindowQueryTest, SumOverPartition) {
  PctDatabase db;
  Table f(Schema({{"d", DataType::kInt64}, {"a", DataType::kFloat64}}));
  f.AppendRow({Value::Int64(1), Value::Float64(1)});
  f.AppendRow({Value::Int64(1), Value::Float64(2)});
  f.AppendRow({Value::Int64(2), Value::Float64(5)});
  ASSERT_TRUE(db.CreateTable("f", std::move(f)).ok());
  Table t = db.Query("SELECT d, sum(a) OVER (PARTITION BY d) AS tot FROM f")
                .value();
  ASSERT_EQ(t.num_rows(), 3u);  // one output row per input row
  EXPECT_DOUBLE_EQ(t.ColumnByName("tot").value()->Float64At(0), 3.0);
  EXPECT_DOUBLE_EQ(t.ColumnByName("tot").value()->Float64At(2), 5.0);
}

TEST(WindowQueryTest, EmptyOverIsGrandTotal) {
  PctDatabase db;
  Table f(Schema({{"d", DataType::kInt64}, {"a", DataType::kFloat64}}));
  f.AppendRow({Value::Int64(1), Value::Float64(1)});
  f.AppendRow({Value::Int64(2), Value::Float64(2)});
  ASSERT_TRUE(db.CreateTable("f", std::move(f)).ok());
  Table t = db.Query("SELECT d, sum(a) OVER () AS tot FROM f").value();
  EXPECT_DOUBLE_EQ(t.ColumnByName("tot").value()->Float64At(0), 3.0);
  EXPECT_DOUBLE_EQ(t.ColumnByName("tot").value()->Float64At(1), 3.0);
}

TEST(WindowQueryTest, WhereAppliesBeforeWindow) {
  PctDatabase db;
  Table f(Schema({{"d", DataType::kInt64}, {"a", DataType::kFloat64}}));
  f.AppendRow({Value::Int64(1), Value::Float64(1)});
  f.AppendRow({Value::Int64(1), Value::Float64(100)});
  ASSERT_TRUE(db.CreateTable("f", std::move(f)).ok());
  Table t = db.Query("SELECT d, sum(a) OVER (PARTITION BY d) AS tot "
                     "FROM f WHERE a < 10")
                .value();
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(t.ColumnByName("tot").value()->Float64At(0), 1.0);
}

}  // namespace
}  // namespace pctagg
