// Tests for the extended SQL surface: HAVING, ORDER BY ... DESC, LIMIT,
// and the scalar functions COALESCE / ABS / ROUND — end to end through
// PctDatabase and at the expression level.

#include <gtest/gtest.h>

#include "core/database.h"
#include "sql/parser.h"

namespace pctagg {
namespace {

class SqlSurfaceDb {
 public:
  SqlSurfaceDb() {
    Table f(Schema({{"d", DataType::kInt64},
                    {"e", DataType::kInt64},
                    {"a", DataType::kFloat64}}));
    f.AppendRow({Value::Int64(1), Value::Int64(1), Value::Float64(10)});
    f.AppendRow({Value::Int64(1), Value::Int64(2), Value::Float64(30)});
    f.AppendRow({Value::Int64(2), Value::Int64(1), Value::Float64(5)});
    f.AppendRow({Value::Int64(3), Value::Int64(2), Value::Null()});
    f.AppendRow({Value::Int64(3), Value::Int64(1), Value::Float64(2)});
    db_.CreateTable("f", std::move(f)).ok();
  }
  PctDatabase& operator*() { return db_; }
  PctDatabase* operator->() { return &db_; }

 private:
  PctDatabase db_;
};

TEST(SqlSurfaceTest, OrderByDescending) {
  SqlSurfaceDb db;
  Table t = db->Query("SELECT d, sum(a) AS s FROM f GROUP BY d "
                     "ORDER BY s DESC")
                .value();
  ASSERT_EQ(t.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(t.ColumnByName("s").value()->Float64At(0), 40.0);
  EXPECT_DOUBLE_EQ(t.ColumnByName("s").value()->Float64At(1), 5.0);
  EXPECT_DOUBLE_EQ(t.ColumnByName("s").value()->Float64At(2), 2.0);
}

TEST(SqlSurfaceTest, DescendingPutsNullsLast) {
  SqlSurfaceDb db;
  Table t = db->Query("SELECT d, e, sum(a) AS s FROM f GROUP BY d, e "
                     "ORDER BY s DESC")
                .value();
  // The (3,2) group's sum is NULL: last under DESC.
  EXPECT_TRUE(t.ColumnByName("s").value()->IsNull(t.num_rows() - 1));
  Table asc = db->Query("SELECT d, e, sum(a) AS s FROM f GROUP BY d, e "
                       "ORDER BY s")
                  .value();
  EXPECT_TRUE(asc.ColumnByName("s").value()->IsNull(0));
}

TEST(SqlSurfaceTest, LimitTruncates) {
  SqlSurfaceDb db;
  Table t = db->Query("SELECT d, sum(a) AS s FROM f GROUP BY d "
                     "ORDER BY d LIMIT 2")
                .value();
  EXPECT_EQ(t.num_rows(), 2u);
  // LIMIT larger than the result is a no-op.
  Table all = db->Query("SELECT d, sum(a) AS s FROM f GROUP BY d LIMIT 99")
                  .value();
  EXPECT_EQ(all.num_rows(), 3u);
  EXPECT_EQ(db->Query("SELECT d FROM f LIMIT 0").value().num_rows(), 0u);
}

TEST(SqlSurfaceTest, HavingFiltersGroups) {
  SqlSurfaceDb db;
  Table t = db->Query("SELECT d, sum(a) AS s FROM f GROUP BY d "
                     "HAVING s > 4 ORDER BY d")
                .value();
  ASSERT_EQ(t.num_rows(), 2u);  // d=3 (sum 2) drops
  EXPECT_EQ(t.column(0).Int64At(0), 1);
  EXPECT_EQ(t.column(0).Int64At(1), 2);
}

TEST(SqlSurfaceTest, HavingWorksOnPercentageQueries) {
  SqlSurfaceDb db;
  Table t = db->Query("SELECT d, e, Vpct(a BY e) AS pct FROM f "
                     "GROUP BY d, e HAVING pct >= 0.5 ORDER BY d, e")
                .value();
  const Column& pct = *t.ColumnByName("pct").value();
  for (size_t i = 0; i < t.num_rows(); ++i) {
    ASSERT_FALSE(pct.IsNull(i));
    EXPECT_GE(pct.Float64At(i), 0.5);
  }
  EXPECT_GT(t.num_rows(), 0u);
}

TEST(SqlSurfaceTest, HavingRequiresGroupBy) {
  SqlSurfaceDb db;
  EXPECT_EQ(db->Query("SELECT a FROM f HAVING a > 1").status().code(),
            StatusCode::kParseError);
}

TEST(SqlSurfaceTest, HavingOverUnknownColumnErrors) {
  SqlSurfaceDb db;
  EXPECT_FALSE(db->Query("SELECT d, sum(a) AS s FROM f GROUP BY d "
                        "HAVING nope > 1")
                   .ok());
}

TEST(SqlSurfaceTest, CoalesceInQueries) {
  SqlSurfaceDb db;
  Table t = db->Query("SELECT d, e, COALESCE(a, 0) AS a0 FROM f "
                     "ORDER BY d, e")
                .value();
  // The NULL measure becomes 0.
  const Column& a0 = *t.ColumnByName("a0").value();
  for (size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_FALSE(a0.IsNull(i));
  }
}

TEST(SqlSurfaceTest, AbsAndRound) {
  SqlSurfaceDb db;
  Table t = db->Query("SELECT d, ABS(0 - a) AS m, ROUND(a / 3, 2) AS r "
                     "FROM f WHERE a IS NOT NULL ORDER BY d, m")
                .value();
  EXPECT_DOUBLE_EQ(t.ColumnByName("m").value()->Float64At(0), 10.0);
  EXPECT_DOUBLE_EQ(t.ColumnByName("r").value()->Float64At(0), 3.33);
}

TEST(SqlSurfaceTest, ScalarFunctionExpressions) {
  Table t(Schema({{"x", DataType::kFloat64}, {"s", DataType::kString}}));
  t.AppendRow({Value::Null(), Value::String("a")});
  t.AppendRow({Value::Float64(-2.345), Value::Null()});
  // COALESCE across types errors.
  EXPECT_EQ(Coalesce({Col("x"), Col("s")})->ResultType(t.schema()).status().code(),
            StatusCode::kTypeMismatch);
  // COALESCE picks the first non-null.
  Column c = Coalesce({Col("x"), Lit(Value::Float64(9.0))})->Evaluate(t).value();
  EXPECT_DOUBLE_EQ(c.Float64At(0), 9.0);
  EXPECT_DOUBLE_EQ(c.Float64At(1), -2.345);
  // ABS preserves NULL and integer types.
  Column a = Abs(Col("x"))->Evaluate(t).value();
  EXPECT_TRUE(a.IsNull(0));
  EXPECT_DOUBLE_EQ(a.Float64At(1), 2.345);
  Column ai = Abs(Lit(Value::Int64(-5)))->Evaluate(t).value();
  EXPECT_EQ(ai.type(), DataType::kInt64);
  EXPECT_EQ(ai.Int64At(0), 5);
  // ROUND.
  Column r = Round(Col("x"), 1)->Evaluate(t).value();
  EXPECT_TRUE(r.IsNull(0));
  EXPECT_DOUBLE_EQ(r.Float64At(1), -2.3);
  // ABS/ROUND over strings error.
  EXPECT_FALSE(Abs(Col("s"))->ResultType(t.schema()).ok());
  EXPECT_FALSE(Round(Col("s"), 0)->ResultType(t.schema()).ok());
}

TEST(SqlSurfaceTest, ParserErrorsForNewSyntax) {
  EXPECT_EQ(ParseSelect("SELECT a FROM f LIMIT x").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseSelect("SELECT ABS(a, b) FROM f").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseSelect("SELECT ROUND() FROM f").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseSelect("SELECT COALESCE() FROM f").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseSelect("SELECT ROUND(a, b) FROM f").status().code(),
            StatusCode::kParseError);
}

TEST(SqlSurfaceTest, RoundTripRendering) {
  std::string sql =
      "SELECT d, sum(a) AS s FROM f GROUP BY d HAVING s > 4 "
      "ORDER BY s DESC LIMIT 5;";
  SelectStatement stmt = ParseSelect(sql).value();
  SelectStatement again = ParseSelect(stmt.ToString()).value();
  EXPECT_EQ(stmt.ToString(), again.ToString());
  EXPECT_TRUE(stmt.has_limit);
  EXPECT_EQ(stmt.limit, 5u);
  ASSERT_EQ(stmt.order_by.size(), 1u);
  EXPECT_TRUE(stmt.order_by[0].descending);
}

}  // namespace
}  // namespace pctagg
