// Tests for the grouping-set lattice (core/lattice_plan.h): analyzer
// expansion of CUBE/ROLLUP/GROUPING SETS, hand-checked small-table results
// with Vpct/Hpct/GROUPING(), the LatticeSweep property suite asserting the
// shared-scan rollup is bit-identical to per-level recompute across dop
// {1, 4} (NULL keys, dictionary string keys, WHERE, the empty set ()),
// summary-cache reuse across lattice levels (including delta maintenance
// after an APPEND), EXPLAIN ANALYZE shape (one fused scan feeding every
// rollup), and the SET lattice session option.
//
// Integer measures keep double sums exact, so shared and per-level agree
// bitwise at every dop; float sums would differ by reassociation only (the
// standard cross-dop caveat — docs/PARALLELISM.md).
//
// The LatticeSweep suite doubles as the TSan target (`lattice_tsan` in
// tests/CMakeLists.txt): the shared path re-aggregates cached partials on
// the morsel pool while other levels compute concurrently-visible tables.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/advisor.h"
#include "core/database.h"
#include "core/lattice_plan.h"
#include "obs/trace.h"
#include "server/session.h"
#include "sql/analyzer.h"
#include "sql/parser.h"
#include "workload/generators.h"

namespace pctagg {
namespace {

// d1(4) x d2(5) x d3(3) with ~10% NULL d2 keys; INT64 measure in [1, 100]
// with ~8% NULLs (same shape as pipeline_test's fact).
Table IntFact(size_t n, uint64_t seed) {
  Rng rng(seed);
  Table t(Schema({{"d1", DataType::kInt64},
                  {"d2", DataType::kInt64},
                  {"d3", DataType::kInt64},
                  {"a", DataType::kInt64}}));
  for (size_t i = 0; i < n; ++i) {
    Value d2 = rng.Uniform(10) == 0
                   ? Value::Null()
                   : Value::Int64(static_cast<int64_t>(rng.Uniform(5)));
    Value a = rng.Uniform(12) == 0
                  ? Value::Null()
                  : Value::Int64(static_cast<int64_t>(rng.Uniform(100)) + 1);
    t.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(4))), d2,
                 Value::Int64(static_cast<int64_t>(rng.Uniform(3))), a});
  }
  return t;
}

// 2x2 fact with an exact integer measure: every percentage below is a ratio
// of small integers, hand-checkable.
Table TinyFact() {
  Table t(Schema({{"a", DataType::kInt64},
                  {"b", DataType::kInt64},
                  {"x", DataType::kInt64}}));
  t.AppendRow({Value::Int64(1), Value::Int64(1), Value::Int64(10)});
  t.AppendRow({Value::Int64(1), Value::Int64(2), Value::Int64(20)});
  t.AppendRow({Value::Int64(2), Value::Int64(1), Value::Int64(30)});
  t.AppendRow({Value::Int64(2), Value::Int64(2), Value::Int64(40)});
  return t;
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

// Exact-equality comparison: same schema, same row count, and every cell
// matches bit-for-bit (doubles compared by bit pattern).
::testing::AssertionResult BitIdentical(const Table& a, const Table& b) {
  if (a.num_columns() != b.num_columns()) {
    return ::testing::AssertionFailure()
           << "column count " << a.num_columns() << " vs " << b.num_columns();
  }
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (a.schema().column(c).name != b.schema().column(c).name) {
      return ::testing::AssertionFailure()
             << "column " << c << " name " << a.schema().column(c).name
             << " vs " << b.schema().column(c).name;
    }
  }
  if (a.num_rows() != b.num_rows()) {
    return ::testing::AssertionFailure()
           << "row count " << a.num_rows() << " vs " << b.num_rows();
  }
  for (size_t c = 0; c < a.num_columns(); ++c) {
    for (size_t i = 0; i < a.num_rows(); ++i) {
      Value va = a.column(c).GetValue(i);
      Value vb = b.column(c).GetValue(i);
      if (va.is_null() != vb.is_null()) {
        return ::testing::AssertionFailure()
               << "null mismatch at (" << i << ", "
               << a.schema().column(c).name << "): " << va.ToString() << " vs "
               << vb.ToString();
      }
      if (va.is_null()) continue;
      bool same;
      if (va.is_float64() && vb.is_float64()) {
        same = DoubleBits(va.AsDouble()) == DoubleBits(vb.AsDouble());
      } else {
        same = !va.is_float64() && !vb.is_float64() &&
               va.ToString() == vb.ToString();
      }
      if (!same) {
        return ::testing::AssertionFailure()
               << "cell mismatch at (" << i << ", "
               << a.schema().column(c).name << "): " << va.ToString() << " vs "
               << vb.ToString();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

Result<AnalyzedQuery> AnalyzeSql(const std::string& sql, const Schema& schema) {
  PCTAGG_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  return Analyze(stmt, schema);
}

Schema FactSchema() {
  return Schema({{"d1", DataType::kInt64},
                 {"d2", DataType::kInt64},
                 {"d3", DataType::kInt64},
                 {"a", DataType::kInt64}});
}

// --- Analyzer expansion -----------------------------------------------------

TEST(LatticeAnalyzer, CubeExpandsAllSubsetsFinestFirst) {
  Result<AnalyzedQuery> r = AnalyzeSql(
      "SELECT d1, d2, sum(a) FROM f GROUP BY CUBE(d1, d2)", FactSchema());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const AnalyzedQuery& q = r.value();
  EXPECT_TRUE(q.has_grouping_sets);
  EXPECT_EQ(q.group_by, (std::vector<std::string>{"d1", "d2"}));
  ASSERT_EQ(q.grouping_sets.size(), 4u);
  EXPECT_EQ(q.grouping_sets[0], (std::vector<std::string>{"d1", "d2"}));
  EXPECT_EQ(q.grouping_sets[1], (std::vector<std::string>{"d1"}));
  EXPECT_EQ(q.grouping_sets[2], (std::vector<std::string>{"d2"}));
  EXPECT_TRUE(q.grouping_sets[3].empty());
}

TEST(LatticeAnalyzer, RollupExpandsPrefixesDownToGlobal) {
  Result<AnalyzedQuery> r = AnalyzeSql(
      "SELECT d1, d2, d3, count(*) FROM f GROUP BY ROLLUP(d1, d2, d3)",
      FactSchema());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const AnalyzedQuery& q = r.value();
  ASSERT_EQ(q.grouping_sets.size(), 4u);
  EXPECT_EQ(q.grouping_sets[0], (std::vector<std::string>{"d1", "d2", "d3"}));
  EXPECT_EQ(q.grouping_sets[1], (std::vector<std::string>{"d1", "d2"}));
  EXPECT_EQ(q.grouping_sets[2], (std::vector<std::string>{"d1"}));
  EXPECT_TRUE(q.grouping_sets[3].empty());
}

TEST(LatticeAnalyzer, GroupingSetsKeepDeclaredOrderNormalizedToUnion) {
  // Union in first-appearance order is (d2, d1); each level is re-spelled in
  // union order, so (d1, d2) becomes (d2, d1).
  Result<AnalyzedQuery> r = AnalyzeSql(
      "SELECT d1, d2, sum(a) FROM f "
      "GROUP BY GROUPING SETS ((d2), (d1, d2), ())",
      FactSchema());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const AnalyzedQuery& q = r.value();
  EXPECT_EQ(q.group_by, (std::vector<std::string>{"d2", "d1"}));
  ASSERT_EQ(q.grouping_sets.size(), 3u);
  EXPECT_EQ(q.grouping_sets[0], (std::vector<std::string>{"d2"}));
  EXPECT_EQ(q.grouping_sets[1], (std::vector<std::string>{"d2", "d1"}));
  EXPECT_TRUE(q.grouping_sets[2].empty());
}

TEST(LatticeAnalyzer, GroupingFunctionRequiresGroupingSets) {
  EXPECT_FALSE(AnalyzeSql("SELECT d1, GROUPING(d1), sum(a) FROM f GROUP BY d1",
                          FactSchema())
                   .ok());
  Result<AnalyzedQuery> ok = AnalyzeSql(
      "SELECT d1, GROUPING(d1) AS g, sum(a) FROM f GROUP BY ROLLUP(d1)",
      FactSchema());
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  bool saw_grouping = false;
  for (const AnalyzedTerm& t : ok.value().terms) {
    if (t.func == TermFunc::kGrouping) {
      saw_grouping = true;
      EXPECT_EQ(t.scalar_column, "d1");
    }
  }
  EXPECT_TRUE(saw_grouping);
}

TEST(LatticeAnalyzer, MixingCubeWithPlainGroupByRejected) {
  EXPECT_FALSE(
      AnalyzeSql("SELECT d1, d2, sum(a) FROM f GROUP BY d1, CUBE(d2)",
                 FactSchema())
          .ok());
  EXPECT_FALSE(
      AnalyzeSql("SELECT d1, d2, sum(a) FROM f GROUP BY CUBE(d1), d2",
                 FactSchema())
          .ok());
}

TEST(LatticeAnalyzer, LatticeSupportGates) {
  std::string why;
  // DISTINCT is not distributive over the lattice.
  Result<AnalyzedQuery> q1 = AnalyzeSql(
      "SELECT d1, count(DISTINCT d2) FROM f GROUP BY CUBE(d1)", FactSchema());
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  EXPECT_FALSE(LatticeSupported(q1.value(), &why));
  EXPECT_NE(why.find("DISTINCT"), std::string::npos) << why;
  // A plain grouped query without grouping sets is not lattice work.
  Result<AnalyzedQuery> q2 =
      AnalyzeSql("SELECT d1, sum(a) FROM f GROUP BY d1", FactSchema());
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE(LatticeSupported(q2.value(), &why));
  // The supported shape passes.
  Result<AnalyzedQuery> q3 = AnalyzeSql(
      "SELECT d1, d2, Vpct(a BY d2), GROUPING(d1) FROM f GROUP BY CUBE(d1, d2)",
      FactSchema());
  ASSERT_TRUE(q3.ok()) << q3.status().ToString();
  EXPECT_TRUE(LatticeSupported(q3.value(), &why)) << why;
}

// --- Hand-checked results ---------------------------------------------------

TEST(LatticeQuery, CubeVpctAndGroupingHandChecked) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("t", TinyFact()).ok());
  Result<Table> r = db.Query(
      "SELECT a, b, sum(x) AS s, Vpct(x BY b) AS pct, "
      "GROUPING(a) AS ga, GROUPING(b) AS gb FROM t GROUP BY CUBE(a, b)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Table& t = r.value();
  ASSERT_EQ(t.num_columns(), 6u);
  ASSERT_EQ(t.num_rows(), 9u);  // 4 + 2 + 2 + 1 levels, finest first

  struct Row {
    Value a, b;
    int64_t s;
    double pct;
    int64_t ga, gb;
  };
  // Level (a,b): pct = x / sum(x per a); level (a): each group is 100% of
  // itself (totals_by = (a) minus nothing left after removing b... = (a));
  // level (b): pct = sum(x per b) / grand total; level (): grand total.
  const std::vector<Row> expect = {
      {Value::Int64(1), Value::Int64(1), 10, 10.0 / 30.0, 0, 0},
      {Value::Int64(1), Value::Int64(2), 20, 20.0 / 30.0, 0, 0},
      {Value::Int64(2), Value::Int64(1), 30, 30.0 / 70.0, 0, 0},
      {Value::Int64(2), Value::Int64(2), 40, 40.0 / 70.0, 0, 0},
      {Value::Int64(1), Value::Null(), 30, 1.0, 0, 1},
      {Value::Int64(2), Value::Null(), 70, 1.0, 0, 1},
      {Value::Null(), Value::Int64(1), 40, 40.0 / 100.0, 1, 0},
      {Value::Null(), Value::Int64(2), 60, 60.0 / 100.0, 1, 0},
      {Value::Null(), Value::Null(), 100, 1.0, 1, 1},
  };
  for (size_t i = 0; i < expect.size(); ++i) {
    SCOPED_TRACE("row " + std::to_string(i));
    EXPECT_EQ(t.column(0).GetValue(i).ToString(), expect[i].a.ToString());
    EXPECT_EQ(t.column(1).GetValue(i).ToString(), expect[i].b.ToString());
    EXPECT_EQ(t.column(2).GetValue(i).int64(), expect[i].s);
    EXPECT_DOUBLE_EQ(t.column(3).GetValue(i).AsDouble(), expect[i].pct);
    EXPECT_EQ(t.column(4).GetValue(i).int64(), expect[i].ga);
    EXPECT_EQ(t.column(5).GetValue(i).int64(), expect[i].gb);
  }
}

TEST(LatticeQuery, RollupVerticalAggregatesWithAvg) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("t", TinyFact()).ok());
  Result<Table> r = db.Query(
      "SELECT a, avg(x) AS m, count(*) AS c, min(x) AS lo, max(x) AS hi "
      "FROM t GROUP BY ROLLUP(a)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Table& t = r.value();
  ASSERT_EQ(t.num_rows(), 3u);  // (a=1), (a=2), ()
  EXPECT_DOUBLE_EQ(t.column(1).GetValue(0).AsDouble(), 15.0);
  EXPECT_EQ(t.column(2).GetValue(0).int64(), 2);
  EXPECT_DOUBLE_EQ(t.column(1).GetValue(1).AsDouble(), 35.0);
  // The () row aggregates everything.
  EXPECT_TRUE(t.column(0).GetValue(2).is_null());
  EXPECT_DOUBLE_EQ(t.column(1).GetValue(2).AsDouble(), 25.0);
  EXPECT_EQ(t.column(2).GetValue(2).int64(), 4);
  EXPECT_EQ(t.column(3).GetValue(2).int64(), 10);
  EXPECT_EQ(t.column(4).GetValue(2).int64(), 40);
}

TEST(LatticeQuery, RollupHpctHandChecked) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("t", TinyFact()).ok());
  Result<Table> r =
      db.Query("SELECT a, Hpct(x BY b) FROM t GROUP BY ROLLUP(a)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Table& t = r.value();
  // Levels (a) then (): 2 + 1 rows; columns a, GROUPING-free pivot pair.
  ASSERT_EQ(t.num_rows(), 3u);
  ASSERT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.schema().column(1).name, "b=1");
  EXPECT_EQ(t.schema().column(2).name, "b=2");
  EXPECT_DOUBLE_EQ(t.column(1).GetValue(0).AsDouble(), 10.0 / 30.0);
  EXPECT_DOUBLE_EQ(t.column(2).GetValue(0).AsDouble(), 20.0 / 30.0);
  EXPECT_DOUBLE_EQ(t.column(1).GetValue(1).AsDouble(), 30.0 / 70.0);
  EXPECT_DOUBLE_EQ(t.column(2).GetValue(1).AsDouble(), 40.0 / 70.0);
  // Global level: share of the grand total per b.
  EXPECT_TRUE(t.column(0).GetValue(2).is_null());
  EXPECT_DOUBLE_EQ(t.column(1).GetValue(2).AsDouble(), 40.0 / 100.0);
  EXPECT_DOUBLE_EQ(t.column(2).GetValue(2).AsDouble(), 60.0 / 100.0);
}

TEST(LatticeQuery, UnsupportedShapesAreInvalidArgument) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("t", TinyFact()).ok());
  Result<Table> distinct = db.Query(
      "SELECT a, count(DISTINCT b) FROM t GROUP BY CUBE(a)");
  EXPECT_EQ(distinct.status().code(), StatusCode::kInvalidArgument);
  Result<Table> avg_by =
      db.Query("SELECT a, avg(x BY b) FROM t GROUP BY ROLLUP(a)");
  EXPECT_EQ(avg_by.status().code(), StatusCode::kInvalidArgument);
}

TEST(LatticeQuery, ForcedStrategyShortcutsRejectGroupingSets) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("t", TinyFact()).ok());
  const std::string sql =
      "SELECT a, b, Vpct(x BY b) FROM t GROUP BY CUBE(a, b)";
  EXPECT_EQ(db.QueryVpct(sql, VpctStrategy{}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.QueryOlapBaseline(sql).status().code(),
            StatusCode::kInvalidArgument);
  HorizontalStrategy h;
  EXPECT_EQ(db.QueryHorizontal("SELECT a, Hpct(x BY b) FROM t "
                               "GROUP BY ROLLUP(a)",
                               h)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// --- Shared-scan vs per-level bit-identity sweep ----------------------------

// Runs `sql` under both lattice modes at `dop` and checks bit-identity; the
// forced shared run must really report the shared strategy (and vice versa)
// so the comparison can't collapse into same-mode-twice.
void ExpectSharedMatchesPerLevel(const PctDatabase& db, const std::string& sql,
                                 size_t dop) {
  SCOPED_TRACE(sql + " @ dop=" + std::to_string(dop));
  obs::QueryTrace shared_trace;
  QueryOptions shared;
  shared.lattice = LatticeMode::kShared;
  shared.degree_of_parallelism = dop;
  shared.trace = &shared_trace;
  Result<Table> rs = db.Query(sql, shared);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(shared_trace.strategy, "lattice-shared");
  EXPECT_EQ(shared_trace.strategy_source, "forced");

  obs::QueryTrace per_trace;
  QueryOptions per_level;
  per_level.lattice = LatticeMode::kPerLevel;
  per_level.degree_of_parallelism = dop;
  per_level.trace = &per_trace;
  Result<Table> rp = db.Query(sql, per_level);
  ASSERT_TRUE(rp.ok()) << rp.status().ToString();
  EXPECT_EQ(per_trace.strategy, "lattice-per-level");

  EXPECT_TRUE(BitIdentical(*rs, *rp));
}

class LatticeSweep : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable("f", IntFact(3000, 7)).ok());
    ASSERT_TRUE(db_.CreateTable("salesn", GenerateSalesNamed(4000)).ok());
  }
  PctDatabase db_;
};

TEST_P(LatticeSweep, CubeVpctWithNullKeys) {
  // d2 has ~10% NULL keys and the measure has NULLs; 3-dim CUBE = 8 levels.
  ExpectSharedMatchesPerLevel(
      db_,
      "SELECT d1, d2, d3, Vpct(a BY d3) AS pct, sum(a) AS s, "
      "GROUPING(d2) AS g2 FROM f GROUP BY CUBE(d1, d2, d3)",
      GetParam());
}

TEST_P(LatticeSweep, CubeVerticalAggregatesWithAvg) {
  ExpectSharedMatchesPerLevel(
      db_,
      "SELECT d1, d2, avg(a) AS m, min(a) AS lo, max(a) AS hi, "
      "count(a) AS c, count(*) AS n FROM f GROUP BY CUBE(d1, d2)",
      GetParam());
}

TEST_P(LatticeSweep, RollupStringDictionaryKeys) {
  // String group keys exercise the dictionary-code path; itemId is INT64 so
  // sums stay exact.
  ExpectSharedMatchesPerLevel(
      db_,
      "SELECT state, city, Vpct(itemId BY state) AS pct, sum(itemId) AS s "
      "FROM salesn GROUP BY ROLLUP(state, city)",
      GetParam());
}

TEST_P(LatticeSweep, GroupingSetsWithEmptySet) {
  ExpectSharedMatchesPerLevel(
      db_,
      "SELECT d1, d2, d3, sum(a) AS s, GROUPING(d1) AS g1, "
      "GROUPING(d3) AS g3 FROM f "
      "GROUP BY GROUPING SETS ((d1, d2), (d3), ())",
      GetParam());
}

TEST_P(LatticeSweep, CubeWithWhereClause) {
  // A WHERE clause disables the summary cache for the lattice; both modes
  // must filter before aggregating.
  ExpectSharedMatchesPerLevel(
      db_,
      "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f WHERE d3 >= 1 "
      "GROUP BY CUBE(d1, d2)",
      GetParam());
}

TEST_P(LatticeSweep, CubeWhereMatchesNothing) {
  ExpectSharedMatchesPerLevel(
      db_,
      "SELECT d1, sum(a) AS s, count(*) AS c FROM f WHERE d3 = 99 "
      "GROUP BY CUBE(d1)",
      GetParam());
}

TEST_P(LatticeSweep, RollupHorizontalPct) {
  ExpectSharedMatchesPerLevel(
      db_,
      "SELECT d1, d2, Hpct(a BY d3), count(*) AS c FROM f "
      "GROUP BY ROLLUP(d1, d2)",
      GetParam());
}

TEST_P(LatticeSweep, CubeHorizontalAggWithDefault) {
  ExpectSharedMatchesPerLevel(
      db_, "SELECT d1, d2, sum(a BY d3 DEFAULT 0) FROM f GROUP BY CUBE(d1, d2)",
      GetParam());
}

TEST_P(LatticeSweep, RollupWithHavingOrderLimit) {
  ExpectSharedMatchesPerLevel(
      db_,
      "SELECT d1, d2, sum(a) AS s FROM f GROUP BY ROLLUP(d1, d2) "
      "HAVING s > 0 ORDER BY s DESC LIMIT 10",
      GetParam());
}

INSTANTIATE_TEST_SUITE_P(Dop, LatticeSweep, ::testing::Values(1, 4));

// --- Summary-cache reuse across levels --------------------------------------

// Counts the lattice level nodes (fused scans + rollups) in a trace and how
// many of them were answered straight from the summary cache.
void CountLevelNodes(const obs::QueryTrace& trace, size_t* levels,
                     size_t* hits) {
  *levels = 0;
  *hits = 0;
  for (const auto& node : trace.root().children) {
    const bool level_node =
        node->detail.rfind("fused-scan:", 0) == 0 ||
        node->detail.rfind("lattice-rollup:", 0) == 0;
    if (!level_node) continue;
    ++*levels;
    if (node->stats.cache_hit) ++*hits;
  }
}

TEST(LatticeCache, AllLevelsCachedAndDeltaMaintainedAfterAppend) {
  PctDatabase db;
  db.EnableSummaryCache(true);
  ASSERT_TRUE(db.CreateTable("f", IntFact(3000, 7)).ok());
  const std::string sql =
      "SELECT d1, d2, d3, Vpct(a BY d3) AS pct, sum(a) AS s "
      "FROM f GROUP BY CUBE(d1, d2, d3)";

  // Cold run fills one cache entry per level (8 for a 3-dim CUBE).
  obs::QueryTrace cold;
  QueryOptions opt;
  opt.trace = &cold;
  ASSERT_TRUE(db.Query(sql, opt).ok());
  size_t levels = 0, hits = 0;
  CountLevelNodes(cold, &levels, &hits);
  EXPECT_EQ(levels, 8u);
  EXPECT_EQ(hits, 0u);

  // Warm run: every level is a cache hit, shared and per-level alike (both
  // modes key the same per-level recipes).
  obs::QueryTrace warm;
  opt.trace = &warm;
  ASSERT_TRUE(db.Query(sql, opt).ok());
  CountLevelNodes(warm, &levels, &hits);
  EXPECT_EQ(levels, 8u);
  EXPECT_EQ(hits, 8u);
  obs::QueryTrace warm_per;
  QueryOptions per;
  per.lattice = LatticeMode::kPerLevel;
  per.trace = &warm_per;
  ASSERT_TRUE(db.Query(sql, per).ok());
  CountLevelNodes(warm_per, &levels, &hits);
  EXPECT_EQ(hits, 8u);

  // APPEND a delta of existing keys: every level's entry is delta-merged in
  // place, so the next query is still all cache hits — and the merged
  // summaries must equal a from-scratch recompute over base+delta.
  const Table& base = *db.catalog().GetTable("f").value();
  Table delta(base.schema());
  for (size_t i = 0; i < 100; ++i) {
    delta.AppendRow({base.column(0).GetValue(i), base.column(1).GetValue(i),
                     base.column(2).GetValue(i), base.column(3).GetValue(i)});
  }
  QueryOptions merge;
  merge.append_policy = AppendPolicy::kMerge;
  Result<AppendOutcome> appended = db.AppendRows("f", delta, merge);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  EXPECT_EQ(appended.value().rows_appended, 100u);
  EXPECT_EQ(appended.value().summaries_merged, 8u);
  EXPECT_EQ(appended.value().summaries_recomputed, 0u);

  obs::QueryTrace after;
  opt.trace = &after;
  Result<Table> merged = db.Query(sql, opt);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  CountLevelNodes(after, &levels, &hits);
  EXPECT_EQ(levels, 8u);
  EXPECT_EQ(hits, 8u);

  PctDatabase fresh;
  Table full(base.schema());
  for (size_t i = 0; i < base.num_rows(); ++i) {
    full.AppendRow({base.column(0).GetValue(i), base.column(1).GetValue(i),
                    base.column(2).GetValue(i), base.column(3).GetValue(i)});
  }
  ASSERT_TRUE(fresh.CreateTable("f", std::move(full)).ok());
  Result<Table> recomputed = fresh.Query(sql);
  ASSERT_TRUE(recomputed.ok()) << recomputed.status().ToString();
  EXPECT_TRUE(BitIdentical(*merged, *recomputed));
}

TEST(LatticeCache, CoarserQueryReusesFinerLatticeEntries) {
  // A follow-up ROLLUP over a prefix of the CUBE's union hits the entries
  // the CUBE run already cached.
  PctDatabase db;
  db.EnableSummaryCache(true);
  ASSERT_TRUE(db.CreateTable("f", IntFact(2000, 11)).ok());
  ASSERT_TRUE(db.Query("SELECT d1, d2, sum(a) AS s FROM f "
                       "GROUP BY CUBE(d1, d2)")
                  .ok());
  obs::QueryTrace trace;
  QueryOptions opt;
  opt.trace = &trace;
  ASSERT_TRUE(db.Query("SELECT d1, d2, sum(a) AS s FROM f "
                       "GROUP BY ROLLUP(d1, d2)",
                       opt)
                  .ok());
  size_t levels = 0, hits = 0;
  CountLevelNodes(trace, &levels, &hits);
  EXPECT_EQ(levels, 3u);
  EXPECT_EQ(hits, 3u);
}

// --- EXPLAIN / EXPLAIN ANALYZE ----------------------------------------------

size_t CountOccurrences(const std::string& haystack, const std::string& what) {
  size_t count = 0;
  for (size_t pos = haystack.find(what); pos != std::string::npos;
       pos = haystack.find(what, pos + what.size())) {
    ++count;
  }
  return count;
}

TEST(LatticeExplain, SharedScanShowsOneFusedScanFeedingAllLevels) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", IntFact(3000, 7)).ok());
  QueryOptions shared;
  shared.lattice = LatticeMode::kShared;
  Result<std::string> r = db.ExplainAnalyze(
      "SELECT d1, d2, d3, Vpct(a BY d3) AS pct, sum(a) AS s "
      "FROM f GROUP BY CUBE(d1, d2, d3)",
      shared);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::string& plan = r.value();
  EXPECT_NE(plan.find("lattice-shared"), std::string::npos) << plan;
  // The acceptance shape: exactly one fused scan of the fact table, with
  // every other level rolled up from an already-computed ancestor.
  EXPECT_EQ(CountOccurrences(plan, "fused-scan:"), 1u) << plan;
  EXPECT_EQ(CountOccurrences(plan, "lattice-rollup:"), 7u) << plan;
}

TEST(LatticeExplain, PerLevelModeScansOncePerLevel) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", IntFact(3000, 7)).ok());
  QueryOptions per;
  per.lattice = LatticeMode::kPerLevel;
  Result<std::string> r = db.ExplainAnalyze(
      "SELECT d1, d2, d3, sum(a) AS s FROM f GROUP BY CUBE(d1, d2, d3)", per);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(CountOccurrences(r.value(), "fused-scan:"), 8u) << r.value();
  EXPECT_EQ(CountOccurrences(r.value(), "lattice-rollup:"), 0u) << r.value();
}

TEST(LatticeExplain, PlainExplainRendersLatticeScript) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", IntFact(100, 3)).ok());
  Result<std::string> r = db.Explain(
      "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY CUBE(d1, d2)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r.value().find("grouping-set lattice:"), std::string::npos)
      << r.value();
  EXPECT_NE(r.value().find("4 level(s)"), std::string::npos) << r.value();
}

// --- Advisor and session plumbing -------------------------------------------

TEST(LatticeAdvisor, SharedWinsOnMultiLevelLattices) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", IntFact(3000, 7)).ok());
  const Table& fact = *db.catalog().GetTable("f").value();
  Result<AnalyzedQuery> q = AnalyzeSql(
      "SELECT d1, d2, d3, sum(a) FROM f GROUP BY CUBE(d1, d2, d3)",
      FactSchema());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  StrategyAdvisor advisor;
  EXPECT_TRUE(advisor.AdviseLatticeShared(fact, q.value()));
  EXPECT_TRUE(advisor.AdviseLatticeShared(fact, q.value(), /*dop=*/4));
}

TEST(LatticeSession, SetLatticeOption) {
  Session s(1, 1000);
  Result<std::string> r = s.ApplySet("lattice shared");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), "lattice = shared");
  EXPECT_EQ(s.query_options().lattice, LatticeMode::kShared);
  ASSERT_TRUE(s.ApplySet("lattice per_level").ok());
  EXPECT_EQ(s.query_options().lattice, LatticeMode::kPerLevel);
  EXPECT_NE(s.Describe().find("lattice = per-level"), std::string::npos);
  ASSERT_TRUE(s.ApplySet("lattice auto").ok());
  EXPECT_EQ(s.query_options().lattice, LatticeMode::kAuto);
  EXPECT_FALSE(s.ApplySet("lattice sideways").ok());
}

}  // namespace
}  // namespace pctagg
