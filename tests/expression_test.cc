// Unit tests for the vectorized expression evaluator: arithmetic with NULL
// propagation, NULL-on-zero division (the Vpct safety net), three-valued
// logic, comparisons and CASE WHEN.

#include "engine/expression.h"

#include <gtest/gtest.h>

#include "engine/table.h"

namespace pctagg {
namespace {

// d: 1, 2, NULL; a: 10.0, 0.0, 4.0; s: "x", "y", "x"
Table TestTable() {
  Table t(Schema({{"d", DataType::kInt64},
                  {"a", DataType::kFloat64},
                  {"s", DataType::kString}}));
  t.AppendRow({Value::Int64(1), Value::Float64(10.0), Value::String("x")});
  t.AppendRow({Value::Int64(2), Value::Float64(0.0), Value::String("y")});
  t.AppendRow({Value::Null(), Value::Float64(4.0), Value::String("x")});
  return t;
}

TEST(ExpressionTest, LiteralBroadcasts) {
  Table t = TestTable();
  Column c = Lit(Value::Int64(7))->Evaluate(t).value();
  ASSERT_EQ(c.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(c.Int64At(i), 7);
}

TEST(ExpressionTest, NullLiteralTyped) {
  Table t = TestTable();
  ExprPtr e = NullLit(DataType::kFloat64);
  EXPECT_EQ(e->ResultType(t.schema()).value(), DataType::kFloat64);
  Column c = e->Evaluate(t).value();
  EXPECT_TRUE(c.IsNull(0));
}

TEST(ExpressionTest, ColumnRefCopies) {
  Table t = TestTable();
  Column c = Col("a")->Evaluate(t).value();
  EXPECT_DOUBLE_EQ(c.Float64At(0), 10.0);
  EXPECT_FALSE(Col("zzz")->Evaluate(t).ok());
}

TEST(ExpressionTest, ArithmeticTypesAndNulls) {
  Table t = TestTable();
  // int + int stays int.
  Column ii = Add(Col("d"), Lit(Value::Int64(1)))->Evaluate(t).value();
  EXPECT_EQ(ii.type(), DataType::kInt64);
  EXPECT_EQ(ii.Int64At(0), 2);
  EXPECT_TRUE(ii.IsNull(2));  // NULL propagates
  // int * float widens.
  Column f = Mul(Col("d"), Col("a"))->Evaluate(t).value();
  EXPECT_EQ(f.type(), DataType::kFloat64);
  EXPECT_DOUBLE_EQ(f.Float64At(0), 10.0);
  // Strings are rejected.
  EXPECT_EQ(Add(Col("s"), Col("d"))->Evaluate(t).status().code(),
            StatusCode::kTypeMismatch);
}

TEST(ExpressionTest, DivisionByZeroYieldsNull) {
  Table t = TestTable();
  Column c = Div(Lit(Value::Float64(1.0)), Col("a"))->Evaluate(t).value();
  EXPECT_EQ(c.type(), DataType::kFloat64);
  EXPECT_DOUBLE_EQ(c.Float64At(0), 0.1);
  EXPECT_TRUE(c.IsNull(1));  // 1/0 -> NULL, matching Vpct() semantics
  EXPECT_DOUBLE_EQ(c.Float64At(2), 0.25);
}

TEST(ExpressionTest, IntegerDivisionProducesFloat) {
  Table t = TestTable();
  Column c = Div(Lit(Value::Int64(1)), Lit(Value::Int64(2)))->Evaluate(t).value();
  EXPECT_EQ(c.type(), DataType::kFloat64);
  EXPECT_DOUBLE_EQ(c.Float64At(0), 0.5);
}

TEST(ExpressionTest, ComparisonsWithNulls) {
  Table t = TestTable();
  Column eq = Eq(Col("d"), Lit(Value::Int64(1)))->Evaluate(t).value();
  EXPECT_EQ(eq.Int64At(0), 1);
  EXPECT_EQ(eq.Int64At(1), 0);
  EXPECT_TRUE(eq.IsNull(2));  // NULL = 1 is UNKNOWN
  Column lt = Lt(Col("a"), Lit(Value::Float64(5.0)))->Evaluate(t).value();
  EXPECT_EQ(lt.Int64At(0), 0);
  EXPECT_EQ(lt.Int64At(1), 1);
  EXPECT_EQ(lt.Int64At(2), 1);
}

TEST(ExpressionTest, StringComparisons) {
  Table t = TestTable();
  Column eq = Eq(Col("s"), Lit(Value::String("x")))->Evaluate(t).value();
  EXPECT_EQ(eq.Int64At(0), 1);
  EXPECT_EQ(eq.Int64At(1), 0);
  EXPECT_EQ(eq.Int64At(2), 1);
  EXPECT_EQ(Eq(Col("s"), Col("d"))->Evaluate(t).status().code(),
            StatusCode::kTypeMismatch);
}

TEST(ExpressionTest, AllComparisonOps) {
  Table t = TestTable();
  EXPECT_EQ(Ne(Col("d"), Lit(Value::Int64(1)))->Evaluate(t).value().Int64At(1), 1);
  EXPECT_EQ(Le(Col("d"), Lit(Value::Int64(1)))->Evaluate(t).value().Int64At(0), 1);
  EXPECT_EQ(Gt(Col("d"), Lit(Value::Int64(1)))->Evaluate(t).value().Int64At(1), 1);
  EXPECT_EQ(Ge(Col("d"), Lit(Value::Int64(2)))->Evaluate(t).value().Int64At(1), 1);
}

TEST(ExpressionTest, ThreeValuedLogic) {
  Table t = TestTable();
  ExprPtr unknown = Eq(Col("d"), Lit(Value::Int64(1)));  // UNKNOWN on row 2
  ExprPtr truth = Lit(Value::Int64(1));
  ExprPtr falsity = Lit(Value::Int64(0));
  // UNKNOWN AND FALSE = FALSE.
  Column c1 = And(unknown, falsity)->Evaluate(t).value();
  EXPECT_EQ(c1.Int64At(2), 0);
  // UNKNOWN AND TRUE = UNKNOWN.
  Column c2 = And(unknown, truth)->Evaluate(t).value();
  EXPECT_TRUE(c2.IsNull(2));
  // UNKNOWN OR TRUE = TRUE.
  Column c3 = Or(unknown, truth)->Evaluate(t).value();
  EXPECT_EQ(c3.Int64At(2), 1);
  // UNKNOWN OR FALSE = UNKNOWN.
  Column c4 = Or(unknown, falsity)->Evaluate(t).value();
  EXPECT_TRUE(c4.IsNull(2));
  // NOT UNKNOWN = UNKNOWN.
  Column c5 = Not(unknown)->Evaluate(t).value();
  EXPECT_TRUE(c5.IsNull(2));
  EXPECT_EQ(c5.Int64At(0), 0);
}

TEST(ExpressionTest, IsNull) {
  Table t = TestTable();
  Column c = IsNull(Col("d"))->Evaluate(t).value();
  EXPECT_EQ(c.Int64At(0), 0);
  EXPECT_EQ(c.Int64At(2), 1);
  Column n = Not(IsNull(Col("d")))->Evaluate(t).value();
  EXPECT_EQ(n.Int64At(2), 0);
}

TEST(ExpressionTest, AndAllEmptyIsTrue) {
  Table t = TestTable();
  Column c = AndAll({})->Evaluate(t).value();
  EXPECT_EQ(c.Int64At(0), 1);
}

TEST(ExpressionTest, CaseWhenFirstMatchWins) {
  Table t = TestTable();
  ExprPtr e = CaseWhen(
      {{Ge(Col("a"), Lit(Value::Float64(5.0))), Lit(Value::Int64(1))},
       {Ge(Col("a"), Lit(Value::Float64(0.0))), Lit(Value::Int64(2))}},
      Lit(Value::Int64(3)));
  Column c = e->Evaluate(t).value();
  EXPECT_EQ(c.Int64At(0), 1);  // 10 >= 5
  EXPECT_EQ(c.Int64At(1), 2);  // 0 >= 0
  EXPECT_EQ(c.Int64At(2), 2);  // 4 >= 0
}

TEST(ExpressionTest, CaseWhenElseNullDefault) {
  Table t = TestTable();
  ExprPtr e = CaseWhen({{Eq(Col("d"), Lit(Value::Int64(1))), Col("a")}},
                       nullptr);
  Column c = e->Evaluate(t).value();
  EXPECT_DOUBLE_EQ(c.Float64At(0), 10.0);
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_TRUE(c.IsNull(2));  // UNKNOWN condition does not match
}

TEST(ExpressionTest, CaseWhenTypeWidening) {
  Table t = TestTable();
  ExprPtr e = CaseWhen({{Eq(Col("d"), Lit(Value::Int64(1))),
                         Lit(Value::Int64(1))}},
                       Lit(Value::Float64(0.5)));
  EXPECT_EQ(e->ResultType(t.schema()).value(), DataType::kFloat64);
  Column c = e->Evaluate(t).value();
  EXPECT_DOUBLE_EQ(c.Float64At(0), 1.0);
  EXPECT_DOUBLE_EQ(c.Float64At(1), 0.5);
}

TEST(ExpressionTest, CaseWhenMixedStringNumericRejected) {
  Table t = TestTable();
  ExprPtr e = CaseWhen({{Eq(Col("d"), Lit(Value::Int64(1))), Col("s")}},
                       Lit(Value::Int64(0)));
  EXPECT_EQ(e->ResultType(t.schema()).status().code(),
            StatusCode::kTypeMismatch);
}

TEST(ExpressionTest, ToStringRendersSql) {
  ExprPtr e = CaseWhen({{Ne(Col("tot"), Lit(Value::Int64(0))),
                         Div(Col("a"), Col("tot"))}},
                       nullptr);
  EXPECT_EQ(e->ToString(),
            "CASE WHEN tot <> 0 THEN (a / tot) END");
  EXPECT_EQ(And(Eq(Col("x"), Lit(Value::Int64(1))), IsNull(Col("y")))->ToString(),
            "(x = 1 AND y IS NULL)");
}

TEST(ExpressionTest, EvaluateOnEmptyTable) {
  Table t(Schema({{"d", DataType::kInt64}}));
  Column c = Add(Col("d"), Lit(Value::Int64(1)))->Evaluate(t).value();
  EXPECT_EQ(c.size(), 0u);
}

}  // namespace
}  // namespace pctagg
