// Tests for the synthetic workload generators: schema shape, cardinalities
// matching the paper, determinism and value ranges.

#include "workload/generators.h"

#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

namespace pctagg {
namespace {

size_t DistinctCount(const Table& t, const std::string& column) {
  size_t idx = t.schema().FindColumn(column).value();
  std::unordered_set<std::string> seen;
  std::string key;
  for (size_t row = 0; row < t.num_rows(); ++row) {
    key.clear();
    t.column(idx).AppendKeyBytes(row, &key);
    seen.insert(key);
  }
  return seen.size();
}

TEST(WorkloadTest, EmployeeCardinalitiesMatchPaper) {
  Table t = GenerateEmployee(20000);
  EXPECT_EQ(t.num_rows(), 20000u);
  EXPECT_EQ(DistinctCount(t, "gender"), 2u);
  EXPECT_EQ(DistinctCount(t, "marstatus"), 4u);
  EXPECT_EQ(DistinctCount(t, "educat"), 5u);
  EXPECT_EQ(DistinctCount(t, "age"), 100u);
}

TEST(WorkloadTest, SalesCardinalitiesMatchPaper) {
  Table t = GenerateSales(30000);
  EXPECT_EQ(DistinctCount(t, "dweek"), 7u);
  EXPECT_EQ(DistinctCount(t, "monthNo"), 12u);
  EXPECT_EQ(DistinctCount(t, "store"), 100u);
  EXPECT_EQ(DistinctCount(t, "city"), 20u);
  EXPECT_EQ(DistinctCount(t, "state"), 5u);
  EXPECT_EQ(DistinctCount(t, "dept"), 100u);
  // transactionId is unique per row.
  EXPECT_EQ(DistinctCount(t, "transactionId"), 30000u);
}

TEST(WorkloadTest, TransactionLineCardinalitiesMatchDmkd) {
  Table t = GenerateTransactionLine(30000);
  EXPECT_EQ(DistinctCount(t, "deptId"), 10u);
  EXPECT_EQ(DistinctCount(t, "subdeptId"), 100u);
  EXPECT_EQ(DistinctCount(t, "yearNo"), 4u);
  EXPECT_EQ(DistinctCount(t, "monthNo"), 12u);
  EXPECT_EQ(DistinctCount(t, "dayOfWeekNo"), 7u);
  EXPECT_EQ(DistinctCount(t, "regionId"), 4u);
  EXPECT_EQ(DistinctCount(t, "stateId"), 10u);
  EXPECT_EQ(DistinctCount(t, "cityId"), 20u);
  EXPECT_EQ(DistinctCount(t, "storeId"), 30u);
}

TEST(WorkloadTest, CensusLikeIsSkewed) {
  Table t = GenerateCensusLike(20000);
  EXPECT_EQ(DistinctCount(t, "iSex"), 2u);
  EXPECT_LE(DistinctCount(t, "iSchool"), 17u);
  EXPECT_LE(DistinctCount(t, "dAge"), 91u);
  // Skew: the most common iClass value dominates a uniform share.
  size_t idx = t.schema().FindColumn("iClass").value();
  std::map<int64_t, size_t> counts;
  for (size_t row = 0; row < t.num_rows(); ++row) {
    counts[t.column(idx).Int64At(row)]++;
  }
  size_t max_count = 0;
  for (const auto& [v, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, t.num_rows() / 9 * 2);
}

TEST(WorkloadTest, GeneratorsAreDeterministic) {
  Table a = GenerateSales(1000);
  Table b = GenerateSales(1000);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t i = 0; i < a.num_rows(); i += 97) {
    EXPECT_EQ(a.GetRow(i), b.GetRow(i));
  }
  Table c = GenerateSales(1000, /*seed=*/999);
  bool any_diff = false;
  for (size_t i = 0; i < a.num_rows() && !any_diff; ++i) {
    any_diff = !(a.GetRow(i) == c.GetRow(i));
  }
  EXPECT_TRUE(any_diff);
}

TEST(WorkloadTest, MeasuresArePositive) {
  Table t = GenerateSales(2000);
  const Column& amt = *t.ColumnByName("salesAmt").value();
  for (size_t i = 0; i < t.num_rows(); ++i) {
    ASSERT_FALSE(amt.IsNull(i));
    EXPECT_GT(amt.Float64At(i), 0.0);
  }
}

TEST(WorkloadTest, PaperExampleSalesMatchesTable1) {
  Table t = PaperExampleSales();
  ASSERT_EQ(t.num_rows(), 10u);
  EXPECT_EQ(t.column(1).StringAt(0), "CA");
  EXPECT_EQ(t.column(2).StringAt(8), "Dallas");
  EXPECT_DOUBLE_EQ(t.column(3).Float64At(2), 67.0);
}

TEST(WorkloadTest, PaperExampleStoreSalesHasMondayHole) {
  Table t = PaperExampleStoreSales();
  const Column& store = *t.ColumnByName("store").value();
  const Column& dweek = *t.ColumnByName("dweek").value();
  for (size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_FALSE(store.Int64At(i) == 4 && dweek.Int64At(i) == 1)
        << "store 4 must have no Monday rows";
  }
}

}  // namespace
}  // namespace pctagg
