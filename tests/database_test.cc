// End-to-end tests of the PctDatabase facade: the paper's worked examples
// (Tables 1-3) plus strategy overrides, EXPLAIN output, and error paths.

#include "core/database.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "workload/generators.h"

namespace pctagg {
namespace {

// Fetches (state, city) -> percentage from a Vpct result table.
std::map<std::pair<std::string, std::string>, double> VpctByCity(
    const Table& t) {
  std::map<std::pair<std::string, std::string>, double> out;
  const Column* state = t.ColumnByName("state").value();
  const Column* city = t.ColumnByName("city").value();
  const Column* pct = t.ColumnByName("pct").value();
  for (size_t i = 0; i < t.num_rows(); ++i) {
    out[{state->StringAt(i), city->StringAt(i)}] = pct->Float64At(i);
  }
  return out;
}

TEST(DatabaseTest, PaperTable2VerticalPercentages) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("sales", PaperExampleSales()).ok());
  Result<Table> r = db.Query(
      "SELECT state, city, Vpct(salesAmt BY city) AS pct "
      "FROM sales GROUP BY state, city ORDER BY state, city");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Table& t = r.value();
  EXPECT_EQ(t.num_rows(), 4u);
  auto pct = VpctByCity(t);
  // Paper Table 2: CA LA 22%, CA SF 78%, TX Dallas 57%, TX Houston 43%.
  EXPECT_NEAR((pct[{"CA", "Los Angeles"}]), 23.0 / 106.0, 1e-9);
  EXPECT_NEAR((pct[{"CA", "San Francisco"}]), 83.0 / 106.0, 1e-9);
  EXPECT_NEAR((pct[{"TX", "Dallas"}]), 85.0 / 149.0, 1e-9);
  EXPECT_NEAR((pct[{"TX", "Houston"}]), 64.0 / 149.0, 1e-9);
  // Row order follows ORDER BY state, city.
  EXPECT_EQ(t.column(0).StringAt(0), "CA");
  EXPECT_EQ(t.column(1).StringAt(0), "Los Angeles");
}

TEST(DatabaseTest, PaperTable3HorizontalPercentages) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("sales", PaperExampleStoreSales()).ok());
  Result<Table> r = db.Query(
      "SELECT store, Hpct(salesAmt BY dweek), sum(salesAmt) AS total "
      "FROM sales GROUP BY store ORDER BY store");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Table& t = r.value();
  EXPECT_EQ(t.num_rows(), 3u);
  // store | 7 dweek percentage columns | total sales.
  ASSERT_EQ(t.num_columns(), 9u);
  // Store 4 (row 1) has no Monday sales: 0%, like the paper's Table 3.
  Result<const Column*> monday = t.ColumnByName("dweek=1");
  ASSERT_TRUE(monday.ok()) << monday.status().ToString();
  EXPECT_FALSE(monday.value()->IsNull(1));
  EXPECT_DOUBLE_EQ(monday.value()->Float64At(1), 0.0);
  // Every store's percentages add to 100%.
  for (size_t row = 0; row < t.num_rows(); ++row) {
    double sum = 0;
    for (int d = 1; d <= 7; ++d) {
      const Column* c = t.ColumnByName("dweek=" + std::to_string(d)).value();
      if (!c->IsNull(row)) sum += c->Float64At(row);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  // Store 4 total = 4000.
  const Column* total = t.ColumnByName("total").value();
  EXPECT_DOUBLE_EQ(total->Float64At(1), 4000.0);
}

TEST(DatabaseTest, OlapBaselineMatchesVpct) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("sales", PaperExampleSales()).ok());
  std::string sql =
      "SELECT state, city, Vpct(salesAmt BY city) AS pct "
      "FROM sales GROUP BY state, city ORDER BY state, city";
  Result<Table> direct = db.Query(sql);
  Result<Table> olap = db.QueryOlapBaseline(sql);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ASSERT_TRUE(olap.ok()) << olap.status().ToString();
  auto a = VpctByCity(direct.value());
  auto b = VpctByCity(olap.value());
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, v] : a) {
    EXPECT_NEAR(v, b.at(key), 1e-9);
  }
}

TEST(DatabaseTest, ExplainRendersGeneratedScript) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("sales", PaperExampleSales()).ok());
  Result<std::string> script = db.Explain(
      "SELECT state, city, Vpct(salesAmt BY city) AS pct "
      "FROM sales GROUP BY state, city");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_NE(script.value().find("INSERT INTO"), std::string::npos);
  EXPECT_NE(script.value().find("GROUP BY state, city"), std::string::npos);
  EXPECT_NE(script.value().find("CREATE INDEX"), std::string::npos);
}

TEST(DatabaseTest, AnalysisErrorsSurface) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("sales", PaperExampleSales()).ok());
  // Vpct rule 1: GROUP BY required.
  Result<Table> r1 = db.Query("SELECT Vpct(salesAmt BY city) FROM sales");
  EXPECT_EQ(r1.status().code(), StatusCode::kAnalysisError);
  // Hpct rule 2: BY disjoint from GROUP BY.
  Result<Table> r2 = db.Query(
      "SELECT city, Hpct(salesAmt BY city) FROM sales GROUP BY city");
  EXPECT_EQ(r2.status().code(), StatusCode::kAnalysisError);
  // Unknown table.
  Result<Table> r3 = db.Query("SELECT x FROM nope");
  EXPECT_EQ(r3.status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, CreateTableAsMaterializesQueries) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("sales", PaperExampleSales()).ok());
  // Materialize a filtered view and run a percentage query against it (the
  // paper: "F can be a temporary table resulting from some query").
  ASSERT_TRUE(db.CreateTableAs("tx",
                               "SELECT state, city, salesAmt FROM sales "
                               "WHERE state = 'TX'")
                  .ok());
  Table t = db.Query("SELECT city, Vpct(salesAmt BY city) AS pct FROM tx "
                     "GROUP BY city ORDER BY city")
                .value();
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_NEAR(t.ColumnByName("pct").value()->Float64At(0), 85.0 / 149.0,
              1e-9);
  // Name collisions and broken queries are rejected without side effects.
  EXPECT_EQ(db.CreateTableAs("tx", "SELECT city FROM sales").code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(db.CreateTableAs("bad", "SELECT nope FROM sales").ok());
  EXPECT_FALSE(db.catalog().HasTable("bad"));
}

TEST(DatabaseTest, StrategyOverridesAgree) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("sales", PaperExampleSales()).ok());
  std::string sql =
      "SELECT state, city, Vpct(salesAmt BY city) AS pct "
      "FROM sales GROUP BY state, city";
  VpctStrategy update_strategy;
  update_strategy.insert_result = false;
  Result<Table> ins = db.QueryVpct(sql, VpctStrategy{});
  Result<Table> upd = db.QueryVpct(sql, update_strategy);
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  ASSERT_TRUE(upd.ok()) << upd.status().ToString();
  auto a = VpctByCity(ins.value());
  auto b = VpctByCity(upd.value());
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, v] : a) {
    EXPECT_NEAR(v, b.at(key), 1e-12);
  }
}

}  // namespace
}  // namespace pctagg
