// Integration tests: the paper's experimental queries end-to-end on
// scaled-down versions of the employee/sales/transactionLine workloads —
// the same query shapes the benchmark harnesses time, here checked for
// correctness and cross-strategy agreement.

#include <gtest/gtest.h>

#include <map>

#include "core/database.h"
#include "core/partition.h"
#include "workload/generators.h"

namespace pctagg {
namespace {

class PaperWorkloads : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable("employee", GenerateEmployee(20000)).ok());
    ASSERT_TRUE(db_.CreateTable("sales", GenerateSales(30000)).ok());
    ASSERT_TRUE(
        db_.CreateTable("transactionLine", GenerateTransactionLine(20000))
            .ok());
  }
  PctDatabase db_;
};

// The eight Vpct query shapes of SIGMOD Table 4 (scaled down).
const char* const kTable4Queries[] = {
    "SELECT gender, Vpct(salary) AS pct FROM employee GROUP BY gender",
    "SELECT gender, marstatus, Vpct(salary BY marstatus) AS pct "
    "FROM employee GROUP BY gender, marstatus",
    "SELECT gender, educat, marstatus, Vpct(salary BY educat, marstatus) AS "
    "pct FROM employee GROUP BY gender, educat, marstatus",
    "SELECT gender, educat, age, marstatus, Vpct(salary BY age, marstatus) "
    "AS pct FROM employee GROUP BY gender, educat, age, marstatus",
    "SELECT dweek, Vpct(salesAmt) AS pct FROM sales GROUP BY dweek",
    "SELECT monthNo, dweek, Vpct(salesAmt BY dweek) AS pct FROM sales "
    "GROUP BY monthNo, dweek",
    "SELECT dept, dweek, monthNo, Vpct(salesAmt BY dweek, monthNo) AS pct "
    "FROM sales GROUP BY dept, dweek, monthNo",
    "SELECT dept, store, dweek, monthNo, Vpct(salesAmt BY dweek, monthNo) "
    "AS pct FROM sales GROUP BY dept, store, dweek, monthNo",
};

TEST_F(PaperWorkloads, Table4QueriesRunUnderEveryStrategy) {
  for (const char* sql : kTable4Queries) {
    Result<Table> best = db_.QueryVpct(sql, VpctStrategy{});
    ASSERT_TRUE(best.ok()) << sql << ": " << best.status().ToString();
    EXPECT_GT(best.value().num_rows(), 0u) << sql;
    for (int knob = 0; knob < 3; ++knob) {
      VpctStrategy s;
      if (knob == 0) s.matching_indexes = false;
      if (knob == 1) s.insert_result = false;
      if (knob == 2) s.fj_from_fk = false;
      Result<Table> alt = db_.QueryVpct(sql, s);
      ASSERT_TRUE(alt.ok()) << sql;
      EXPECT_EQ(alt.value().num_rows(), best.value().num_rows()) << sql;
    }
  }
}

// The Hpct shapes of SIGMOD Table 5.
const char* const kTable5Queries[] = {
    "SELECT Hpct(salary BY gender) FROM employee",
    "SELECT gender, Hpct(salary BY marstatus) FROM employee GROUP BY gender",
    "SELECT gender, Hpct(salary BY educat, marstatus) FROM employee "
    "GROUP BY gender",
    "SELECT dweek, Hpct(salesAmt BY monthNo) FROM sales GROUP BY dweek",
    "SELECT dept, Hpct(salesAmt BY dweek, monthNo) FROM sales GROUP BY dept",
};

TEST_F(PaperWorkloads, Table5StrategiesAgree) {
  for (const char* sql : kTable5Queries) {
    HorizontalStrategy direct;
    direct.method = HorizontalMethod::kCaseDirect;
    HorizontalStrategy via_fv;
    via_fv.method = HorizontalMethod::kCaseFromFV;
    Result<Table> a = db_.QueryHorizontal(sql, direct);
    Result<Table> b = db_.QueryHorizontal(sql, via_fv);
    ASSERT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << sql << ": " << b.status().ToString();
    EXPECT_EQ(a.value().num_rows(), b.value().num_rows()) << sql;
    EXPECT_EQ(a.value().num_columns(), b.value().num_columns()) << sql;
  }
}

TEST_F(PaperWorkloads, Table6OlapBaselineMatches) {
  const char* sql =
      "SELECT monthNo, dweek, Vpct(salesAmt BY dweek) AS pct FROM sales "
      "GROUP BY monthNo, dweek ORDER BY monthNo, dweek";
  Table direct = db_.Query(sql).value();
  Table olap = db_.QueryOlapBaseline(sql).value();
  ASSERT_EQ(direct.num_rows(), olap.num_rows());
  for (size_t i = 0; i < direct.num_rows(); ++i) {
    EXPECT_NEAR(direct.ColumnByName("pct").value()->Float64At(i),
                olap.ColumnByName("pct").value()->Float64At(i), 1e-9);
  }
}

// DMKD Table 3 shapes on transactionLine.
TEST_F(PaperWorkloads, DmkdSpjAndCaseAgree) {
  const char* const queries[] = {
      "SELECT sum(salesAmt BY regionId) FROM transactionLine",
      "SELECT sum(salesAmt BY monthNo) FROM transactionLine",
      "SELECT monthNo, sum(salesAmt BY dayOfWeekNo) FROM transactionLine "
      "GROUP BY monthNo",
      "SELECT deptId, sum(salesAmt BY dayOfWeekNo, monthNo) "
      "FROM transactionLine GROUP BY deptId",
  };
  for (const char* sql : queries) {
    std::map<std::string, Result<Table>> results;
    for (HorizontalMethod method :
         {HorizontalMethod::kSpjDirect, HorizontalMethod::kSpjFromFV,
          HorizontalMethod::kCaseDirect, HorizontalMethod::kCaseFromFV}) {
      HorizontalStrategy s;
      s.method = method;
      Result<Table> r = db_.QueryHorizontal(sql, s);
      ASSERT_TRUE(r.ok()) << sql << " [" << HorizontalMethodName(method)
                          << "]: " << r.status().ToString();
      results.emplace(HorizontalMethodName(method), std::move(r));
    }
    const Table& ref = results.begin()->second.value();
    for (const auto& [name, r] : results) {
      EXPECT_EQ(r.value().num_rows(), ref.num_rows()) << sql << " " << name;
      EXPECT_EQ(r.value().num_columns(), ref.num_columns())
          << sql << " " << name;
    }
  }
}

TEST_F(PaperWorkloads, DmkdTabularDataSetExample) {
  // DMKD Section 3.2's flagship query: one store per row with day-of-week
  // sales, day-of-week transaction counts and total sales.
  Result<Table> r = db_.Query(
      "SELECT storeId, sum(salesAmt BY dayOfWeekNo) AS amt, "
      "count(DISTINCT rid BY dayOfWeekNo) AS txn, "
      "sum(salesAmt) AS total FROM transactionLine GROUP BY storeId "
      "ORDER BY storeId");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Table& t = r.value();
  EXPECT_EQ(t.num_rows(), 30u);  // storeId(30)
  // storeId + 7 amt cells + 7 txn cells + total.
  EXPECT_EQ(t.num_columns(), 16u);
  // Row consistency: total = sum of the seven day cells.
  for (size_t i = 0; i < t.num_rows(); ++i) {
    double day_sum = 0;
    for (size_t c = 0; c < t.num_columns(); ++c) {
      const std::string& name = t.schema().column(c).name;
      if (name.rfind("amt.", 0) == 0 && !t.column(c).IsNull(i)) {
        day_sum += t.column(c).Float64At(i);
      }
    }
    EXPECT_NEAR(day_sum, t.ColumnByName("total").value()->Float64At(i), 1e-6);
  }
}

TEST_F(PaperWorkloads, EmployeeGenderSharesAreUniformish) {
  Table t = db_.Query("SELECT gender, Vpct(salary) AS pct FROM employee "
                      "GROUP BY gender")
                .value();
  ASSERT_EQ(t.num_rows(), 2u);
  // Uniform gender, uniform salary: each share near 50%.
  EXPECT_NEAR(t.ColumnByName("pct").value()->Float64At(0), 0.5, 0.05);
}

TEST_F(PaperWorkloads, WideHpctHitsManyColumnsAndPartitions) {
  // dept(100) x dweek(7) would be 700 columns; partition at 64.
  Table t = db_.Query("SELECT store, Hpct(salesAmt BY dept) FROM sales "
                      "GROUP BY store")
                .value();
  EXPECT_GT(t.num_columns(), 90u);
  std::vector<Table> parts = VerticallyPartition(t, {"store"}, 64).value();
  EXPECT_GT(parts.size(), 1u);
  for (const Table& p : parts) {
    EXPECT_LE(p.num_columns(), 64u);
    EXPECT_TRUE(p.schema().HasColumn("store"));
  }
}

}  // namespace
}  // namespace pctagg
