// Robustness tests: string-dimension percentage queries (the paper's
// state/city example uses string dimensions), empty and degenerate inputs
// through every planner, and a randomized parser fuzz sweep asserting that
// malformed SQL always comes back as a Status, never a crash.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/database.h"

namespace pctagg {
namespace {

// Row equality with numeric tolerance: different strategies sum floats in
// different orders, so percentages can differ by ULPs.
void ExpectRowsNear(const std::vector<Value>& a, const std::vector<Value>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].is_null(), b[i].is_null()) << "field " << i;
    if (a[i].is_null()) continue;
    if (a[i].is_string()) {
      EXPECT_EQ(a[i].string(), b[i].string());
    } else {
      EXPECT_NEAR(a[i].AsDouble(), b[i].AsDouble(), 1e-9);
    }
  }
}

// String-typed dimensions with an occasional NULL dimension value.
Table StringFact(uint64_t seed, size_t n = 300) {
  Rng rng(seed);
  const char* regions[] = {"north", "south", "east", "west"};
  const char* products[] = {"widget", "gadget", "gizmo"};
  Table t(Schema({{"region", DataType::kString},
                  {"product", DataType::kString},
                  {"amount", DataType::kFloat64}}));
  for (size_t i = 0; i < n; ++i) {
    Value region = rng.Uniform(20) == 0
                       ? Value::Null()
                       : Value::String(regions[rng.Uniform(4)]);
    t.AppendRow({region, Value::String(products[rng.Uniform(3)]),
                 Value::Float64(1.0 + rng.NextDouble() * 9.0)});
  }
  return t;
}

TEST(RobustnessTest, StringDimensionsThroughAllVpctStrategies) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", StringFact(5)).ok());
  std::string sql =
      "SELECT region, product, Vpct(amount BY product) AS pct FROM f "
      "GROUP BY region, product ORDER BY region, product";
  Table best = db.QueryVpct(sql, VpctStrategy{}).value();
  for (int knob = 0; knob < 3; ++knob) {
    VpctStrategy s;
    if (knob == 0) s.matching_indexes = false;
    if (knob == 1) s.insert_result = false;
    if (knob == 2) s.fj_from_fk = false;
    Table alt = db.QueryVpct(sql, s).value();
    ASSERT_EQ(alt.num_rows(), best.num_rows());
    for (size_t i = 0; i < best.num_rows(); ++i) {
      ExpectRowsNear(alt.GetRow(i), best.GetRow(i));
    }
  }
  // NULL region forms its own 100% group (GROUP BY treats NULLs as equal).
  bool saw_null_region = false;
  for (size_t i = 0; i < best.num_rows(); ++i) {
    if (best.column(0).IsNull(i)) saw_null_region = true;
  }
  EXPECT_TRUE(saw_null_region);
}

TEST(RobustnessTest, StringDimensionsThroughAllHorizontalStrategies) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", StringFact(6)).ok());
  std::string sql =
      "SELECT region, Hpct(amount BY product) FROM f GROUP BY region "
      "ORDER BY region";
  Table reference = db.QueryHorizontal(sql, HorizontalStrategy{}).value();
  EXPECT_TRUE(reference.schema().HasColumn("product=widget"));
  for (HorizontalMethod method :
       {HorizontalMethod::kCaseFromFV, HorizontalMethod::kSpjDirect,
        HorizontalMethod::kSpjFromFV}) {
    for (bool dispatch : {true, false}) {
      HorizontalStrategy s;
      s.method = method;
      s.hash_dispatch = dispatch;
      Table alt = db.QueryHorizontal(sql, s).value();
      ASSERT_EQ(alt.num_rows(), reference.num_rows());
      ASSERT_EQ(alt.num_columns(), reference.num_columns());
      for (size_t i = 0; i < reference.num_rows(); ++i) {
        for (size_t c = 0; c < reference.num_columns(); ++c) {
          Value a = reference.column(c).GetValue(i);
          Value b = alt.column(c).GetValue(i);
          ASSERT_EQ(a.is_null(), b.is_null());
          if (!a.is_null() && a.is_float64()) {
            EXPECT_NEAR(a.AsDouble(), b.AsDouble(), 1e-9);
          }
        }
      }
    }
  }
}

TEST(RobustnessTest, EmptyFactTableThroughEveryPlanner) {
  PctDatabase db;
  Table empty(Schema({{"d1", DataType::kInt64},
                      {"d2", DataType::kInt64},
                      {"a", DataType::kFloat64}}));
  ASSERT_TRUE(db.CreateTable("f", std::move(empty)).ok());
  Result<Table> v = db.Query(
      "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v.value().num_rows(), 0u);
  for (HorizontalMethod method :
       {HorizontalMethod::kCaseDirect, HorizontalMethod::kCaseFromFV,
        HorizontalMethod::kSpjDirect, HorizontalMethod::kSpjFromFV}) {
    HorizontalStrategy s;
    s.method = method;
    Result<Table> h =
        db.QueryHorizontal("SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1", s);
    ASSERT_TRUE(h.ok()) << HorizontalMethodName(method) << ": "
                        << h.status().ToString();
    EXPECT_EQ(h.value().num_rows(), 0u) << HorizontalMethodName(method);
  }
  Result<Table> o = db.QueryOlapBaseline(
      "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2");
  ASSERT_TRUE(o.ok()) << o.status().ToString();
  EXPECT_EQ(o.value().num_rows(), 0u);
}

TEST(RobustnessTest, SingleRowAndAllNullMeasures) {
  PctDatabase db;
  Table f(Schema({{"d1", DataType::kInt64},
                  {"d2", DataType::kInt64},
                  {"a", DataType::kFloat64}}));
  f.AppendRow({Value::Int64(1), Value::Int64(1), Value::Float64(5)});
  ASSERT_TRUE(db.CreateTable("one", std::move(f)).ok());
  Table v = db.Query("SELECT d1, d2, Vpct(a BY d2) AS pct FROM one "
                     "GROUP BY d1, d2")
                .value();
  ASSERT_EQ(v.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(v.ColumnByName("pct").value()->Float64At(0), 1.0);

  Table nulls(Schema({{"d1", DataType::kInt64},
                      {"d2", DataType::kInt64},
                      {"a", DataType::kFloat64}}));
  nulls.AppendRow({Value::Int64(1), Value::Int64(1), Value::Null()});
  nulls.AppendRow({Value::Int64(1), Value::Int64(2), Value::Null()});
  ASSERT_TRUE(db.CreateTable("nn", std::move(nulls)).ok());
  Table nv = db.Query("SELECT d1, d2, Vpct(a BY d2) AS pct FROM nn "
                      "GROUP BY d1, d2")
                 .value();
  for (size_t i = 0; i < nv.num_rows(); ++i) {
    EXPECT_TRUE(nv.ColumnByName("pct").value()->IsNull(i));
  }
}

// Parser fuzz: random token soups must produce Status errors, not crashes.
class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, NeverCrashes) {
  Rng rng(GetParam());
  const char* tokens[] = {"SELECT", "FROM",  "GROUP", "BY",    "Vpct",
                          "Hpct",   "sum",   "(",     ")",     ",",
                          "*",      "f",     "a",     "d1",    "WHERE",
                          "AND",    "CASE",  "WHEN",  "THEN",  "END",
                          "1",      "2.5",   "'s'",   "OVER",  "PARTITION",
                          "ORDER",  "DESC",  "LIMIT", "HAVING", ";",
                          "<",      "=",     "+",     "/",     "DISTINCT",
                          "DEFAULT", "IS",   "NULL",  "NOT",   "AS"};
  PctDatabase db;
  Table f(Schema({{"d1", DataType::kInt64}, {"a", DataType::kFloat64}}));
  f.AppendRow({Value::Int64(1), Value::Float64(1)}).ok();
  db.CreateTable("f", std::move(f)).ok();
  for (int q = 0; q < 60; ++q) {
    std::string sql;
    size_t len = 2 + rng.Uniform(18);
    for (size_t i = 0; i < len; ++i) {
      sql += tokens[rng.Uniform(std::size(tokens))];
      sql += " ";
    }
    // Must not crash; errors come back as Status values.
    Result<Table> r = db.Query(sql);
    if (!r.ok()) {
      EXPECT_FALSE(r.status().message().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace pctagg
