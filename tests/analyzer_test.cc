// Unit tests for the semantic analyzer: the paper's usage rules for Vpct
// (Section 3.1), Hpct (Section 3.2) and horizontal aggregations (DMKD
// Section 3.1), plus query classification.

#include "sql/analyzer.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace pctagg {
namespace {

Schema SalesSchema() {
  return Schema({{"state", DataType::kString},
                 {"city", DataType::kString},
                 {"dweek", DataType::kInt64},
                 {"store", DataType::kInt64},
                 {"salesAmt", DataType::kFloat64}});
}

Result<AnalyzedQuery> AnalyzeSql(const std::string& sql) {
  PCTAGG_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  return Analyze(stmt, SalesSchema());
}

TEST(AnalyzerTest, ClassifiesQueryShapes) {
  EXPECT_EQ(AnalyzeSql("SELECT state, salesAmt FROM sales").value().query_class,
            QueryClass::kProjection);
  EXPECT_EQ(AnalyzeSql("SELECT state, sum(salesAmt) FROM sales GROUP BY state")
                .value()
                .query_class,
            QueryClass::kVertical);
  EXPECT_EQ(AnalyzeSql("SELECT state, Vpct(salesAmt BY city) FROM sales "
                "GROUP BY state, city")
                .value()
                .query_class,
            QueryClass::kVpct);
  EXPECT_EQ(AnalyzeSql("SELECT store, Hpct(salesAmt BY dweek) FROM sales "
                "GROUP BY store")
                .value()
                .query_class,
            QueryClass::kHorizontal);
  EXPECT_EQ(AnalyzeSql("SELECT store, sum(salesAmt BY dweek) FROM sales "
                "GROUP BY store")
                .value()
                .query_class,
            QueryClass::kHorizontal);
  EXPECT_EQ(AnalyzeSql("SELECT state, sum(salesAmt) OVER (PARTITION BY state) "
                "FROM sales")
                .value()
                .query_class,
            QueryClass::kWindow);
}

TEST(AnalyzerTest, VpctRule1GroupByRequired) {
  EXPECT_EQ(AnalyzeSql("SELECT Vpct(salesAmt BY city) FROM sales").status().code(),
            StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, VpctRule2ByMustComeFromGroupBy) {
  EXPECT_EQ(AnalyzeSql("SELECT state, Vpct(salesAmt BY dweek) FROM sales "
                "GROUP BY state, city")
                .status()
                .code(),
            StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, VpctTotalsByIsGroupByMinusBy) {
  AnalyzedQuery q = AnalyzeSql("SELECT state, city, Vpct(salesAmt BY city) "
                        "FROM sales GROUP BY state, city")
                        .value();
  const AnalyzedTerm* vpct = nullptr;
  for (const AnalyzedTerm& t : q.terms) {
    if (t.func == TermFunc::kVpct) vpct = &t;
  }
  ASSERT_NE(vpct, nullptr);
  EXPECT_EQ(vpct->totals_by, (std::vector<std::string>{"state"}));
}

TEST(AnalyzerTest, VpctNoByMeansGrandTotal) {
  AnalyzedQuery q =
      AnalyzeSql("SELECT state, Vpct(salesAmt) FROM sales GROUP BY state").value();
  EXPECT_TRUE(q.terms[1].totals_by.empty());
}

TEST(AnalyzerTest, VpctRule4MultipleTermsDifferentBy) {
  AnalyzedQuery q = AnalyzeSql("SELECT state, city, Vpct(salesAmt BY city), "
                        "Vpct(salesAmt BY state, city), sum(salesAmt) "
                        "FROM sales GROUP BY state, city")
                        .value();
  EXPECT_EQ(q.query_class, QueryClass::kVpct);
}

TEST(AnalyzerTest, HpctRule2ByRequired) {
  EXPECT_EQ(AnalyzeSql("SELECT store, Hpct(salesAmt) FROM sales GROUP BY store")
                .status()
                .code(),
            StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, HpctRule2ByDisjointFromGroupBy) {
  EXPECT_EQ(AnalyzeSql("SELECT store, Hpct(salesAmt BY store) FROM sales "
                "GROUP BY store")
                .status()
                .code(),
            StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, HpctRule1GroupByOptional) {
  AnalyzedQuery q = AnalyzeSql("SELECT Hpct(salesAmt BY dweek) FROM sales").value();
  EXPECT_EQ(q.query_class, QueryClass::kHorizontal);
  EXPECT_TRUE(q.group_by.empty());
}

TEST(AnalyzerTest, MixingVpctAndHorizontalRejected) {
  EXPECT_EQ(AnalyzeSql("SELECT state, Vpct(salesAmt BY city), "
                "Hpct(salesAmt BY dweek) FROM sales GROUP BY state, city")
                .status()
                .code(),
            StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, ScalarTermsMustBeGroupingColumns) {
  EXPECT_EQ(AnalyzeSql("SELECT salesAmt, sum(salesAmt) FROM sales GROUP BY state")
                .status()
                .code(),
            StatusCode::kAnalysisError);
  EXPECT_EQ(AnalyzeSql("SELECT state, sum(salesAmt) FROM sales").status().code(),
            StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, PositionalGroupByResolvesToColumn) {
  AnalyzedQuery q =
      AnalyzeSql("SELECT state, city, count(*) FROM sales GROUP BY 1, 2").value();
  EXPECT_EQ(q.group_by, (std::vector<std::string>{"state", "city"}));
  // Out of range / pointing at an aggregate.
  EXPECT_EQ(AnalyzeSql("SELECT state, count(*) FROM sales GROUP BY 5")
                .status()
                .code(),
            StatusCode::kAnalysisError);
  EXPECT_EQ(AnalyzeSql("SELECT state, count(*) FROM sales GROUP BY 2")
                .status()
                .code(),
            StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, ColumnNamesNormalizedToSchemaSpelling) {
  AnalyzedQuery q =
      AnalyzeSql("SELECT STATE, sum(SALESAMT) FROM sales GROUP BY STATE").value();
  EXPECT_EQ(q.group_by[0], "state");
}

TEST(AnalyzerTest, DistinctOnlyOnCount) {
  EXPECT_EQ(AnalyzeSql("SELECT store, sum(distinct salesAmt BY dweek) FROM sales "
                "GROUP BY store")
                .status()
                .code(),
            StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, DefaultRequiresBy) {
  EXPECT_EQ(
      AnalyzeSql("SELECT store, sum(salesAmt DEFAULT 0) FROM sales GROUP BY store")
          .status()
          .code(),
      StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, NumericArgumentRequiredForSumAvgVpctHpct) {
  EXPECT_EQ(AnalyzeSql("SELECT state, Vpct(city BY city) FROM sales "
                "GROUP BY state, city")
                .status()
                .code(),
            StatusCode::kAnalysisError);
  EXPECT_EQ(AnalyzeSql("SELECT store, sum(city) FROM sales GROUP BY store")
                .status()
                .code(),
            StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, WindowCannotMixWithGrouping) {
  EXPECT_EQ(AnalyzeSql("SELECT state, sum(salesAmt) OVER (PARTITION BY state) "
                "FROM sales GROUP BY state")
                .status()
                .code(),
            StatusCode::kAnalysisError);
  EXPECT_EQ(AnalyzeSql("SELECT sum(salesAmt) OVER (PARTITION BY state), "
                "sum(salesAmt) FROM sales")
                .status()
                .code(),
            StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, VpctDoesNotAcceptOver) {
  EXPECT_EQ(AnalyzeSql("SELECT state, Vpct(salesAmt BY city) OVER (PARTITION BY x) "
                "FROM sales GROUP BY state, city")
                .status()
                .code(),
            StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, DuplicateGroupByOrByColumnsRejected) {
  EXPECT_EQ(AnalyzeSql("SELECT state, count(*) FROM sales GROUP BY state, state")
                .status()
                .code(),
            StatusCode::kAnalysisError);
  EXPECT_EQ(AnalyzeSql("SELECT store, Hpct(salesAmt BY dweek, dweek) FROM sales "
                "GROUP BY store")
                .status()
                .code(),
            StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, UnknownColumnsRejected) {
  EXPECT_EQ(AnalyzeSql("SELECT nope FROM sales").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(AnalyzeSql("SELECT state, sum(nope) FROM sales GROUP BY state")
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(AnalyzeSql("SELECT state, count(*) FROM sales GROUP BY nope")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(AnalyzerTest, OutputNamesSynthesized) {
  AnalyzedQuery q = AnalyzeSql("SELECT state, Vpct(salesAmt BY city) "
                        "FROM sales GROUP BY state, city")
                        .value();
  EXPECT_EQ(q.terms[1].output_name, "vpct_salesAmt");
  AnalyzedQuery q2 =
      AnalyzeSql("SELECT state, sum(salesAmt) AS total FROM sales GROUP BY state")
          .value();
  EXPECT_EQ(q2.terms[1].output_name, "total");
}

TEST(AnalyzerTest, WhereClauseTypeChecked) {
  EXPECT_TRUE(AnalyzeSql("SELECT state, count(*) FROM sales WHERE salesAmt > 0 "
                  "GROUP BY state")
                  .ok());
  EXPECT_EQ(AnalyzeSql("SELECT state, count(*) FROM sales WHERE state + 1 > 0 "
                "GROUP BY state")
                .status()
                .code(),
            StatusCode::kTypeMismatch);
}

}  // namespace
}  // namespace pctagg
