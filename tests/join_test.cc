// Unit tests for HashJoin (inner and left outer), NULL-key semantics,
// multi-match fan-out, prebuilt-index probing and the HashIndex itself.

#include "engine/join.h"

#include <gtest/gtest.h>

#include "engine/index.h"
#include "engine/packed_key.h"
#include "engine/table.h"

namespace pctagg {
namespace {

Table LeftTable() {
  Table t(Schema({{"k", DataType::kInt64}, {"v", DataType::kFloat64}}));
  t.AppendRow({Value::Int64(1), Value::Float64(10)});
  t.AppendRow({Value::Int64(2), Value::Float64(20)});
  t.AppendRow({Value::Int64(3), Value::Float64(30)});
  t.AppendRow({Value::Null(), Value::Float64(40)});
  return t;
}

Table RightTable() {
  Table t(Schema({{"k", DataType::kInt64}, {"tot", DataType::kFloat64}}));
  t.AppendRow({Value::Int64(1), Value::Float64(100)});
  t.AppendRow({Value::Int64(2), Value::Float64(200)});
  t.AppendRow({Value::Null(), Value::Float64(999)});
  return t;
}

std::vector<JoinOutput> AllOutputs() {
  return {JoinOutput::Left("k"), JoinOutput::Left("v"),
          JoinOutput::Right("tot")};
}

TEST(JoinTest, InnerJoinDropsUnmatched) {
  Table out = HashJoin(LeftTable(), RightTable(), {"k"}, {"k"},
                       JoinKind::kInner, AllOutputs())
                  .value();
  EXPECT_EQ(out.num_rows(), 2u);  // k=3 and NULL keys drop
  EXPECT_EQ(out.column(0).Int64At(0), 1);
  EXPECT_DOUBLE_EQ(out.column(2).Float64At(0), 100.0);
}

TEST(JoinTest, LeftOuterKeepsUnmatchedWithNulls) {
  Table out = HashJoin(LeftTable(), RightTable(), {"k"}, {"k"},
                       JoinKind::kLeftOuter, AllOutputs())
                  .value();
  EXPECT_EQ(out.num_rows(), 4u);
  // Row with k=3: right side NULL.
  EXPECT_EQ(out.column(0).Int64At(2), 3);
  EXPECT_TRUE(out.column(2).IsNull(2));
  // NULL left key never matches (even though right has a NULL key row).
  EXPECT_TRUE(out.column(0).IsNull(3));
  EXPECT_TRUE(out.column(2).IsNull(3));
}

TEST(JoinTest, NullKeysNeverEqual) {
  Table out = HashJoin(LeftTable(), RightTable(), {"k"}, {"k"},
                       JoinKind::kInner, AllOutputs())
                  .value();
  for (size_t i = 0; i < out.num_rows(); ++i) {
    EXPECT_FALSE(out.column(0).IsNull(i));
  }
}

TEST(JoinTest, NullSafeModeMatchesNullKeys) {
  // IS NOT DISTINCT FROM semantics: the NULL left key finds the NULL right
  // key (used when joining on GROUP BY outputs where NULL is a group).
  Table out = HashJoin(LeftTable(), RightTable(), {"k"}, {"k"},
                       JoinKind::kLeftOuter, AllOutputs(), nullptr,
                       /*null_safe=*/true)
                  .value();
  ASSERT_EQ(out.num_rows(), 4u);
  EXPECT_TRUE(out.column(0).IsNull(3));
  ASSERT_FALSE(out.column(2).IsNull(3));
  EXPECT_DOUBLE_EQ(out.column(2).Float64At(3), 999.0);
}

TEST(JoinTest, MultiMatchFansOut) {
  Table right(Schema({{"k", DataType::kInt64}, {"tot", DataType::kFloat64}}));
  right.AppendRow({Value::Int64(1), Value::Float64(7)});
  right.AppendRow({Value::Int64(1), Value::Float64(8)});
  Table out = HashJoin(LeftTable(), right, {"k"}, {"k"}, JoinKind::kInner,
                       AllOutputs())
                  .value();
  EXPECT_EQ(out.num_rows(), 2u);  // left k=1 matches twice
}

TEST(JoinTest, RenamedOutputs) {
  Table out =
      HashJoin(LeftTable(), RightTable(), {"k"}, {"k"}, JoinKind::kInner,
               {JoinOutput::Left("k", "key"), JoinOutput::Right("tot", "t")})
          .value();
  EXPECT_TRUE(out.schema().HasColumn("key"));
  EXPECT_TRUE(out.schema().HasColumn("t"));
}

TEST(JoinTest, DifferentKeyNamesAcrossSides) {
  Table right(Schema({{"kk", DataType::kInt64}, {"tot", DataType::kFloat64}}));
  right.AppendRow({Value::Int64(2), Value::Float64(5)});
  Table out = HashJoin(LeftTable(), right, {"k"}, {"kk"}, JoinKind::kInner,
                       {JoinOutput::Left("v"), JoinOutput::Right("tot")})
                  .value();
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(out.column(0).Float64At(0), 20.0);
}

TEST(JoinTest, EmptyKeyListsRejected) {
  EXPECT_FALSE(HashJoin(LeftTable(), RightTable(), {}, {}, JoinKind::kInner,
                        AllOutputs())
                   .ok());
  EXPECT_FALSE(HashJoin(LeftTable(), RightTable(), {"k"}, {}, JoinKind::kInner,
                        AllOutputs())
                   .ok());
}

TEST(JoinTest, MatchingIndexProducesSameResult) {
  Table right = RightTable();
  HashIndex index = HashIndex::Build(right, {"k"}).value();
  Table with = HashJoin(LeftTable(), right, {"k"}, {"k"}, JoinKind::kLeftOuter,
                        AllOutputs(), &index)
                   .value();
  Table without = HashJoin(LeftTable(), right, {"k"}, {"k"},
                           JoinKind::kLeftOuter, AllOutputs())
                      .value();
  ASSERT_EQ(with.num_rows(), without.num_rows());
  for (size_t i = 0; i < with.num_rows(); ++i) {
    EXPECT_EQ(with.GetRow(i), without.GetRow(i));
  }
}

TEST(JoinTest, MismatchedIndexIsIgnoredNotMisused) {
  Table right = RightTable();
  // Index on the wrong column: the join must fall back to its own hash
  // table, not probe garbage.
  HashIndex index = HashIndex::Build(right, {"tot"}).value();
  EXPECT_FALSE(IndexMatchesKeys(index, {"k"}));
  Table out = HashJoin(LeftTable(), right, {"k"}, {"k"}, JoinKind::kInner,
                       AllOutputs(), &index)
                  .value();
  EXPECT_EQ(out.num_rows(), 2u);
}

TEST(JoinTest, IndexMatchesKeysChecksNamesCaseInsensitively) {
  Table right = RightTable();
  HashIndex index = HashIndex::Build(right, {"k"}).value();
  EXPECT_TRUE(IndexMatchesKeys(index, {"K"}));
  EXPECT_FALSE(IndexMatchesKeys(index, {"k", "tot"}));
}

TEST(LookupColumnTest, FetchesTotalsPerRow) {
  Column c = LookupColumn(LeftTable(), RightTable(), {"k"}, {"k"}, "tot")
                 .value();
  ASSERT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c.Float64At(0), 100.0);
  EXPECT_DOUBLE_EQ(c.Float64At(1), 200.0);
  EXPECT_TRUE(c.IsNull(2));  // unmatched key
  // NULL keys in the build side do match NULL probe keys byte-wise here;
  // percentage plans never produce NULL subkeys in Fj, but the behaviour is
  // defined: the NULL-keyed right row is found.
  EXPECT_FALSE(c.IsNull(3));
}

TEST(LookupColumnTest, UsesMatchingIndex) {
  Table right = RightTable();
  HashIndex index = HashIndex::Build(right, {"k"}).value();
  Column with =
      LookupColumn(LeftTable(), right, {"k"}, {"k"}, "tot", &index).value();
  Column without =
      LookupColumn(LeftTable(), right, {"k"}, {"k"}, "tot").value();
  ASSERT_EQ(with.size(), without.size());
  for (size_t i = 0; i < with.size(); ++i) {
    EXPECT_EQ(with.GetValue(i), without.GetValue(i));
  }
}

TEST(LookupColumnTest, RejectsBadArguments) {
  EXPECT_FALSE(LookupColumn(LeftTable(), RightTable(), {}, {}, "tot").ok());
  EXPECT_FALSE(
      LookupColumn(LeftTable(), RightTable(), {"k"}, {"k"}, "zzz").ok());
}

TEST(HashIndexTest, LookupFindsAllRows) {
  Table t(Schema({{"k", DataType::kInt64}}));
  t.AppendRow({Value::Int64(5)});
  t.AppendRow({Value::Int64(5)});
  t.AppendRow({Value::Int64(6)});
  HashIndex index = HashIndex::Build(t, {"k"}).value();
  EXPECT_EQ(index.num_keys(), 2u);
  // Probe with the packed key encoding the index is built on.
  std::string key;
  KeyEncoder(t, {0}).AppendKey(0, &key);
  const std::vector<size_t>* rows = index.Lookup(key);
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->size(), 2u);
  EXPECT_EQ(index.Lookup("garbage"), nullptr);
}

TEST(HashIndexTest, UnknownColumnRejected) {
  Table t(Schema({{"k", DataType::kInt64}}));
  EXPECT_FALSE(HashIndex::Build(t, {"zzz"}).ok());
}

}  // namespace
}  // namespace pctagg
