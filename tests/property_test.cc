// Property-based tests: randomized fact tables swept over seeds via
// parameterized gtest. Invariants checked on every instance:
//   P1  Vpct percentages within a totals group sum to 1 (when defined).
//   P2  All Table-4 Vpct strategies produce identical result sets.
//   P3  The OLAP window baseline produces the same answer set as Vpct.
//   P4  All Table-5 / DMKD-Table-3 horizontal strategies agree.
//   P5  Hpct rows sum to 1; Hpct cell (g, v) equals Vpct row (g, v).
//   P6  Hagg cells reassemble the vertical aggregate (pivot is lossless).

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"
#include "core/database.h"
#include "engine/csv.h"
#include "engine/table_ops.h"

namespace pctagg {
namespace {

// Dimensions d1(4) x d2(5) x d3(3); ~8% NULL measures; positive amounts.
Table RandomFact(uint64_t seed) {
  Rng rng(seed);
  size_t n = 200 + rng.Uniform(400);
  Table t(Schema({{"d1", DataType::kInt64},
                  {"d2", DataType::kInt64},
                  {"d3", DataType::kInt64},
                  {"a", DataType::kFloat64}}));
  for (size_t i = 0; i < n; ++i) {
    Value a = rng.Uniform(12) == 0
                  ? Value::Null()
                  : Value::Float64(std::round(rng.NextDouble() * 90.0) + 1.0);
    t.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(4))),
                 Value::Int64(static_cast<int64_t>(rng.Uniform(5))),
                 Value::Int64(static_cast<int64_t>(rng.Uniform(3))), a});
  }
  return t;
}

using CellKey = std::pair<std::string, std::string>;

// Flattens any result table to (row-key over leading int columns, column
// name) -> value for order-insensitive comparison.
std::map<CellKey, std::string> Fingerprint(const Table& t, size_t key_cols) {
  std::map<CellKey, std::string> out;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    std::string rk;
    for (size_t c = 0; c < key_cols; ++c) {
      rk += t.column(c).GetValue(i).ToString() + "|";
    }
    for (size_t c = key_cols; c < t.num_columns(); ++c) {
      Value v = t.column(c).GetValue(i);
      std::string rendered;
      if (v.is_null()) {
        rendered = "NULL";
      } else if (v.is_float64() || v.is_int64()) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.9f", v.AsDouble());
        rendered = buf;
      } else {
        rendered = v.ToString();
      }
      out[{rk, t.schema().column(c).name}] = rendered;
    }
  }
  return out;
}

class RandomizedSweep : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable("f", RandomFact(GetParam())).ok());
  }
  PctDatabase db_;
};

TEST_P(RandomizedSweep, P1VpctGroupsSumToOne) {
  Table t = db_.Query("SELECT d1, d2, Vpct(a BY d2) AS pct FROM f "
                      "GROUP BY d1, d2")
                .value();
  std::map<int64_t, double> sums;
  const Column& d1 = *t.ColumnByName("d1").value();
  const Column& pct = *t.ColumnByName("pct").value();
  for (size_t i = 0; i < t.num_rows(); ++i) {
    ASSERT_FALSE(pct.IsNull(i));  // positive measures: always defined
    EXPECT_GE(pct.Float64At(i), 0.0);
    EXPECT_LE(pct.Float64At(i), 1.0 + 1e-12);
    sums[d1.Int64At(i)] += pct.Float64At(i);
  }
  for (const auto& [g, s] : sums) EXPECT_NEAR(s, 1.0, 1e-9);
}

TEST_P(RandomizedSweep, P2VpctStrategiesIdentical) {
  const std::string sql =
      "SELECT d1, d2, d3, Vpct(a BY d2, d3) AS pct FROM f "
      "GROUP BY d1, d2, d3";
  std::map<CellKey, std::string> reference;
  bool first = true;
  for (bool idx : {true, false}) {
    for (bool ins : {true, false}) {
      for (bool fjfk : {true, false}) {
        VpctStrategy s;
        s.matching_indexes = idx;
        s.insert_result = ins;
        s.fj_from_fk = fjfk;
        Result<Table> r = db_.QueryVpct(sql, s);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        auto fp = Fingerprint(r.value(), 3);
        if (first) {
          reference = fp;
          first = false;
        } else {
          EXPECT_EQ(fp, reference);
        }
      }
    }
  }
}

TEST_P(RandomizedSweep, P3OlapBaselineSameAnswerSet) {
  const std::string sql =
      "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2";
  Table direct = db_.Query(sql).value();
  Table olap = db_.QueryOlapBaseline(sql).value();
  EXPECT_EQ(Fingerprint(direct, 2), Fingerprint(olap, 2));
}

TEST_P(RandomizedSweep, P4HorizontalStrategiesIdentical) {
  const std::string sql = "SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1";
  std::map<CellKey, std::string> reference;
  bool first = true;
  for (HorizontalMethod method :
       {HorizontalMethod::kCaseDirect, HorizontalMethod::kCaseFromFV,
        HorizontalMethod::kSpjDirect, HorizontalMethod::kSpjFromFV}) {
    for (bool dispatch : {true, false}) {
      HorizontalStrategy s;
      s.method = method;
      s.hash_dispatch = dispatch;
      Result<Table> r = db_.QueryHorizontal(sql, s);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      auto fp = Fingerprint(r.value(), 1);
      if (first) {
        reference = fp;
        first = false;
      } else {
        EXPECT_EQ(fp, reference) << HorizontalMethodName(method);
      }
    }
  }
}

TEST_P(RandomizedSweep, P5HpctCellsMatchVpctRows) {
  Table h = db_.Query("SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1").value();
  Table v = db_.Query("SELECT d1, d2, Vpct(a BY d2) AS pct FROM f "
                      "GROUP BY d1, d2")
                .value();
  std::map<std::pair<int64_t, int64_t>, double> vmap;
  {
    const Column& d1 = *v.ColumnByName("d1").value();
    const Column& d2 = *v.ColumnByName("d2").value();
    const Column& p = *v.ColumnByName("pct").value();
    for (size_t i = 0; i < v.num_rows(); ++i) {
      vmap[{d1.Int64At(i), d2.Int64At(i)}] = p.Float64At(i);
    }
  }
  const Column& d1 = *h.ColumnByName("d1").value();
  for (size_t i = 0; i < h.num_rows(); ++i) {
    double row_sum = 0;
    for (size_t c = 1; c < h.num_columns(); ++c) {
      const std::string& name = h.schema().column(c).name;  // "d2=K"
      int64_t k = std::stoll(name.substr(name.find('=') + 1));
      double cell = h.column(c).Float64At(i);
      row_sum += cell;
      auto it = vmap.find({d1.Int64At(i), k});
      if (it != vmap.end()) {
        EXPECT_NEAR(cell, it->second, 1e-9);
      } else {
        EXPECT_DOUBLE_EQ(cell, 0.0);  // missing row <-> 0% cell
      }
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-9);
  }
}

TEST_P(RandomizedSweep, P6PivotIsLossless) {
  Table h = db_.Query("SELECT d1, sum(a BY d2) FROM f GROUP BY d1").value();
  Table v = db_.Query("SELECT d1, d2, sum(a) AS s FROM f GROUP BY d1, d2")
                .value();
  std::map<std::pair<int64_t, int64_t>, Value> vmap;
  {
    const Column& d1 = *v.ColumnByName("d1").value();
    const Column& d2 = *v.ColumnByName("d2").value();
    const Column& s = *v.ColumnByName("s").value();
    for (size_t i = 0; i < v.num_rows(); ++i) {
      vmap[{d1.Int64At(i), d2.Int64At(i)}] = s.GetValue(i);
    }
  }
  size_t matched = 0;
  const Column& d1 = *h.ColumnByName("d1").value();
  for (size_t i = 0; i < h.num_rows(); ++i) {
    for (size_t c = 1; c < h.num_columns(); ++c) {
      const std::string& name = h.schema().column(c).name;
      int64_t k = std::stoll(name.substr(name.find('=') + 1));
      auto it = vmap.find({d1.Int64At(i), k});
      if (it == vmap.end()) {
        EXPECT_TRUE(h.column(c).IsNull(i));
        continue;
      }
      ++matched;
      if (it->second.is_null()) {
        EXPECT_TRUE(h.column(c).IsNull(i));
      } else {
        ASSERT_FALSE(h.column(c).IsNull(i));
        EXPECT_NEAR(h.column(c).Float64At(i), it->second.AsDouble(), 1e-9);
      }
    }
  }
  EXPECT_EQ(matched, vmap.size());  // every vertical row appears as a cell
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedSweep,
                         ::testing::Range<uint64_t>(1, 13));

// --- String-dimension sweep --------------------------------------------------
// The same invariants must hold when the grouping dimensions are
// dictionary-encoded STRING columns. s3 carries ~8% NULL keys so the
// direct-dictionary aggregation's NULL slot and the packed-key NULL tag are
// both exercised.

Table RandomFactStr(uint64_t seed) {
  Rng rng(seed);
  size_t n = 200 + rng.Uniform(400);
  Table t(Schema({{"s1", DataType::kString},
                  {"s2", DataType::kString},
                  {"s3", DataType::kString},
                  {"a", DataType::kFloat64}}));
  static const char* const kS1[] = {"north", "south", "east", "west"};
  static const char* const kS2[] = {"", "aa", "ab", "b", "longer-name"};
  static const char* const kS3[] = {"x", "y", "z"};
  for (size_t i = 0; i < n; ++i) {
    Value a = rng.Uniform(12) == 0
                  ? Value::Null()
                  : Value::Float64(std::round(rng.NextDouble() * 90.0) + 1.0);
    Value s3 = rng.Uniform(12) == 0 ? Value::Null()
                                    : Value::String(kS3[rng.Uniform(3)]);
    t.AppendRow({Value::String(kS1[rng.Uniform(4)]),
                 Value::String(kS2[rng.Uniform(5)]), s3, a});
  }
  return t;
}

class StringDimSweep : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable("f", RandomFactStr(GetParam())).ok());
  }
  PctDatabase db_;
};

TEST_P(StringDimSweep, P1VpctGroupsSumToOne) {
  Table t = db_.Query("SELECT s1, s2, Vpct(a BY s2) AS pct FROM f "
                      "GROUP BY s1, s2")
                .value();
  std::map<std::string, double> sums;
  const Column& s1 = *t.ColumnByName("s1").value();
  const Column& pct = *t.ColumnByName("pct").value();
  for (size_t i = 0; i < t.num_rows(); ++i) {
    ASSERT_FALSE(pct.IsNull(i));
    EXPECT_GE(pct.Float64At(i), 0.0);
    EXPECT_LE(pct.Float64At(i), 1.0 + 1e-12);
    sums[std::string(s1.StringAt(i))] += pct.Float64At(i);
  }
  for (const auto& [g, s] : sums) EXPECT_NEAR(s, 1.0, 1e-9) << g;
}

TEST_P(StringDimSweep, P2VpctStrategiesIdentical) {
  const std::string sql =
      "SELECT s1, s2, s3, Vpct(a BY s2, s3) AS pct FROM f "
      "GROUP BY s1, s2, s3";
  std::map<CellKey, std::string> reference;
  bool first = true;
  for (bool idx : {true, false}) {
    for (bool ins : {true, false}) {
      for (bool fjfk : {true, false}) {
        VpctStrategy s;
        s.matching_indexes = idx;
        s.insert_result = ins;
        s.fj_from_fk = fjfk;
        Result<Table> r = db_.QueryVpct(sql, s);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        auto fp = Fingerprint(r.value(), 3);
        if (first) {
          reference = fp;
          first = false;
        } else {
          EXPECT_EQ(fp, reference);
        }
      }
    }
  }
}

TEST_P(StringDimSweep, P4HorizontalStrategiesIdentical) {
  const std::string sql = "SELECT s1, Hpct(a BY s2) FROM f GROUP BY s1";
  std::map<CellKey, std::string> reference;
  bool first = true;
  for (HorizontalMethod method :
       {HorizontalMethod::kCaseDirect, HorizontalMethod::kCaseFromFV,
        HorizontalMethod::kSpjDirect, HorizontalMethod::kSpjFromFV}) {
    for (bool dispatch : {true, false}) {
      HorizontalStrategy s;
      s.method = method;
      s.hash_dispatch = dispatch;
      Result<Table> r = db_.QueryHorizontal(sql, s);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      auto fp = Fingerprint(r.value(), 1);
      if (first) {
        reference = fp;
        first = false;
      } else {
        EXPECT_EQ(fp, reference) << HorizontalMethodName(method);
      }
    }
  }
}

// Encoded group-by must be deterministic across degrees of parallelism:
// the rendered CSV — values AND row order — is identical bit for bit.
TEST_P(StringDimSweep, CrossDopDeterminism) {
  for (const char* sql :
       {"SELECT s1, s2, Vpct(a BY s2) AS pct FROM f GROUP BY s1, s2",
        "SELECT s1, s3, sum(a) AS s, count(a) AS c, avg(a) AS m FROM f "
        "GROUP BY s1, s3",
        "SELECT s1, Hpct(a BY s2) FROM f GROUP BY s1"}) {
    QueryOptions serial;
    serial.degree_of_parallelism = 1;
    Result<Table> base = db_.Query(sql, serial);
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    const std::string base_csv = FormatCsv(base.value());
    for (size_t dop : {2u, 4u}) {
      QueryOptions options;
      options.degree_of_parallelism = dop;
      Result<Table> r = db_.Query(sql, options);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(FormatCsv(r.value()), base_csv) << sql << " dop=" << dop;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StringDimSweep,
                         ::testing::Range<uint64_t>(1, 9));

// --- Delta-merge sweep -------------------------------------------------------
// P7: a summary maintained by delta-merge on append is indistinguishable from
// one recomputed over the full table — same values, same row order, at every
// degree of parallelism. The measure is an INTEGER column so aggregate sums
// are exact (no float reassociation across dop) and the rendered CSVs must
// match bit for bit: merge preserves first-seen group order (old groups keep
// their positions, delta-only groups append in delta first-seen order), which
// is exactly the order a recompute over base-then-delta rows produces.

// String dims (s2 with NULLs, delta introduces values the base dictionary
// has never seen) over an int64 measure with ~8% NULLs.
Table RandomFactIntMeasure(uint64_t seed, size_t n, bool is_delta) {
  Rng rng(seed);
  Table t(Schema({{"s1", DataType::kString},
                  {"s2", DataType::kString},
                  {"q", DataType::kInt64}}));
  static const char* const kS1[] = {"north", "south", "east", "west"};
  static const char* const kS2Base[] = {"", "aa", "ab", "b"};
  static const char* const kS2Delta[] = {"aa", "b", "delta-only", "d2new"};
  for (size_t i = 0; i < n; ++i) {
    Value q = rng.Uniform(12) == 0
                  ? Value::Null()
                  : Value::Int64(static_cast<int64_t>(1 + rng.Uniform(90)));
    Value s2 = rng.Uniform(12) == 0
                   ? Value::Null()
                   : Value::String((is_delta ? kS2Delta
                                             : kS2Base)[rng.Uniform(4)]);
    t.AppendRow({Value::String(kS1[rng.Uniform(4)]), s2, q});
  }
  return t;
}

class DeltaMergeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaMergeSweep, P7MergedSummariesBitIdenticalToRecompute) {
  const uint64_t seed = GetParam();
  Table base = RandomFactIntMeasure(seed, 300 + seed * 17, /*is_delta=*/false);
  Table delta = RandomFactIntMeasure(seed + 100, 40, /*is_delta=*/true);
  Table full = base;
  ASSERT_TRUE(InsertInto(&full, delta).ok());

  const char* const kQueries[] = {
      "SELECT s1, s2, Vpct(q BY s2) AS pct FROM f GROUP BY s1, s2",
      "SELECT s1, Vpct(q) AS pct FROM f GROUP BY s1",
      "SELECT s1, Hpct(q BY s2) FROM f GROUP BY s1",
      // avg decomposes into sum+count in the cached FVh step — mergeable.
      "SELECT s1, avg(q BY s2) FROM f GROUP BY s1",
  };
  for (size_t dop : {1u, 4u}) {
    QueryOptions options;
    options.degree_of_parallelism = dop;
    options.append_policy = AppendPolicy::kMerge;
    // Only the FromFV horizontal methods materialize (and therefore cache)
    // the FVh aggregate from the base table; force one so the horizontal
    // queries exercise the merge path instead of re-scanning directly.
    HorizontalStrategy from_fv;
    from_fv.method = HorizontalMethod::kCaseFromFV;
    options.horizontal_strategy = from_fv;

    PctDatabase merged_db;
    merged_db.EnableSummaryCache(true);
    ASSERT_TRUE(merged_db.CreateTable("f", base).ok());
    // Fill the cache from the base table, then append.
    for (const char* sql : kQueries) {
      ASSERT_TRUE(merged_db.Query(sql, options).ok()) << sql;
    }
    Result<AppendOutcome> outcome = merged_db.AppendRows("f", delta, options);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_GT(outcome->summaries_merged, 0u);
    EXPECT_EQ(outcome->summaries_recomputed, 0u);

    PctDatabase fresh_db;
    fresh_db.EnableSummaryCache(true);
    ASSERT_TRUE(fresh_db.CreateTable("f", full).ok());

    for (const char* sql : kQueries) {
      size_t hits = merged_db.summaries().hits();
      Result<Table> got = merged_db.Query(sql, options);
      ASSERT_TRUE(got.ok()) << sql << ": " << got.status().ToString();
      EXPECT_GT(merged_db.summaries().hits(), hits)
          << sql << " did not answer from the merged cache";
      Result<Table> want = fresh_db.Query(sql, options);
      ASSERT_TRUE(want.ok()) << sql << ": " << want.status().ToString();
      EXPECT_EQ(FormatCsv(*got), FormatCsv(*want))
          << sql << " dop=" << dop << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaMergeSweep,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace pctagg
