// Concurrency tests for the paper's last future-work item ("an intensive
// database environment where users concurrently submit percentage queries"):
// many threads run mixed percentage queries against one shared PctDatabase.
// Each plan materializes only its own (process-uniquely named) temporary
// tables, the catalog is internally synchronized, and the summary cache is
// safe to share.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/database.h"
#include "server/executor.h"

namespace pctagg {
namespace {

Table RandomFact(uint64_t seed, size_t n = 2000) {
  Rng rng(seed);
  Table t(Schema({{"d1", DataType::kInt64},
                  {"d2", DataType::kInt64},
                  {"a", DataType::kFloat64}}));
  t.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    t.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(5))),
                 Value::Int64(static_cast<int64_t>(rng.Uniform(6))),
                 Value::Float64(1.0 + rng.NextDouble() * 9.0)});
  }
  return t;
}

TEST(ConcurrencyTest, ParallelMixedQueriesProduceCorrectResults) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(99)).ok());
  // Reference answers computed serially.
  Table vref = db.Query("SELECT d1, d2, Vpct(a BY d2) AS pct FROM f "
                        "GROUP BY d1, d2 ORDER BY d1, d2")
                   .value();
  Table href =
      db.Query("SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1 ORDER BY d1")
          .value();

  std::atomic<int> failures{0};
  auto worker = [&db, &vref, &href, &failures](int id) {
    for (int iter = 0; iter < 10; ++iter) {
      if ((id + iter) % 2 == 0) {
        Result<Table> r = db.Query(
            "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2 "
            "ORDER BY d1, d2");
        if (!r.ok() || r.value().num_rows() != vref.num_rows()) {
          ++failures;
          continue;
        }
        for (size_t i = 0; i < vref.num_rows(); ++i) {
          if (!(r.value().GetRow(i) == vref.GetRow(i))) {
            ++failures;
            break;
          }
        }
      } else {
        Result<Table> r = db.Query(
            "SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1 ORDER BY d1");
        if (!r.ok() || r.value().num_rows() != href.num_rows() ||
            r.value().num_columns() != href.num_columns()) {
          ++failures;
        }
      }
    }
  };
  std::vector<std::thread> threads;
  for (int id = 0; id < 8; ++id) threads.emplace_back(worker, id);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // No leaked temporary tables.
  EXPECT_EQ(db.catalog().TableNames().size(), 1u);
}

TEST(ConcurrencyTest, SharedSummaryCacheUnderContention) {
  PctDatabase db;
  db.EnableSummaryCache(true);
  ASSERT_TRUE(db.CreateTable("f", RandomFact(7)).ok());
  std::atomic<int> failures{0};
  auto worker = [&db, &failures]() {
    for (int iter = 0; iter < 10; ++iter) {
      Result<Table> r = db.Query(
          "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2");
      if (!r.ok()) ++failures;
    }
  };
  std::vector<std::thread> threads;
  for (int id = 0; id < 8; ++id) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(db.summaries().size(), 1u);
  EXPECT_GT(db.summaries().hits(), 0u);
}

// Mixed readers and DDL over one database, mediated by the QueryExecutor's
// reader/writer lock: queries run concurrently, ReplaceTable runs exclusively,
// and a reader must always observe a complete table (every row count it sees
// is one of the sizes a writer published, never a torn intermediate).
TEST(ConcurrencyTest, ExecutorSerializesDdlAgainstReaders) {
  PctDatabase db;
  db.EnableSummaryCache(true);
  ASSERT_TRUE(db.CreateTable("f", RandomFact(11, 1000)).ok());
  QueryExecutor executor(&db, ExecutorConfig{4, 64});
  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};

  // Writers flip table "g" between two sizes; readers aggregate over it.
  const size_t kSizeA = 600, kSizeB = 1200;
  ASSERT_TRUE(db.CreateTable("g", RandomFact(12, kSizeA)).ok());
  auto ddl_worker = [&db, &executor, &failures, kSizeA, kSizeB] {
    for (int iter = 0; iter < 12; ++iter) {
      size_t n = iter % 2 == 0 ? kSizeB : kSizeA;
      Status s = executor.ExecuteWrite(
          [&db, n]() -> Status {
            // ReplaceTable also invalidates g's cached summaries.
            db.ReplaceTable("g", RandomFact(13 + n, n));
            return Status::OK();
          },
          /*timeout_ms=*/0);
      if (!s.ok()) ++failures;
    }
  };
  auto read_worker = [&executor, &failures, &stop] {
    while (!stop.load()) {
      Result<Table> r = executor.ExecuteStatement(
          "SELECT d1, d2, Vpct(a BY d2) AS pct FROM g GROUP BY d1, d2",
          QueryOptions{}, /*timeout_ms=*/0);
      if (!r.ok()) {
        ++failures;
        continue;
      }
      // The group count is bounded by the dimension domains regardless of
      // which table version we saw; a torn read would break the planner long
      // before this check, but keep a sanity bound anyway.
      if (r->num_rows() > 5 * 6) ++failures;
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) threads.emplace_back(read_worker);
  std::thread ddl(ddl_worker);
  ddl.join();
  stop.store(true);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Only the two base tables remain; all plan temporaries were dropped.
  EXPECT_EQ(db.catalog().TableNames().size(), 2u);
}

// Concurrent sessions each running *parallel* queries: the executor draws
// its statement workers from the process-wide SharedThreadPool(), and every
// statement sets degree_of_parallelism > 1, so the engine's morsel helpers
// land on that same pool while all of its threads are busy running
// statements. The morsel dispatcher's caller-drains design is what keeps
// this from deadlocking (a statement never waits for a pool slot to make
// progress); the test would hang, then fail via the per-statement timeout,
// if that property regressed. Results must also match the serial reference.
TEST(ConcurrencyTest, ParallelQueriesContendOnSharedPoolWithoutDeadlock) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(21, 20000)).ok());
  Table vref = db.Query("SELECT d1, d2, Vpct(a BY d2) AS pct FROM f "
                        "GROUP BY d1, d2 ORDER BY d1, d2")
                   .value();
  // worker_threads = 0: share the engine's pool instead of a private one.
  QueryExecutor executor(&db, ExecutorConfig{0, 64});
  const size_t kSessions = executor.worker_threads() * 2 + 2;

  std::atomic<int> failures{0};
  auto session = [&db, &executor, &vref, &failures](int id) {
    QueryOptions options;
    options.degree_of_parallelism = (id % 2 == 0) ? 4 : 0;  // fixed or auto
    for (int iter = 0; iter < 6; ++iter) {
      Result<Table> r = executor.ExecuteStatement(
          "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2 "
          "ORDER BY d1, d2",
          options, /*timeout_ms=*/60000);
      if (!r.ok() || r->num_rows() != vref.num_rows()) {
        ++failures;
        continue;
      }
      for (size_t i = 0; i < vref.num_rows(); ++i) {
        // Float percentages may reassociate across dop; compare group keys
        // exactly and the percentage numerically.
        if (!(r->column(0).GetValue(i) == vref.column(0).GetValue(i)) ||
            !(r->column(1).GetValue(i) == vref.column(1).GetValue(i))) {
          ++failures;
          break;
        }
        Value got = r->column(2).GetValue(i);
        Value want = vref.column(2).GetValue(i);
        if (got.is_null() != want.is_null()) {
          ++failures;
          break;
        }
        if (!got.is_null() &&
            std::fabs(got.AsDouble() - want.AsDouble()) > 1e-9) {
          ++failures;
          break;
        }
      }
    }
  };
  std::vector<std::thread> threads;
  for (size_t id = 0; id < kSessions; ++id) {
    threads.emplace_back(session, static_cast<int>(id));
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(db.catalog().TableNames().size(), 1u);
}

// Mixed append + query load through the executor's reader/writer discipline:
// INSERT statements (classified as writers by statement text) interleave with
// cached Vpct queries. Every result a reader sees must be internally
// consistent — within each totals group the percentages sum to exactly 1 —
// whether it was answered before or after any given append, from a fresh
// aggregation or from a delta-merged cache entry. A torn read (summary
// merged against a half-extended table, or a stale entry surviving an
// append) breaks that invariant.
TEST(AppendQueryStress, MixedAppendsAndCachedQueriesStayConsistent) {
  PctDatabase db;
  db.EnableSummaryCache(true);
  ASSERT_TRUE(db.CreateTable("f", RandomFact(41, 2000)).ok());
  QueryExecutor executor(&db, ExecutorConfig{4, 64});
  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::atomic<size_t> rows_appended{0};

  auto append_worker = [&db, &executor, &failures, &rows_appended] {
    Rng rng(43);
    for (int iter = 0; iter < 15; ++iter) {
      // ~1% of the base table per batch, as one INSERT statement.
      std::string sql = "INSERT INTO f VALUES ";
      const size_t batch = 20;
      for (size_t i = 0; i < batch; ++i) {
        if (i > 0) sql += ", ";
        sql += "(" + std::to_string(rng.Uniform(5)) + ", " +
               std::to_string(rng.Uniform(6)) + ", " +
               std::to_string(1 + rng.Uniform(9)) + ".5)";
      }
      Result<Table> r =
          executor.ExecuteStatement(sql, QueryOptions{}, /*timeout_ms=*/0);
      if (!r.ok()) {
        ++failures;
        continue;
      }
      rows_appended += batch;
    }
  };
  auto query_worker = [&executor, &failures, &stop] {
    while (!stop.load()) {
      Result<Table> r = executor.ExecuteStatement(
          "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2",
          QueryOptions{}, /*timeout_ms=*/0);
      if (!r.ok()) {
        ++failures;
        continue;
      }
      // Vpct(a BY d2): within each d1 the percentages across d2 sum to 1
      // (same invariant as property test P1).
      std::map<int64_t, double> sums;
      const Column& d1 = r->column(0);
      const Column& pct = r->column(2);
      for (size_t i = 0; i < r->num_rows(); ++i) {
        if (pct.IsNull(i)) continue;
        sums[d1.Int64At(i)] += pct.Float64At(i);
      }
      for (const auto& [k, s] : sums) {
        if (std::fabs(s - 1.0) > 1e-9) {
          ++failures;
          break;
        }
      }
    }
  };
  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) readers.emplace_back(query_worker);
  std::thread writer(append_worker);
  writer.join();
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Every batch landed in full.
  EXPECT_EQ(db.catalog().GetTable("f").value()->num_rows(),
            2000u + rows_appended.load());
  EXPECT_EQ(db.catalog().TableNames().size(), 1u);
  // The final cache state answers correctly too: one more query, compared
  // against a from-scratch database over the same rows.
  Table got = db.Query("SELECT d1, d2, Vpct(a BY d2) AS pct FROM f "
                       "GROUP BY d1, d2 ORDER BY d1, d2")
                  .value();
  PctDatabase fresh;
  ASSERT_TRUE(
      fresh.CreateTable("f", *db.catalog().GetTable("f").value()).ok());
  Table want = fresh.Query("SELECT d1, d2, Vpct(a BY d2) AS pct FROM f "
                           "GROUP BY d1, d2 ORDER BY d1, d2")
                   .value();
  ASSERT_EQ(got.num_rows(), want.num_rows());
  for (size_t i = 0; i < want.num_rows(); ++i) {
    EXPECT_EQ(got.column(0).GetValue(i), want.column(0).GetValue(i));
    EXPECT_EQ(got.column(1).GetValue(i), want.column(1).GetValue(i));
    EXPECT_NEAR(got.column(2).Float64At(i), want.column(2).Float64At(i),
                1e-9);
  }
}

TEST(ConcurrencyTest, CatalogOperationsAreSynchronized) {
  Catalog catalog;
  std::atomic<int> failures{0};
  auto worker = [&catalog, &failures](int id) {
    for (int iter = 0; iter < 50; ++iter) {
      std::string name =
          "t_" + std::to_string(id) + "_" + std::to_string(iter);
      Table t(Schema({{"x", DataType::kInt64}}));
      t.AppendRow({Value::Int64(id)}).ok();
      if (!catalog.CreateTable(name, std::move(t)).ok()) ++failures;
      Result<Table*> got = catalog.GetTable(name);
      if (!got.ok() || got.value()->column(0).Int64At(0) != id) ++failures;
      if (!catalog.DropTable(name).ok()) ++failures;
    }
  };
  std::vector<std::thread> threads;
  for (int id = 0; id < 8; ++id) threads.emplace_back(worker, id);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(catalog.TableNames().empty());
}

}  // namespace
}  // namespace pctagg
