// Tests for CSV import/export: quoting, NULLs, schema inference, file I/O
// and round-trips.

#include "engine/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace pctagg {
namespace {

Schema TestSchema() {
  return Schema({{"d", DataType::kInt64},
                 {"name", DataType::kString},
                 {"a", DataType::kFloat64}});
}

TEST(CsvTest, ParsesTypedRows) {
  Table t = ParseCsv("d,name,a\n1,alpha,1.5\n2,beta,2\n", TestSchema())
                .value();
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.column(0).Int64At(0), 1);
  EXPECT_EQ(t.column(1).StringAt(1), "beta");
  EXPECT_DOUBLE_EQ(t.column(2).Float64At(1), 2.0);
}

TEST(CsvTest, EmptyFieldIsNullQuotedEmptyIsEmptyString) {
  Table t = ParseCsv("d,name,a\n1,,\n2,\"\",3\n", TestSchema()).value();
  EXPECT_TRUE(t.column(1).IsNull(0));
  EXPECT_TRUE(t.column(2).IsNull(0));
  EXPECT_FALSE(t.column(1).IsNull(1));
  EXPECT_EQ(t.column(1).StringAt(1), "");
}

TEST(CsvTest, QuotingEmbeddedDelimitersAndQuotes) {
  Table t = ParseCsv("d,name,a\n1,\"a,b\",1\n2,\"say \"\"hi\"\"\",2\n"
                     "3,\"line\nbreak\",3\n",
                     TestSchema())
                .value();
  ASSERT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.column(1).StringAt(0), "a,b");
  EXPECT_EQ(t.column(1).StringAt(1), "say \"hi\"");
  EXPECT_EQ(t.column(1).StringAt(2), "line\nbreak");
}

TEST(CsvTest, CrLfLineEndings) {
  Table t = ParseCsv("d,name,a\r\n1,x,1\r\n", TestSchema()).value();
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.column(1).StringAt(0), "x");
}

TEST(CsvTest, HeaderValidation) {
  EXPECT_FALSE(ParseCsv("wrong,name,a\n1,x,1\n", TestSchema()).ok());
  EXPECT_FALSE(ParseCsv("d,name\n1,x\n", TestSchema()).ok());
  // Case-insensitive header match is fine.
  EXPECT_TRUE(ParseCsv("D,NAME,A\n1,x,1\n", TestSchema()).ok());
  // No header mode.
  EXPECT_EQ(ParseCsv("1,x,1\n", TestSchema(), /*has_header=*/false)
                .value()
                .num_rows(),
            1u);
}

TEST(CsvTest, TypeErrorsArePositioned) {
  Result<Table> r = ParseCsv("d,name,a\nnope,x,1\n", TestSchema());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("row 1"), std::string::npos);
  EXPECT_NE(r.status().message().find("column d"), std::string::npos);
}

TEST(CsvTest, MalformedInputs) {
  EXPECT_FALSE(ParseCsv("d,name,a\n1,\"unterminated,2\n", TestSchema()).ok());
  EXPECT_FALSE(ParseCsv("d,name,a\n1,x\"y,1\n", TestSchema()).ok());
  EXPECT_FALSE(ParseCsv("d,name,a\n1,x,1,extra\n", TestSchema()).ok());
}

TEST(CsvTest, AutoSchemaInference) {
  Table t = ParseCsvAuto("id,score,label\n1,2.5,x\n2,3,y\n,4.5,\n").value();
  EXPECT_EQ(t.schema().column(0).type, DataType::kInt64);
  EXPECT_EQ(t.schema().column(1).type, DataType::kFloat64);
  EXPECT_EQ(t.schema().column(2).type, DataType::kString);
  EXPECT_TRUE(t.column(0).IsNull(2));  // empty -> NULL, type still inferred
}

TEST(CsvTest, AutoInferencePrefersIntOverFloat) {
  Table t = ParseCsvAuto("x\n1\n2\n3\n").value();
  EXPECT_EQ(t.schema().column(0).type, DataType::kInt64);
  Table f = ParseCsvAuto("x\n1\n2.5\n").value();
  EXPECT_EQ(f.schema().column(0).type, DataType::kFloat64);
}

TEST(CsvTest, QuotedNumbersStayStrings) {
  Table t = ParseCsvAuto("zip\n\"02134\"\n\"10001\"\n").value();
  EXPECT_EQ(t.schema().column(0).type, DataType::kString);
  EXPECT_EQ(t.column(0).StringAt(0), "02134");
}

TEST(CsvTest, RoundTrip) {
  Table t(TestSchema());
  t.AppendRow({Value::Int64(1), Value::String("a,b"), Value::Float64(0.25)});
  t.AppendRow({Value::Null(), Value::String(""), Value::Null()});
  t.AppendRow({Value::Int64(3), Value::Null(), Value::Float64(-1.5)});
  std::string csv = FormatCsv(t);
  Table back = ParseCsv(csv, TestSchema()).value();
  ASSERT_EQ(back.num_rows(), t.num_rows());
  for (size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_EQ(back.GetRow(i), t.GetRow(i)) << "row " << i;
  }
}

TEST(CsvTest, FileRoundTrip) {
  Table t(TestSchema());
  t.AppendRow({Value::Int64(7), Value::String("x"), Value::Float64(1)});
  std::string path = ::testing::TempDir() + "/pctagg_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  Table back = ReadCsvFile(path, TestSchema()).value();
  EXPECT_EQ(back.num_rows(), 1u);
  Table autod = ReadCsvFileAuto(path).value();
  EXPECT_EQ(autod.schema().column(0).type, DataType::kInt64);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadCsvFile("/nonexistent/nope.csv", TestSchema()).ok());
}

}  // namespace
}  // namespace pctagg
