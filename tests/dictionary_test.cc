// Unit tests for the string Dictionary: insert-ordered codes, round-trips
// across chunk boundaries, Find semantics, the encoding metrics, and the
// single-writer / concurrent-reader publication protocol (the TSan target
// `dictionary_tsan` pins this suite).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "engine/dictionary.h"
#include "obs/metrics.h"

namespace pctagg {
namespace {

TEST(DictionaryTest, InsertOrderedCodesAndRoundTrip) {
  Dictionary d;
  EXPECT_EQ(d.size(), 0u);
  EXPECT_EQ(d.GetOrAdd("b"), 0u);
  EXPECT_EQ(d.GetOrAdd("a"), 1u);
  EXPECT_EQ(d.GetOrAdd("c"), 2u);
  EXPECT_EQ(d.GetOrAdd("a"), 1u);  // duplicate interns to the same code
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.value(0), "b");
  EXPECT_EQ(d.value(1), "a");
  EXPECT_EQ(d.value(2), "c");
}

TEST(DictionaryTest, FindDoesNotInsert) {
  Dictionary d;
  d.GetOrAdd("present");
  EXPECT_EQ(d.Find("present"), 0u);
  EXPECT_EQ(d.Find("absent"), Dictionary::kInvalidCode);
  EXPECT_EQ(d.size(), 1u);  // Find never grows the pool
}

TEST(DictionaryTest, EmptyStringIsARegularValue) {
  Dictionary d;
  uint32_t empty = d.GetOrAdd("");
  uint32_t other = d.GetOrAdd("x");
  EXPECT_NE(empty, other);
  EXPECT_EQ(d.value(empty), "");
  EXPECT_EQ(d.Find(""), empty);
}

TEST(DictionaryTest, ChunkBoundaryRoundTrip) {
  // The first chunk holds 1024 strings; 5000 distinct values span the first
  // three chunks (1024 + 2048 + 4096). Every code must round-trip and Find
  // must agree after the open-addressing table has grown several times.
  Dictionary d;
  const int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(d.GetOrAdd("key-" + std::to_string(i)), static_cast<uint32_t>(i));
  }
  ASSERT_EQ(d.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(d.value(static_cast<uint32_t>(i)), "key-" + std::to_string(i));
    EXPECT_EQ(d.Find("key-" + std::to_string(i)), static_cast<uint32_t>(i));
  }
  EXPECT_GT(d.pool_bytes(), 0u);
}

TEST(DictionaryTest, EncodingMetricsExposed) {
  const bool was_enabled = obs::Enabled();
  obs::SetEnabled(true);
  Dictionary d;
  d.GetOrAdd("miss");  // first sight: a miss
  d.GetOrAdd("miss");  // second sight: a hit
  obs::SetEnabled(was_enabled);
  const std::string page = obs::GlobalMetrics().RenderPrometheus();
  EXPECT_NE(page.find("pctagg_encoding_dict_hits_total"), std::string::npos);
  EXPECT_NE(page.find("pctagg_encoding_dict_misses_total"), std::string::npos);
  EXPECT_NE(page.find("pctagg_encoding_dict_pool_bytes"), std::string::npos);
}

// The engine's contract: one writer interns (table loads run under the
// executor's exclusive lock) while any number of readers call size()/value()
// concurrently (rendering results after the lock is released). Readers must
// only ever observe fully constructed strings for codes below the size they
// read. Run under TSan via the `dictionary_tsan` ctest target.
TEST(DictionaryTest, ConcurrentReadersWhileWriterInterns) {
  Dictionary d;
  const uint32_t kN = 4000;
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  std::atomic<int> errors{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&d, &done, &errors] {
      while (!done.load(std::memory_order_acquire)) {
        size_t visible = d.size();
        for (uint32_t c = 0; c < visible; ++c) {
          const std::string& s = d.value(c);
          if (s != "w" + std::to_string(c)) {
            errors.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (uint32_t i = 0; i < kN; ++i) d.GetOrAdd("w" + std::to_string(i));
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(d.size(), static_cast<size_t>(kN));
}

}  // namespace
}  // namespace pctagg
