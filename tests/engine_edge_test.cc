// Engine edge cases: zero-row inputs through every operator, degenerate
// shapes, and boundary conditions not covered by the per-operator suites.

#include <gtest/gtest.h>

#include "engine/aggregate.h"
#include "engine/join.h"
#include "engine/pivot.h"
#include "engine/table_ops.h"
#include "engine/update.h"
#include "engine/window.h"

namespace pctagg {
namespace {

Table EmptyFact() {
  return Table(Schema({{"d", DataType::kInt64},
                       {"e", DataType::kInt64},
                       {"a", DataType::kFloat64}}));
}

TEST(EngineEdgeTest, OperatorsOnEmptyInput) {
  Table empty = EmptyFact();
  EXPECT_EQ(Filter(empty, Eq(Col("d"), Lit(Value::Int64(1))))
                .value()
                .num_rows(),
            0u);
  EXPECT_EQ(Project(empty, {{Col("a"), "a"}}).value().num_rows(), 0u);
  EXPECT_EQ(Distinct(empty, {"d"}).value().num_rows(), 0u);
  EXPECT_EQ(Sort(empty, {"d"}).value().num_rows(), 0u);
  EXPECT_EQ(SortBy(empty, {{"d", true}}).value().num_rows(), 0u);
  EXPECT_EQ(Limit(empty, 10).num_rows(), 0u);
  EXPECT_EQ(HashAggregate(empty, {"d"}, {{AggFunc::kSum, Col("a"), "s"}})
                .value()
                .num_rows(),
            0u);
  EXPECT_EQ(WindowAggregate(empty, {"d"}, AggFunc::kSum, Col("a"))
                .value()
                .size(),
            0u);
  // Pivot over empty input: no combinations discovered, so only group
  // columns appear, zero rows.
  Table p = HashDispatchPivot(empty, {"d"}, {"e"}, Col("a"), PivotOptions{})
                .value();
  EXPECT_EQ(p.num_rows(), 0u);
  EXPECT_EQ(p.num_columns(), 1u);
}

TEST(EngineEdgeTest, JoinsWithEmptySides) {
  Table empty = EmptyFact();
  Table one = EmptyFact();
  ASSERT_TRUE(
      one.AppendRow({Value::Int64(1), Value::Int64(1), Value::Float64(1)})
          .ok());
  std::vector<JoinOutput> outs = {JoinOutput::Left("d"),
                                  JoinOutput::Right("a")};
  EXPECT_EQ(HashJoin(empty, one, {"d"}, {"d"}, JoinKind::kInner, outs)
                .value()
                .num_rows(),
            0u);
  EXPECT_EQ(HashJoin(one, empty, {"d"}, {"d"}, JoinKind::kInner, outs)
                .value()
                .num_rows(),
            0u);
  Table outer = HashJoin(one, empty, {"d"}, {"d"}, JoinKind::kLeftOuter, outs)
                    .value();
  ASSERT_EQ(outer.num_rows(), 1u);
  EXPECT_TRUE(outer.column(1).IsNull(0));
  EXPECT_EQ(LookupColumn(one, empty, {"d"}, {"d"}, "a").value().size(), 1u);
}

TEST(EngineEdgeTest, UpdateAgainstEmptySource) {
  Table target = EmptyFact();
  ASSERT_TRUE(
      target.AppendRow({Value::Int64(1), Value::Int64(1), Value::Float64(4)})
          .ok());
  Table source(Schema({{"d", DataType::kInt64}, {"tot", DataType::kFloat64}}));
  ASSERT_TRUE(
      KeyedDivideUpdate(&target, {"d"}, "a", source, {"d"}, "tot").ok());
  EXPECT_TRUE(target.column(2).IsNull(0));  // no total found
}

TEST(EngineEdgeTest, LimitEdges) {
  Table one = EmptyFact();
  ASSERT_TRUE(
      one.AppendRow({Value::Int64(1), Value::Int64(1), Value::Float64(1)})
          .ok());
  EXPECT_EQ(Limit(one, 0).num_rows(), 0u);
  EXPECT_EQ(Limit(one, 1).num_rows(), 1u);
  EXPECT_EQ(Limit(one, 2).num_rows(), 1u);
}

TEST(EngineEdgeTest, SortByMultipleDirections) {
  Table t(Schema({{"x", DataType::kInt64}, {"y", DataType::kInt64}}));
  t.AppendRow({Value::Int64(1), Value::Int64(1)});
  t.AppendRow({Value::Int64(1), Value::Int64(2)});
  t.AppendRow({Value::Int64(2), Value::Int64(1)});
  Table out = SortBy(t, {{"x", false}, {"y", true}}).value();
  EXPECT_EQ(out.column(0).Int64At(0), 1);
  EXPECT_EQ(out.column(1).Int64At(0), 2);  // y descending within x
  EXPECT_EQ(out.column(1).Int64At(1), 1);
  EXPECT_EQ(out.column(0).Int64At(2), 2);
}

TEST(EngineEdgeTest, PivotSingleGroupSingleCombo) {
  Table t = EmptyFact();
  ASSERT_TRUE(
      t.AppendRow({Value::Int64(1), Value::Int64(7), Value::Float64(3)})
          .ok());
  PivotOptions pct;
  pct.percent_of_group_total = true;
  Table out = HashDispatchPivot(t, {"d"}, {"e"}, Col("a"), pct).value();
  ASSERT_EQ(out.num_rows(), 1u);
  ASSERT_EQ(out.num_columns(), 2u);
  EXPECT_DOUBLE_EQ(out.column(1).Float64At(0), 1.0);  // 100% of itself
}

TEST(EngineEdgeTest, WindowOnSingleRow) {
  Table t = EmptyFact();
  ASSERT_TRUE(
      t.AppendRow({Value::Int64(1), Value::Int64(1), Value::Float64(3)})
          .ok());
  Column c = WindowAggregate(t, {"d"}, AggFunc::kAvg, Col("a")).value();
  ASSERT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c.Float64At(0), 3.0);
}

TEST(EngineEdgeTest, AggregateManyGroupsOneRowEach) {
  Table t = EmptyFact();
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int64(i), Value::Int64(0),
                             Value::Float64(static_cast<double>(i))})
                    .ok());
  }
  Table out =
      HashAggregate(t, {"d"}, {{AggFunc::kSum, Col("a"), "s"}}).value();
  EXPECT_EQ(out.num_rows(), 100u);
}

TEST(EngineEdgeTest, TableToStringZeroRows) {
  std::string s = EmptyFact().ToString();
  EXPECT_NE(s.find("d"), std::string::npos);
  EXPECT_NE(s.find("a"), std::string::npos);
}

TEST(EngineEdgeTest, ColumnReserveDoesNotChangeSize) {
  Column c(DataType::kInt64);
  c.Reserve(100);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_TRUE(c.empty());
}

}  // namespace
}  // namespace pctagg
