// Unit tests for the common substrate: Status/Result, string utilities and
// the deterministic RNG.

#include <gtest/gtest.h>

#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace pctagg {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table sales");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table sales");
  EXPECT_EQ(s.ToString(), "NotFound: table sales");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kAnalysisError, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kTypeMismatch,
        StatusCode::kLimitExceeded, StatusCode::kTimeout,
        StatusCode::kUnavailable, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = Half(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 4);
  EXPECT_EQ(*r, 4);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Half(7);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> Chain(int x) {
  PCTAGG_ASSIGN_OR_RETURN(int h, Half(x));
  PCTAGG_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Chain(8).value(), 2);
  EXPECT_FALSE(Chain(6).ok());  // 6/2 = 3, odd
  EXPECT_FALSE(Chain(7).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(42);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 42);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, " AND "), "a AND b AND c");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SalesAmt", "salesamt"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringUtilTest, IsInteger) {
  EXPECT_TRUE(IsInteger("42"));
  EXPECT_TRUE(IsInteger("-7"));
  EXPECT_TRUE(IsInteger("+7"));
  EXPECT_FALSE(IsInteger(""));
  EXPECT_FALSE(IsInteger("-"));
  EXPECT_FALSE(IsInteger("3.5"));
  EXPECT_FALSE(IsInteger("abc"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%g", 0.5), "0.5");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformCoversDomain) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(5);
  size_t lows = 0;
  const size_t trials = 10000;
  for (size_t i = 0; i < trials; ++i) {
    uint64_t v = rng.Zipf(100, 1.0);
    EXPECT_LT(v, 100u);
    if (v < 10) ++lows;
  }
  // With theta=1 the first 10 ranks carry well over a third of the mass.
  EXPECT_GT(lows, trials / 3);
}

TEST(RngTest, ZipfDegenerateCases) {
  Rng rng(5);
  EXPECT_EQ(rng.Zipf(1, 1.0), 0u);
  uint64_t v = rng.Zipf(2, 0.5);
  EXPECT_LT(v, 2u);
}

}  // namespace
}  // namespace pctagg
