// Unit tests for the three special-purpose operators behind the paper's
// strategies: KeyedDivideUpdate (the UPDATE path), WindowAggregate (the OLAP
// baseline) and HashDispatchPivot (the transpose-and-aggregate primitive).

#include <gtest/gtest.h>

#include "engine/index.h"
#include "engine/pivot.h"
#include "engine/table.h"
#include "engine/update.h"
#include "engine/window.h"

namespace pctagg {
namespace {

// Fk-like table: (state, sum) rows.
Table MakeFk() {
  Table t(Schema({{"state", DataType::kInt64},
                  {"city", DataType::kInt64},
                  {"a", DataType::kFloat64}}));
  t.AppendRow({Value::Int64(1), Value::Int64(1), Value::Float64(30)});
  t.AppendRow({Value::Int64(1), Value::Int64(2), Value::Float64(70)});
  t.AppendRow({Value::Int64(2), Value::Int64(1), Value::Float64(50)});
  t.AppendRow({Value::Int64(3), Value::Int64(1), Value::Float64(10)});
  return t;
}

// Fj-like totals: state 1 -> 100, state 2 -> 0 (division-by-zero case);
// state 3 missing entirely.
Table MakeFj() {
  Table t(Schema({{"state", DataType::kInt64}, {"tot", DataType::kFloat64}}));
  t.AppendRow({Value::Int64(1), Value::Float64(100)});
  t.AppendRow({Value::Int64(2), Value::Float64(0)});
  return t;
}

TEST(KeyedDivideUpdateTest, DividesInPlace) {
  Table fk = MakeFk();
  Table fj = MakeFj();
  ASSERT_TRUE(
      KeyedDivideUpdate(&fk, {"state"}, "a", fj, {"state"}, "tot").ok());
  EXPECT_DOUBLE_EQ(fk.column(2).Float64At(0), 0.3);
  EXPECT_DOUBLE_EQ(fk.column(2).Float64At(1), 0.7);
  EXPECT_TRUE(fk.column(2).IsNull(2));  // zero divisor -> NULL
  EXPECT_TRUE(fk.column(2).IsNull(3));  // missing total -> NULL
  // The updated column is FLOAT64 after the rewrite.
  EXPECT_EQ(fk.schema().column(2).type, DataType::kFloat64);
}

TEST(KeyedDivideUpdateTest, WithMatchingIndex) {
  Table fk = MakeFk();
  Table fj = MakeFj();
  HashIndex index = HashIndex::Build(fj, {"state"}).value();
  ASSERT_TRUE(KeyedDivideUpdate(&fk, {"state"}, "a", fj, {"state"}, "tot",
                                &index)
                  .ok());
  EXPECT_DOUBLE_EQ(fk.column(2).Float64At(0), 0.3);
}

TEST(KeyedDivideUpdateTest, RejectsBadArguments) {
  Table fk = MakeFk();
  Table fj = MakeFj();
  EXPECT_FALSE(KeyedDivideUpdate(&fk, {}, "a", fj, {}, "tot").ok());
  EXPECT_FALSE(
      KeyedDivideUpdate(&fk, {"state"}, "zzz", fj, {"state"}, "tot").ok());
  Table strings(
      Schema({{"state", DataType::kInt64}, {"a", DataType::kString}}));
  EXPECT_EQ(KeyedDivideUpdate(&strings, {"state"}, "a", fj, {"state"}, "tot")
                .code(),
            StatusCode::kTypeMismatch);
}

Table FactRows() {
  Table t(Schema({{"d", DataType::kInt64},
                  {"e", DataType::kInt64},
                  {"a", DataType::kFloat64}}));
  t.AppendRow({Value::Int64(1), Value::Int64(1), Value::Float64(10)});
  t.AppendRow({Value::Int64(1), Value::Int64(2), Value::Float64(30)});
  t.AppendRow({Value::Int64(2), Value::Int64(1), Value::Float64(5)});
  t.AppendRow({Value::Int64(2), Value::Int64(1), Value::Null()});
  return t;
}

TEST(WindowAggregateTest, SumPerPartitionOnEveryRow) {
  Table t = FactRows();
  Column c = WindowAggregate(t, {"d"}, AggFunc::kSum, Col("a")).value();
  ASSERT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c.Float64At(0), 40.0);
  EXPECT_DOUBLE_EQ(c.Float64At(1), 40.0);
  EXPECT_DOUBLE_EQ(c.Float64At(2), 5.0);
  EXPECT_DOUBLE_EQ(c.Float64At(3), 5.0);  // NULL input skipped
}

TEST(WindowAggregateTest, EmptyPartitionIsGrandTotal) {
  Table t = FactRows();
  Column c = WindowAggregate(t, {}, AggFunc::kSum, Col("a")).value();
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_DOUBLE_EQ(c.Float64At(i), 45.0);
  }
}

TEST(WindowAggregateTest, CountAndCountStar) {
  Table t = FactRows();
  Column count = WindowAggregate(t, {"d"}, AggFunc::kCount, Col("a")).value();
  Column star = WindowAggregate(t, {"d"}, AggFunc::kCountStar, nullptr).value();
  EXPECT_EQ(count.Int64At(2), 1);  // NULL not counted
  EXPECT_EQ(star.Int64At(2), 2);
}

TEST(WindowAggregateTest, MinMaxAvg) {
  Table t = FactRows();
  EXPECT_DOUBLE_EQ(
      WindowAggregate(t, {"d"}, AggFunc::kMin, Col("a")).value().Float64At(0),
      10.0);
  EXPECT_DOUBLE_EQ(
      WindowAggregate(t, {"d"}, AggFunc::kMax, Col("a")).value().Float64At(0),
      30.0);
  EXPECT_DOUBLE_EQ(
      WindowAggregate(t, {"d"}, AggFunc::kAvg, Col("a")).value().Float64At(0),
      20.0);
}

TEST(WindowAggregateTest, AllNullPartitionYieldsNull) {
  Table t(Schema({{"d", DataType::kInt64}, {"a", DataType::kFloat64}}));
  t.AppendRow({Value::Int64(1), Value::Null()});
  Column c = WindowAggregate(t, {"d"}, AggFunc::kSum, Col("a")).value();
  EXPECT_TRUE(c.IsNull(0));
}

TEST(WindowAggregateTest, StringArgumentRejectedExceptCount) {
  Table t(Schema({{"d", DataType::kInt64}, {"s", DataType::kString}}));
  t.AppendRow({Value::Int64(1), Value::String("x")});
  EXPECT_FALSE(WindowAggregate(t, {"d"}, AggFunc::kSum, Col("s")).ok());
  EXPECT_TRUE(WindowAggregate(t, {"d"}, AggFunc::kCount, Col("s")).ok());
}

TEST(PivotTest, BasicSumPivot) {
  Table t = FactRows();
  Table out = HashDispatchPivot(t, {"d"}, {"e"}, Col("a"), PivotOptions{})
                  .value();
  // Columns: d, e=1, e=2 (first-seen order).
  ASSERT_EQ(out.num_columns(), 3u);
  EXPECT_EQ(out.schema().column(1).name, "e=1");
  EXPECT_EQ(out.schema().column(2).name, "e=2");
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(out.column(1).Float64At(0), 10.0);
  EXPECT_DOUBLE_EQ(out.column(2).Float64At(0), 30.0);
  EXPECT_DOUBLE_EQ(out.column(1).Float64At(1), 5.0);
  // Group d=2 has no e=2 rows: NULL (SPJ-consistent).
  EXPECT_TRUE(out.column(2).IsNull(1));
}

TEST(PivotTest, DefaultZeroCoalesces) {
  Table t = FactRows();
  PivotOptions options;
  options.default_zero = true;
  Table out = HashDispatchPivot(t, {"d"}, {"e"}, Col("a"), options).value();
  EXPECT_DOUBLE_EQ(out.column(2).Float64At(1), 0.0);
}

TEST(PivotTest, PercentModeAddsTo100) {
  Table t = FactRows();
  PivotOptions options;
  options.percent_of_group_total = true;
  Table out = HashDispatchPivot(t, {"d"}, {"e"}, Col("a"), options).value();
  EXPECT_DOUBLE_EQ(out.column(1).Float64At(0), 0.25);
  EXPECT_DOUBLE_EQ(out.column(2).Float64At(0), 0.75);
  // Group 2: 100% on e=1, 0% on the missing e=2.
  EXPECT_DOUBLE_EQ(out.column(1).Float64At(1), 1.0);
  EXPECT_DOUBLE_EQ(out.column(2).Float64At(1), 0.0);
}

TEST(PivotTest, PercentModeZeroTotalIsNull) {
  Table t(Schema({{"d", DataType::kInt64},
                  {"e", DataType::kInt64},
                  {"a", DataType::kFloat64}}));
  t.AppendRow({Value::Int64(1), Value::Int64(1), Value::Float64(5)});
  t.AppendRow({Value::Int64(1), Value::Int64(2), Value::Float64(-5)});
  t.AppendRow({Value::Int64(2), Value::Int64(1), Value::Float64(3)});
  PivotOptions options;
  options.percent_of_group_total = true;
  Table out = HashDispatchPivot(t, {"d"}, {"e"}, Col("a"), options).value();
  EXPECT_TRUE(out.column(1).IsNull(0));  // total 0 -> NULL percentages
  EXPECT_TRUE(out.column(2).IsNull(0));
  EXPECT_DOUBLE_EQ(out.column(1).Float64At(1), 1.0);
}

TEST(PivotTest, CountStarAndCount) {
  Table t = FactRows();
  PivotOptions star;
  star.func = AggFunc::kCountStar;
  Table s = HashDispatchPivot(t, {"d"}, {"e"}, nullptr, star).value();
  EXPECT_EQ(s.column(1).Int64At(1), 2);  // d=2,e=1: two rows
  EXPECT_TRUE(s.column(2).IsNull(1));    // d=2,e=2: no rows -> NULL
  PivotOptions cnt;
  cnt.func = AggFunc::kCount;
  Table c = HashDispatchPivot(t, {"d"}, {"e"}, Col("a"), cnt).value();
  EXPECT_EQ(c.column(1).Int64At(1), 1);  // the NULL measure is not counted
}

TEST(PivotTest, MinMaxAvgCells) {
  Table t = FactRows();
  PivotOptions mn;
  mn.func = AggFunc::kMin;
  EXPECT_DOUBLE_EQ(HashDispatchPivot(t, {"d"}, {"e"}, Col("a"), mn)
                       .value()
                       .column(1)
                       .Float64At(0),
                   10.0);
  PivotOptions av;
  av.func = AggFunc::kAvg;
  EXPECT_DOUBLE_EQ(HashDispatchPivot(t, {"d"}, {"e"}, Col("a"), av)
                       .value()
                       .column(1)
                       .Float64At(1),
                   5.0);
}

TEST(PivotTest, EmptyGroupByGivesOneRow) {
  Table t = FactRows();
  Table out = HashDispatchPivot(t, {}, {"e"}, Col("a"), PivotOptions{})
                  .value();
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(out.column(0).Float64At(0), 15.0);  // e=1 total
  EXPECT_DOUBLE_EQ(out.column(1).Float64At(0), 30.0);  // e=2 total
}

TEST(PivotTest, MultipleByColumns) {
  Table t = FactRows();
  Table out = HashDispatchPivot(t, {}, {"d", "e"}, Col("a"), PivotOptions{})
                  .value();
  EXPECT_EQ(out.num_columns(), 3u);  // (1,1), (1,2), (2,1)
  EXPECT_EQ(out.schema().column(0).name, "d=1,e=1");
}

TEST(PivotTest, NullByValueIsItsOwnColumn) {
  Table t(Schema({{"e", DataType::kInt64}, {"a", DataType::kFloat64}}));
  t.AppendRow({Value::Int64(1), Value::Float64(1)});
  t.AppendRow({Value::Null(), Value::Float64(2)});
  Table out =
      HashDispatchPivot(t, {}, {"e"}, Col("a"), PivotOptions{}).value();
  ASSERT_EQ(out.num_columns(), 2u);
  // NULL sorts first in the deterministic column order.
  EXPECT_EQ(out.schema().column(0).name, "e=NULL");
  EXPECT_DOUBLE_EQ(out.column(0).Float64At(0), 2.0);
  EXPECT_EQ(out.schema().column(1).name, "e=1");
}

TEST(PivotTest, RejectsBadArguments) {
  Table t = FactRows();
  EXPECT_FALSE(HashDispatchPivot(t, {"d"}, {}, Col("a"), PivotOptions{}).ok());
  EXPECT_FALSE(
      HashDispatchPivot(t, {"d"}, {"e"}, nullptr, PivotOptions{}).ok());
}

}  // namespace
}  // namespace pctagg
