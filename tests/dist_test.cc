// Multi-process-shaped integration tests for the scatter/gather coordinator
// (docs/SHARDING.md): real PctServer workers on loopback ephemeral ports, a
// dist::Coordinator scattering over persistent PctClient links, and the
// merge-on-arrival gather. Everything runs in-process so ctest needs no
// orchestration, but every byte between coordinator and worker crosses a
// TCP socket exactly as it would across machines.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/database.h"
#include "dist/coordinator.h"
#include "engine/csv.h"
#include "engine/table.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/generators.h"

namespace pctagg {
namespace {

// Coordinator policy tuned for tests: fail fast instead of the production
// 30 s deadline / 2 s backoff ceiling.
dist::CoordinatorConfig FastConfig() {
  dist::CoordinatorConfig config;
  config.shard_timeout_ms = 10000;
  config.shard_attempts = 2;
  config.backoff_initial_ms = 5;
  config.backoff_max_ms = 20;
  return config;
}

// N worker servers plus a coordinator database wired to them. The
// coordinator's own PctServer is optional (StartCoordinatorServer) — most
// tests drive the router directly to get Tables back for comparison.
class Cluster {
 public:
  explicit Cluster(size_t num_workers,
                   dist::CoordinatorConfig config = FastConfig()) {
    std::vector<dist::WorkerEndpoint> endpoints;
    for (size_t i = 0; i < num_workers; ++i) {
      worker_dbs_.push_back(std::make_unique<PctDatabase>());
      ServerConfig wc;
      wc.port = 0;
      wc.worker_threads = 2;
      workers_.push_back(
          std::make_unique<PctServer>(worker_dbs_.back().get(), wc));
      Status st = workers_.back()->Start();
      EXPECT_TRUE(st.ok()) << st.ToString();
      endpoints.push_back({"127.0.0.1", workers_.back()->port()});
    }
    coordinator_ = std::make_unique<dist::Coordinator>(&db_, endpoints, config);
  }

  PctDatabase& db() { return db_; }
  dist::Coordinator& coordinator() { return *coordinator_; }
  PctDatabase& worker_db(size_t i) { return *worker_dbs_[i]; }
  PctServer& worker(size_t i) { return *workers_[i]; }

  // Starts a coordinator-mode server (router wired) for wire-level tests.
  int StartCoordinatorServer() {
    ServerConfig config;
    config.port = 0;
    config.worker_threads = 2;
    config.router = coordinator_.get();
    server_ = std::make_unique<PctServer>(&db_, config);
    Status st = server_->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
    return server_->port();
  }

  // Runs `sql` through the router; the table must already be sharded.
  Result<Table> Distributed(const std::string& sql, size_t dop = 1,
                            obs::QueryTrace* trace = nullptr) {
    QueryOptions options;
    options.degree_of_parallelism = dop;
    Result<std::optional<Table>> r =
        coordinator_->MaybeExecute(sql, options, trace);
    if (!r.ok()) return r.status();
    if (!r->has_value()) {
      return Status::Internal("router declined: " + sql);
    }
    return std::move(**r);
  }

 private:
  PctDatabase db_;
  std::vector<std::unique_ptr<PctDatabase>> worker_dbs_;
  std::vector<std::unique_ptr<PctServer>> workers_;
  std::unique_ptr<dist::Coordinator> coordinator_;
  std::unique_ptr<PctServer> server_;
};

std::string LocalCsv(PctDatabase* db, const std::string& sql, size_t dop = 1) {
  QueryOptions options;
  options.degree_of_parallelism = dop;
  Result<Table> r = db->Query(sql, options);
  EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  return r.ok() ? FormatCsv(*r) : std::string();
}

// Hpct pivot column order is first-seen and merge-on-arrival makes
// first-seen nondeterministic, so horizontal results are compared cell by
// cell through column-name lookup instead of whole-CSV equality.
void ExpectSameByColumnName(const Table& got, const Table& want) {
  ASSERT_EQ(got.num_columns(), want.num_columns());
  ASSERT_EQ(got.num_rows(), want.num_rows());
  for (size_t c = 0; c < want.num_columns(); ++c) {
    const std::string& name = want.schema().column(c).name;
    Result<size_t> gc = got.schema().FindColumn(name);
    ASSERT_TRUE(gc.ok()) << "missing column " << name;
    for (size_t i = 0; i < want.num_rows(); ++i) {
      EXPECT_EQ(got.column(*gc).GetValue(i), want.column(c).GetValue(i))
          << name << " row " << i;
    }
  }
}

// An INT64-measure fact with NULLs in both the shard key and a group
// column: every merge path (NULL key routing, NULL group cells) exercised.
Table NullableFact(uint64_t seed, size_t n) {
  Rng rng(seed);
  Table t(Schema({{"k", DataType::kInt64},
                  {"g", DataType::kInt64},
                  {"v", DataType::kInt64}}));
  t.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Value k = rng.Uniform(10) == 0
                  ? Value::Null()
                  : Value::Int64(static_cast<int64_t>(rng.Uniform(7)));
    Value g = rng.Uniform(8) == 0
                  ? Value::Null()
                  : Value::Int64(static_cast<int64_t>(rng.Uniform(5)));
    t.AppendRow({k, g, Value::Int64(static_cast<int64_t>(rng.Uniform(100)))});
  }
  return t;
}

constexpr char kVpctSql[] =
    "SELECT dayOfWeekNo, stateId, Vpct(itemQty BY stateId) AS pct FROM f "
    "GROUP BY dayOfWeekNo, stateId ORDER BY dayOfWeekNo, stateId";

// --- Bit-identity vs single-node --------------------------------------------

// The headline guarantee: on INT64 measures a sharded Vpct is byte-for-byte
// the single-node answer at every dop, because shard partials are integer
// sums whose merge is associative and the final divide happens once,
// coordinator-side.
TEST(DistTest, VpctBitIdenticalToSingleNodeAcrossDop) {
  Cluster cluster(3);
  ASSERT_TRUE(
      cluster.db().CreateTable("f", GenerateTransactionLine(20000)).ok());
  std::string want = LocalCsv(&cluster.db(), kVpctSql);
  ASSERT_FALSE(want.empty());

  Status st = cluster.coordinator().ShardTable("f", "cityId");
  ASSERT_TRUE(st.ok()) << st.ToString();
  // The local table is now a zero-row stub; answers come from the shards.
  EXPECT_EQ(cluster.db().catalog().GetTable("f").value()->num_rows(), 0u);

  for (size_t dop : {size_t{1}, size_t{4}}) {
    Result<Table> got = cluster.Distributed(kVpctSql, dop);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(FormatCsv(*got), want) << "dop=" << dop;
  }
}

TEST(DistTest, GlobalAggregateMatchesSingleNode) {
  Cluster cluster(2);
  ASSERT_TRUE(
      cluster.db().CreateTable("f", GenerateTransactionLine(5000)).ok());
  const std::string sql =
      "SELECT sum(itemQty) AS s, count(*) AS n FROM f";
  std::string want = LocalCsv(&cluster.db(), sql);
  ASSERT_TRUE(cluster.coordinator().ShardTable("f", "storeId").ok());
  Result<Table> got = cluster.Distributed(sql);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(FormatCsv(*got), want);
}

// NULLs both as shard-key values (routed to shard 0) and as group keys
// (merged across shards into one NULL group).
TEST(DistTest, NullShardKeysAndNullGroupKeys) {
  Cluster cluster(3);
  ASSERT_TRUE(cluster.db().CreateTable("f", NullableFact(7, 4000)).ok());
  const std::string sql =
      "SELECT g, sum(v) AS s, count(*) AS n FROM f GROUP BY g ORDER BY g";
  const std::string by_key =
      "SELECT k, g, sum(v) AS s FROM f GROUP BY k, g ORDER BY k, g";
  std::string want = LocalCsv(&cluster.db(), sql);
  std::string want_by_key = LocalCsv(&cluster.db(), by_key);
  ASSERT_TRUE(cluster.coordinator().ShardTable("f", "k").ok());
  Result<Table> got = cluster.Distributed(sql);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(FormatCsv(*got), want);
  // Grouping by the shard key itself: each group lives on one shard, the
  // merge still has to keep the NULL group distinct from every hash bucket.
  Result<Table> got_by_key = cluster.Distributed(by_key, 4);
  ASSERT_TRUE(got_by_key.ok()) << got_by_key.status().ToString();
  EXPECT_EQ(FormatCsv(*got_by_key), want_by_key);
}

// String dimensions: each worker builds its own dictionary over the shard
// it received, so codes for the same string differ across shards and the
// gather must merge through value translation, not code equality.
TEST(DistTest, DictionaryStringKeysMergeByValue) {
  Cluster cluster(3);
  ASSERT_TRUE(
      cluster.db().CreateTable("sales", GenerateSalesNamed(8000)).ok());
  const std::string sql =
      "SELECT state, city, count(*) AS n, sum(salesAmt) AS s FROM sales "
      "GROUP BY state, city ORDER BY state, city";
  Result<Table> want = cluster.db().Query(sql);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(cluster.coordinator().ShardTable("sales", "city").ok());
  Result<Table> got = cluster.Distributed(sql, 4);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // String keys and INT64 count are exact; the float sum is compared with a
  // reassociation tolerance (docs/PARALLELISM.md).
  ASSERT_EQ(got->num_rows(), want->num_rows());
  for (size_t i = 0; i < want->num_rows(); ++i) {
    EXPECT_EQ(got->column(0).GetValue(i), want->column(0).GetValue(i));
    EXPECT_EQ(got->column(1).GetValue(i), want->column(1).GetValue(i));
    EXPECT_EQ(got->column(2).GetValue(i), want->column(2).GetValue(i));
    EXPECT_NEAR(got->column(3).Float64At(i), want->column(3).Float64At(i),
                1e-6 * (1.0 + std::abs(want->column(3).Float64At(i))));
  }
}

TEST(DistTest, HorizontalPivotMatchesPerColumn) {
  Cluster cluster(2);
  ASSERT_TRUE(
      cluster.db().CreateTable("f", GenerateTransactionLine(6000)).ok());
  const std::string sql =
      "SELECT stateId, Hpct(itemQty BY dayOfWeekNo) FROM f "
      "GROUP BY stateId ORDER BY stateId";
  Result<Table> want = cluster.db().Query(sql);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(cluster.coordinator().ShardTable("f", "cityId").ok());
  Result<Table> got = cluster.Distributed(sql, 4);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectSameByColumnName(*got, *want);
}

// CUBE over shards: the deduplicated finest-level partial is scattered once
// and the whole lattice is assembled coordinator-side from the merge.
TEST(DistTest, DistributedCubeMatchesSingleNode) {
  Cluster cluster(3);
  ASSERT_TRUE(
      cluster.db().CreateTable("f", GenerateTransactionLine(6000)).ok());
  const std::string sql =
      "SELECT stateId, dayOfWeekNo, sum(itemQty) AS s, count(*) AS n FROM f "
      "GROUP BY CUBE(stateId, dayOfWeekNo) ORDER BY stateId, dayOfWeekNo";
  std::string want = LocalCsv(&cluster.db(), sql, 4);
  ASSERT_TRUE(cluster.coordinator().ShardTable("f", "cityId").ok());
  for (size_t dop : {size_t{1}, size_t{4}}) {
    Result<Table> got = cluster.Distributed(sql, dop);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(FormatCsv(*got), want) << "dop=" << dop;
  }
}

// --- Failure semantics -------------------------------------------------------

// Killing a worker mid-topology turns the next query into a typed
// Unavailable naming the shard — not a hang, not a partial answer.
TEST(DistTest, ShardLossYieldsUnavailableNamingTheShard) {
  Cluster cluster(2);
  ASSERT_TRUE(
      cluster.db().CreateTable("f", GenerateTransactionLine(3000)).ok());
  ASSERT_TRUE(cluster.coordinator().ShardTable("f", "cityId").ok());
  ASSERT_TRUE(cluster.Distributed(kVpctSql).ok());

  cluster.worker(1).Stop();
  Result<Table> got = cluster.Distributed(kVpctSql);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable)
      << got.status().ToString();
  EXPECT_NE(got.status().message().find("shard 1"), std::string::npos)
      << got.status().ToString();
}

TEST(DistTest, ShardedTableIsReadOnlyAndReshardRejected) {
  Cluster cluster(2);
  ASSERT_TRUE(
      cluster.db().CreateTable("f", GenerateTransactionLine(1000)).ok());
  ASSERT_TRUE(cluster.coordinator().ShardTable("f", "cityId").ok());

  QueryOptions options;
  Result<std::optional<Table>> ins = cluster.coordinator().MaybeExecute(
      "INSERT INTO f VALUES (1, 1, 1, 1, 2020, 1, 1, 1, 1, 1, 1, 1, 1.0, "
      "1.0)",
      options, nullptr);
  ASSERT_FALSE(ins.ok());
  EXPECT_EQ(ins.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(ins.status().message().find("read-only"), std::string::npos);

  Status reshard = cluster.coordinator().ShardTable("f", "stateId");
  ASSERT_FALSE(reshard.ok());
  EXPECT_NE(reshard.message().find("already sharded"), std::string::npos);

  // Statements on unsharded tables are declined, not hijacked.
  ASSERT_TRUE(cluster.db().CreateTable("g", NullableFact(1, 10)).ok());
  Result<std::optional<Table>> other = cluster.coordinator().MaybeExecute(
      "SELECT g, sum(v) FROM g GROUP BY g", options, nullptr);
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->has_value());
}

// DROP fans out to every worker, then forgets the stub and the shard map.
TEST(DistTest, DistributedDropForgetsEverywhere) {
  Cluster cluster(2);
  ASSERT_TRUE(
      cluster.db().CreateTable("f", GenerateTransactionLine(1000)).ok());
  ASSERT_TRUE(cluster.coordinator().ShardTable("f", "cityId").ok());
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(cluster.worker_db(i).catalog().GetTable("f").ok());
  }

  QueryOptions options;
  Result<std::optional<Table>> drop =
      cluster.coordinator().MaybeExecute("DROP TABLE f", options, nullptr);
  ASSERT_TRUE(drop.ok()) << drop.status().ToString();
  ASSERT_TRUE(drop->has_value());
  EXPECT_EQ((*drop)->column(0).GetValue(0), Value::Int64(1));

  EXPECT_FALSE(cluster.coordinator().Routes("f"));
  EXPECT_FALSE(cluster.db().catalog().GetTable("f").ok());
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_FALSE(cluster.worker_db(i).catalog().GetTable("f").ok());
  }
}

// --- EXPLAIN surfaces the topology ------------------------------------------

TEST(DistTest, ExplainAndExplainAnalyzeShowFanout) {
  Cluster cluster(2);
  ASSERT_TRUE(
      cluster.db().CreateTable("f", GenerateTransactionLine(3000)).ok());
  ASSERT_TRUE(cluster.coordinator().ShardTable("f", "cityId").ok());

  Result<Table> plan = cluster.Distributed(std::string("EXPLAIN ") + kVpctSql);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string text = FormatCsv(*plan);
  EXPECT_NE(text.find("2 shards"), std::string::npos) << text;
  EXPECT_NE(text.find("PARTIAL"), std::string::npos) << text;

  Result<Table> analyzed =
      cluster.Distributed(std::string("EXPLAIN ANALYZE ") + kVpctSql);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  text = FormatCsv(*analyzed);
  EXPECT_NE(text.find("distributed scatter/gather"), std::string::npos)
      << text;
  EXPECT_NE(text.find("shard 0"), std::string::npos) << text;
  EXPECT_NE(text.find("shard 1"), std::string::npos) << text;
  EXPECT_NE(text.find("gather-merge"), std::string::npos) << text;
}

// --- Wire level: coordinator server with the router installed ---------------

TEST(DistTest, WireLevelShardQueryAndShowRoundTrip) {
  Cluster cluster(2);
  ASSERT_TRUE(
      cluster.db().CreateTable("f", GenerateTransactionLine(4000)).ok());
  int port = cluster.StartCoordinatorServer();

  Result<PctClient> client = PctClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  Result<WireResponse> before = client->Query(kVpctSql);
  ASSERT_TRUE(before.ok() && before->status.ok());

  Result<WireResponse> shard = client->Call(RequestVerb::kShard, "f cityId");
  ASSERT_TRUE(shard.ok()) << shard.status().ToString();
  ASSERT_TRUE(shard->status.ok()) << shard->status.ToString();
  EXPECT_NE(shard->body.find("sharded f"), std::string::npos) << shard->body;

  Result<WireResponse> after = client->Query(kVpctSql);
  ASSERT_TRUE(after.ok() && after->status.ok());
  EXPECT_EQ(after->body, before->body);

  Result<WireResponse> show = client->Call(RequestVerb::kShow, "");
  ASSERT_TRUE(show.ok() && show->status.ok());
  EXPECT_NE(show->body.find("dist: 2 workers"), std::string::npos)
      << show->body;

  Result<WireResponse> ins =
      client->Query("INSERT INTO f VALUES (1, 1, 1, 1, 2020, 1, 1, 1, 1, 1, "
                    "1, 1, 1.0, 1.0)");
  ASSERT_TRUE(ins.ok());
  EXPECT_FALSE(ins->status.ok());
  EXPECT_NE(ins->status.ToString().find("read-only"), std::string::npos);
}

// --- Client retry (satellite: bounded backoff reconnect) --------------------

TEST(ClientRetryTest, ConnectBackoffGivesUpWithTypedError) {
  // Port 1 on loopback: nothing listens there; every attempt is refused.
  ConnectOptions options;
  options.attempts = 2;
  options.backoff_initial_ms = 5;
  options.backoff_max_ms = 10;
  options.attempt_timeout_ms = 200;
  Result<PctClient> client = PctClient::Connect("127.0.0.1", 1, options);
  ASSERT_FALSE(client.ok());
}

TEST(ClientRetryTest, CallWithRetrySurvivesServerRestart) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", NullableFact(3, 200)).ok());
  ServerConfig config;
  config.port = 0;
  config.worker_threads = 2;
  auto server = std::make_unique<PctServer>(&db, config);
  ASSERT_TRUE(server->Start().ok());
  int port = server->port();

  ConnectOptions options;
  options.attempts = 4;
  options.backoff_initial_ms = 10;
  options.backoff_max_ms = 50;
  options.attempt_timeout_ms = 1000;
  Result<PctClient> client = PctClient::Connect("127.0.0.1", port, options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const std::string sql = "SELECT count(*) AS n FROM f";
  Result<WireResponse> first = client->Query(sql);
  ASSERT_TRUE(first.ok() && first->status.ok());

  // Bounce the server on the same port; the client's next retried call must
  // re-dial (with backoff) and succeed without the caller doing anything.
  server->Stop();
  server = std::make_unique<PctServer>(&db, config);
  // SO_REUSEADDR lets the new listener claim the port immediately, but give
  // the bind a few tries in case the old fd is still draining.
  ServerConfig retry_config = config;
  retry_config.port = port;
  for (int i = 0; i < 50; ++i) {
    server = std::make_unique<PctServer>(&db, retry_config);
    if (server->Start().ok()) break;
    usleep(20 * 1000);
  }
  ASSERT_EQ(server->port(), port);

  int retries = 0;
  Result<WireResponse> again =
      client->CallWithRetry(RequestVerb::kQuery, sql, 4, &retries);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_TRUE(again->status.ok()) << again->status.ToString();
  EXPECT_EQ(again->body, first->body);
  EXPECT_GE(retries, 1);
}

// --- Partial-lattice follow-on: cache-ancestor rollup (satellite) -----------

// A plain GROUP BY subsumed by a cached mergeable summary answers by rolling
// up from the cache — same machinery the coordinator uses across processes,
// applied to the local summary cache. INT64 measures make it bit-exact.
TEST(CacheAncestorTest, SubsumedGroupByAnswersFromCachedSummary) {
  Table fact(Schema({{"d1", DataType::kInt64},
                     {"d2", DataType::kInt64},
                     {"v", DataType::kInt64}}));
  Rng rng(11);
  for (size_t i = 0; i < 3000; ++i) {
    fact.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(4))),
                    Value::Int64(static_cast<int64_t>(rng.Uniform(6))),
                    Value::Int64(static_cast<int64_t>(rng.Uniform(50)))});
  }

  PctDatabase db;
  db.EnableSummaryCache(true);
  ASSERT_TRUE(db.CreateTable("f", fact).ok());
  // Fill the cache with the (d1, d2) mergeable summary.
  ASSERT_TRUE(db.Query("SELECT d1, d2, Vpct(v BY d2) AS pct FROM f "
                       "GROUP BY d1, d2 ORDER BY d1, d2")
                  .ok());
  ASSERT_GE(db.summaries().size(), 1u);

  const std::string sql =
      "SELECT d1, sum(v) AS s FROM f GROUP BY d1 ORDER BY d1";
  obs::QueryTrace trace;
  QueryOptions options;
  options.trace = &trace;
  Result<Table> got = db.Query(sql, options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(trace.strategy, "cache-ancestor");
  EXPECT_EQ(trace.strategy_source, "cache");

  PctDatabase fresh;
  ASSERT_TRUE(fresh.CreateTable("f", fact).ok());
  Result<Table> want = fresh.Query(sql);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(FormatCsv(*got), FormatCsv(*want));

  // A WHERE clause disqualifies the rollup: the cached summary has already
  // aggregated the rows away. The query still answers, directly.
  obs::QueryTrace filtered_trace;
  options.trace = &filtered_trace;
  Result<Table> filtered = db.Query(
      "SELECT d1, sum(v) AS s FROM f WHERE d2 = 1 GROUP BY d1 ORDER BY d1",
      options);
  ASSERT_TRUE(filtered.ok());
  EXPECT_NE(filtered_trace.strategy, "cache-ancestor");
}

}  // namespace
}  // namespace pctagg
