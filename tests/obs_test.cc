// Tests for the observability layer: the sharded metrics registry under
// concurrent writers, Prometheus rendering, the enable switch, and the
// QueryTrace / OpScope thread-local attachment protocol.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pctagg {
namespace obs {
namespace {

// --- Counter / Gauge / Histogram --------------------------------------------

TEST(MetricsTest, CounterSumsAcrossConcurrentThreads) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kAddsPerThread; ++i) counter.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kAddsPerThread);
}

TEST(MetricsTest, CounterAddN) {
  Counter counter;
  counter.Add(5);
  counter.Add(7);
  EXPECT_EQ(counter.Value(), 12u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(42);
  EXPECT_EQ(gauge.Value(), 42);
  gauge.Add(-10);
  EXPECT_EQ(gauge.Value(), 32);
}

TEST(MetricsTest, HistogramCountsAndSumsUnderConcurrency) {
  Histogram hist;
  constexpr int kThreads = 4;
  constexpr uint64_t kObsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (uint64_t i = 0; i < kObsPerThread; ++i) {
        hist.Observe(static_cast<uint64_t>(t) * 100 + (i % 7));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hist.Count(), kThreads * kObsPerThread);
  // Cumulative bucket counts are monotone and end at the total count.
  std::vector<uint64_t> cumulative, bounds;
  hist.Snapshot(&cumulative, &bounds);
  ASSERT_EQ(cumulative.size(), bounds.size());
  ASSERT_FALSE(cumulative.empty());
  for (size_t i = 1; i < cumulative.size(); ++i) {
    EXPECT_GE(cumulative[i], cumulative[i - 1]);
  }
  EXPECT_EQ(cumulative.back(), hist.Count());
}

TEST(MetricsTest, HistogramBucketsObservationsByMagnitude) {
  Histogram hist;
  hist.Observe(0);
  hist.Observe(1);     // [0, 2)
  hist.Observe(1000);  // [512, 1024)
  EXPECT_EQ(hist.Count(), 3u);
  EXPECT_EQ(hist.Sum(), 1001u);
  std::vector<uint64_t> cumulative, bounds;
  hist.Snapshot(&cumulative, &bounds);
  // Everything <= 1 except the single large observation.
  EXPECT_EQ(cumulative.front(), 2u);
  EXPECT_EQ(cumulative.back(), 3u);
}

// --- Registry ---------------------------------------------------------------

TEST(MetricsRegistryTest, GetReturnsSameInstanceForSameName) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("test_total", "help one");
  Counter& b = registry.GetCounter("test_total", "ignored later help");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(registry.CounterValue("test_total"), 3u);
  EXPECT_EQ(registry.CounterValue("absent_total"), 0u);
  Gauge& g = registry.GetGauge("test_gauge");
  g.Set(-5);
  EXPECT_EQ(registry.GaugeValue("test_gauge"), -5);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndWritesAreSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Registration races with writes to the same and other metrics.
      for (int i = 0; i < kIters; ++i) {
        registry.GetCounter("shared_total").Add();
        registry.GetCounter("other_" + std::to_string(i % 3)).Add();
        registry.GetHistogram("lat_micros").Observe(static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.CounterValue("shared_total"),
            static_cast<uint64_t>(kThreads) * kIters);
}

TEST(MetricsRegistryTest, RenderPrometheusFormat) {
  MetricsRegistry registry;
  registry.GetCounter("pctagg_test_events_total", "Events seen.").Add(2);
  registry.GetGauge("pctagg_test_depth", "Queue depth.").Set(4);
  registry.GetHistogram("pctagg_test_micros", "Latency.").Observe(100);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP pctagg_test_events_total Events seen."),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE pctagg_test_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("pctagg_test_events_total 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pctagg_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("pctagg_test_depth 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pctagg_test_micros histogram"),
            std::string::npos);
  EXPECT_NE(text.find("pctagg_test_micros_count 1"), std::string::npos);
  EXPECT_NE(text.find("pctagg_test_micros_sum 100"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

TEST(MetricsTest, EnableSwitchToggles) {
  ASSERT_TRUE(Enabled());  // default on
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
}

// --- QueryTrace / OpScope ---------------------------------------------------

TEST(TraceTest, OpScopeIsInertWithoutCurrentNode) {
  ASSERT_EQ(CurrentOp(), nullptr);
  OpScope op("aggregate");
  EXPECT_FALSE(op.active());
  op.SetRows(1, 2);  // must be safe no-ops
  op.SetHashTable(3, 4);
}

TEST(TraceTest, OpScopeAttachesChildToCurrentNode) {
  QueryTrace trace;
  TraceNode* stmt = trace.root().AddChild("insert", "INSERT INTO ...");
  {
    ScopedTraceNode scope(stmt);
    ASSERT_EQ(CurrentOp(), stmt);
    {
      OpScope op("aggregate");
      ASSERT_TRUE(op.active());
      // The operator node is now the current one, so nested operators
      // become its children.
      EXPECT_NE(CurrentOp(), stmt);
      op.SetRows(1000, 10);
      op.SetMorsels(4, 2);
      op.SetHashTable(10, 64);
      op.SetPartialsMerged(2);
      op.SetDetail("combos=3");
    }
    EXPECT_EQ(CurrentOp(), stmt);  // restored on scope exit
  }
  EXPECT_EQ(CurrentOp(), nullptr);
  ASSERT_EQ(stmt->children.size(), 1u);
  const TraceNode& op_node = *stmt->children[0];
  EXPECT_EQ(op_node.label, "aggregate");
  EXPECT_EQ(op_node.detail, "combos=3");
  EXPECT_EQ(op_node.stats.rows_in, 1000u);
  EXPECT_EQ(op_node.stats.rows_out, 10u);
  EXPECT_EQ(op_node.stats.morsels, 4u);
  EXPECT_EQ(op_node.stats.workers, 2u);
  EXPECT_EQ(op_node.stats.hash_groups, 10u);
  EXPECT_EQ(op_node.stats.hash_slots, 64u);
  EXPECT_DOUBLE_EQ(op_node.stats.hash_load(), 10.0 / 64.0);
  EXPECT_EQ(op_node.stats.partials_merged, 2u);
  EXPECT_GE(op_node.stats.wall_ms, 0.0);
}

TEST(TraceTest, MarkCacheHitSetsFlagOnCurrentNode) {
  QueryTrace trace;
  TraceNode* stmt = trace.root().AddChild("insert");
  {
    ScopedTraceNode scope(stmt);
    MarkCacheHit();
  }
  EXPECT_TRUE(stmt->stats.cache_hit);
  MarkCacheHit();  // no current node: must not crash
}

TEST(TraceTest, ActualRowOpsSumsOverTree) {
  QueryTrace trace;
  TraceNode* a = trace.root().AddChild("insert");
  a->AddChild("aggregate")->stats.rows_in = 1000;
  TraceNode* b = trace.root().AddChild("update");
  b->AddChild("join-lookup")->stats.rows_in = 250;
  EXPECT_EQ(trace.ActualRowOps(), 1250u);
}

TEST(TraceTest, RenderContainsStrategyStatsAndTree) {
  QueryTrace trace;
  trace.query_class = "vertical-percentage";
  trace.strategy = "Fj-from-Fk+INSERT";
  trace.strategy_source = "advisor";
  trace.predicted_costs.push_back({"Fj-from-Fk+INSERT", 120.0, true});
  trace.predicted_costs.push_back({"OLAP-window", 900.0, false});
  trace.predicted_group_rows = 5;
  trace.actual_group_rows = 5;
  trace.total_ms = 1.5;
  TraceNode* stmt = trace.root().AddChild("insert", "INSERT INTO Fk ...");
  TraceNode* agg = stmt->AddChild("aggregate");
  agg->stats.rows_in = 1000;
  agg->stats.rows_out = 5;
  agg->stats.hash_groups = 5;
  agg->stats.hash_slots = 64;
  std::string text = trace.Render();
  EXPECT_NE(text.find("query class: vertical-percentage"), std::string::npos);
  EXPECT_NE(text.find("strategy: Fj-from-Fk+INSERT (advisor)"),
            std::string::npos);
  // The chosen candidate is starred.
  EXPECT_NE(text.find("Fj-from-Fk+INSERT=120*"), std::string::npos);
  EXPECT_NE(text.find("OLAP-window=900"), std::string::npos);
  EXPECT_NE(text.find("predicted group rows: 5"), std::string::npos);
  EXPECT_NE(text.find("actual row ops: 1000"), std::string::npos);
  EXPECT_NE(text.find("insert: INSERT INTO Fk ..."), std::string::npos);
  EXPECT_NE(text.find("aggregate"), std::string::npos);
  EXPECT_NE(text.find("rows_in=1000"), std::string::npos);
}

TEST(TraceTest, ScopedTraceNodeRecordsWallTime) {
  TraceNode node{"statement", "", {}, {}};
  {
    ScopedTraceNode scope(&node);
    // Busy-wait long enough that the wall clock must advance.
    volatile uint64_t sink = 0;
    for (int i = 0; i < 2000000; ++i) {
      sink = sink + static_cast<uint64_t>(i);
    }
    (void)sink;
  }
  EXPECT_GT(node.stats.wall_ms, 0.0);
  EXPECT_GE(node.stats.cpu_ms, 0.0);
}

TEST(TraceTest, NullScopedTraceNodeIsNoop) {
  ScopedTraceNode scope(nullptr);
  EXPECT_EQ(CurrentOp(), nullptr);
}

}  // namespace
}  // namespace obs
}  // namespace pctagg
