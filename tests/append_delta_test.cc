// Tests for the incremental append path: INSERT/COPY parsing, delta
// construction, AppendRows' delta maintenance of cached summaries
// (merge vs drop-for-recompute), statement dispatch through Execute, and
// the EXPLAIN [ANALYZE] surface for writes.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.h"
#include "core/database.h"
#include "engine/csv.h"
#include "engine/table_ops.h"
#include "sql/analyzer.h"
#include "sql/parser.h"

namespace pctagg {
namespace {

Table RandomFact(uint64_t seed, size_t n = 400) {
  Rng rng(seed);
  Table t(Schema({{"d1", DataType::kInt64},
                  {"d2", DataType::kInt64},
                  {"a", DataType::kFloat64}}));
  for (size_t i = 0; i < n; ++i) {
    t.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(4))),
                 Value::Int64(static_cast<int64_t>(rng.Uniform(5))),
                 Value::Float64(1.0 + rng.NextDouble() * 9.0)});
  }
  return t;
}

constexpr char kVpctSql[] =
    "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2 "
    "ORDER BY d1, d2";

// --- Parsing ---------------------------------------------------------------

TEST(InsertParseTest, PositionalValues) {
  Result<InsertStatement> r =
      ParseInsert("INSERT INTO f VALUES (1, 2, 3.5), (2, NULL, -1.25)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table, "f");
  EXPECT_TRUE(r->columns.empty());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0], Value::Int64(1));
  EXPECT_EQ(r->rows[0][2], Value::Float64(3.5));
  EXPECT_TRUE(r->rows[1][1].is_null());
  EXPECT_EQ(r->rows[1][2], Value::Float64(-1.25));
}

TEST(InsertParseTest, NamedColumnsAndStrings) {
  Result<InsertStatement> r =
      ParseInsert("INSERT INTO sales (state, amt) VALUES ('CA', 10)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->columns.size(), 2u);
  EXPECT_EQ(r->columns[0], "state");
  EXPECT_EQ(r->rows[0][0], Value::String("CA"));
}

TEST(InsertParseTest, RejectsMalformedStatements) {
  EXPECT_FALSE(ParseInsert("INSERT INTO f (d1) VALUES (1, 2)").ok());
  EXPECT_FALSE(ParseInsert("INSERT INTO f VALUES (1, 2), (1)").ok());
  EXPECT_FALSE(ParseInsert("INSERT INTO f SELECT * FROM g").ok());
  EXPECT_FALSE(ParseInsert("INSERT f VALUES (1)").ok());
}

TEST(CopyParseTest, RequiresAppendOption) {
  Result<CopyStatement> r = ParseCopy("COPY f FROM 'delta.csv' (APPEND)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->table, "f");
  EXPECT_EQ(r->path, "delta.csv");
  EXPECT_TRUE(r->append);
  EXPECT_FALSE(ParseCopy("COPY f FROM 'delta.csv'").ok());
}

TEST(StatementKindTest, ClassifiesWrites) {
  EXPECT_EQ(ParseStatementKind("INSERT INTO f VALUES (1)")->kind,
            ParsedStatement::Kind::kInsert);
  EXPECT_EQ(ParseStatementKind("copy f from 'x' (append)")->kind,
            ParsedStatement::Kind::kCopy);
  EXPECT_EQ(ParseStatementKind("EXPLAIN ANALYZE INSERT INTO f VALUES (1)")
                ->kind,
            ParsedStatement::Kind::kInsert);
  EXPECT_EQ(ParseStatementKind("SELECT d1 FROM f")->kind,
            ParsedStatement::Kind::kSelect);
}

// --- Delta construction ----------------------------------------------------

TEST(InsertDeltaTest, OmittedColumnsBecomeNull) {
  Schema schema({{"d1", DataType::kInt64},
                 {"d2", DataType::kInt64},
                 {"a", DataType::kFloat64}});
  InsertStatement stmt =
      ParseInsert("INSERT INTO f (a, d1) VALUES (2.5, 7)").value();
  Result<Table> delta = BuildInsertDelta(stmt, schema);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  ASSERT_EQ(delta->num_rows(), 1u);
  EXPECT_EQ(delta->column(0).GetValue(0), Value::Int64(7));
  EXPECT_TRUE(delta->column(1).IsNull(0));  // d2 omitted
  EXPECT_EQ(delta->column(2).GetValue(0), Value::Float64(2.5));
}

TEST(InsertDeltaTest, WidensIntToFloatAndChecksTypes) {
  Schema schema({{"a", DataType::kFloat64}});
  Result<Table> widened = BuildInsertDelta(
      ParseInsert("INSERT INTO f VALUES (3)").value(), schema);
  ASSERT_TRUE(widened.ok());
  EXPECT_EQ(widened->column(0).GetValue(0), Value::Float64(3.0));
  EXPECT_FALSE(BuildInsertDelta(
                   ParseInsert("INSERT INTO f VALUES ('x')").value(), schema)
                   .ok());
}

TEST(InsertDeltaTest, RejectsUnknownOrDuplicateColumns) {
  Schema schema({{"d1", DataType::kInt64}});
  EXPECT_FALSE(BuildInsertDelta(
                   ParseInsert("INSERT INTO f (nope) VALUES (1)").value(),
                   schema)
                   .ok());
  EXPECT_FALSE(BuildInsertDelta(
                   ParseInsert("INSERT INTO f (d1, d1) VALUES (1, 2)").value(),
                   schema)
                   .ok());
  EXPECT_FALSE(BuildInsertDelta(
                   ParseInsert("INSERT INTO f VALUES (1, 2)").value(), schema)
                   .ok());
}

// --- AppendRows: delta maintenance -----------------------------------------

// After a cached query and an append, the next query must answer from the
// delta-merged summary and agree with a from-scratch database holding the
// full data.
TEST(AppendDeltaTest, MergedSummaryMatchesRecompute) {
  Table base = RandomFact(1, 400);
  Table delta = RandomFact(2, 60);

  PctDatabase merged_db;
  merged_db.EnableSummaryCache(true);
  ASSERT_TRUE(merged_db.CreateTable("f", base).ok());
  ASSERT_TRUE(merged_db.Query(kVpctSql).ok());  // fills the cache
  ASSERT_EQ(merged_db.summaries().size(), 1u);

  QueryOptions force_merge;
  force_merge.append_policy = AppendPolicy::kMerge;
  Result<AppendOutcome> outcome = merged_db.AppendRows("f", delta, force_merge);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->rows_appended, delta.num_rows());
  EXPECT_EQ(outcome->summaries_merged, 1u);
  EXPECT_EQ(outcome->summaries_recomputed, 0u);
  // The merged entry is live: the follow-up query hits it.
  size_t hits_before = merged_db.summaries().hits();
  Table after = merged_db.Query(kVpctSql).value();
  EXPECT_GT(merged_db.summaries().hits(), hits_before);

  PctDatabase fresh_db;
  Table full = base;
  ASSERT_TRUE(InsertInto(&full, delta).ok());
  ASSERT_TRUE(fresh_db.CreateTable("f", std::move(full)).ok());
  Table want = fresh_db.Query(kVpctSql).value();

  ASSERT_EQ(after.num_rows(), want.num_rows());
  for (size_t i = 0; i < want.num_rows(); ++i) {
    EXPECT_EQ(after.column(0).GetValue(i), want.column(0).GetValue(i));
    EXPECT_EQ(after.column(1).GetValue(i), want.column(1).GetValue(i));
    EXPECT_NEAR(after.column(2).Float64At(i), want.column(2).Float64At(i),
                1e-9);
  }
}

TEST(AppendDeltaTest, RecomputePolicyDropsEntries) {
  PctDatabase db;
  db.EnableSummaryCache(true);
  ASSERT_TRUE(db.CreateTable("f", RandomFact(3)).ok());
  ASSERT_TRUE(db.Query(kVpctSql).ok());
  ASSERT_EQ(db.summaries().size(), 1u);
  QueryOptions force;
  force.append_policy = AppendPolicy::kRecompute;
  Result<AppendOutcome> outcome = db.AppendRows("f", RandomFact(4, 50), force);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->summaries_merged, 0u);
  EXPECT_EQ(outcome->summaries_recomputed, 1u);
  EXPECT_EQ(db.summaries().size(), 0u);
  // The next query recomputes from the extended table and re-fills.
  ASSERT_TRUE(db.Query(kVpctSql).ok());
  EXPECT_EQ(db.summaries().size(), 1u);
}

// The cost model should merge small deltas and recompute when the "delta" is
// comparable to the whole table.
TEST(AppendDeltaTest, AutoPolicyMergesSmallDeltas) {
  PctDatabase db;
  db.EnableSummaryCache(true);
  ASSERT_TRUE(db.CreateTable("f", RandomFact(5, 5000)).ok());
  ASSERT_TRUE(db.Query(kVpctSql).ok());
  Result<AppendOutcome> outcome = db.AppendRows("f", RandomFact(6, 50));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->summaries_merged, 1u);
}

TEST(AppendDeltaTest, AppendWithoutCacheJustAddsRows) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(7, 100)).ok());
  Result<AppendOutcome> outcome = db.AppendRows("f", RandomFact(8, 10));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->rows_appended, 10u);
  EXPECT_EQ(outcome->summaries_merged, 0u);
  EXPECT_EQ(outcome->summaries_recomputed, 0u);
  EXPECT_EQ(db.catalog().GetTable("f").value()->num_rows(), 110u);
}

TEST(AppendDeltaTest, SchemaMismatchIsRejected) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(9, 10)).ok());
  Table bad(Schema({{"x", DataType::kString}}));
  ASSERT_TRUE(bad.AppendRow({Value::String("nope")}).ok());
  EXPECT_FALSE(db.AppendRows("f", bad).ok());
  EXPECT_FALSE(db.AppendRows("missing", RandomFact(10, 5)).ok());
}

// String dimensions: the delta re-interns into the base table's dictionaries,
// including values the base has never seen, and the merged summary still
// matches a recompute.
TEST(AppendDeltaTest, StringDimensionsWithNovelValues) {
  auto make = [](std::initializer_list<std::pair<const char*, int64_t>> rows) {
    Table t(Schema({{"region", DataType::kString}, {"q", DataType::kInt64}}));
    for (const auto& [r, q] : rows) {
      EXPECT_TRUE(t.AppendRow({Value::String(r), Value::Int64(q)}).ok());
    }
    return t;
  };
  PctDatabase db;
  db.EnableSummaryCache(true);
  ASSERT_TRUE(db.CreateTable(
                    "f", make({{"north", 10}, {"south", 20}, {"north", 5}}))
                  .ok());
  const std::string sql =
      "SELECT region, Vpct(q) AS pct FROM f GROUP BY region ORDER BY region";
  ASSERT_TRUE(db.Query(sql).ok());
  QueryOptions force_merge;
  force_merge.append_policy = AppendPolicy::kMerge;
  // "east" is a novel dictionary value; "north" extends an existing group.
  Result<AppendOutcome> outcome =
      db.AppendRows("f", make({{"east", 15}, {"north", 5}}), force_merge);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->summaries_merged, 1u);
  Table got = db.Query(sql).value();
  // Totals: east 15, north 20, south 20 of 55.
  ASSERT_EQ(got.num_rows(), 3u);
  EXPECT_EQ(got.column(0).GetValue(0), Value::String("east"));
  EXPECT_NEAR(got.column(1).Float64At(0), 15.0 / 55.0, 1e-12);
  EXPECT_NEAR(got.column(1).Float64At(1), 20.0 / 55.0, 1e-12);
  EXPECT_NEAR(got.column(1).Float64At(2), 20.0 / 55.0, 1e-12);
}

// --- Execute: statement dispatch -------------------------------------------

TEST(ExecuteTest, InsertStatementAppendsAndReportsOutcome) {
  PctDatabase db;
  db.EnableSummaryCache(true);
  ASSERT_TRUE(db.CreateTable("f", RandomFact(11, 200)).ok());
  ASSERT_TRUE(db.Query(kVpctSql).ok());
  Result<Table> r =
      db.Execute("INSERT INTO f VALUES (1, 2, 4.5), (3, 0, 1.5)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->ColumnByName("rows_appended").value()->GetValue(0),
            Value::Int64(2));
  EXPECT_EQ(r->ColumnByName("summaries_merged").value()->GetValue(0),
            Value::Int64(1));
  EXPECT_EQ(db.catalog().GetTable("f").value()->num_rows(), 202u);
}

TEST(ExecuteTest, SelectStillGoesThroughQuery) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(12, 50)).ok());
  Result<Table> r = db.Execute(kVpctSql);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->num_rows(), 0u);
}

TEST(ExecuteTest, QueryRejectsWriteStatements) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(13, 10)).ok());
  EXPECT_FALSE(db.Query("INSERT INTO f VALUES (1, 2, 3.0)").ok());
}

TEST(ExecuteTest, CopyAppendsFromCsv) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(14, 20)).ok());
  std::string path = ::testing::TempDir() + "append_delta_test.csv";
  {
    std::ofstream out(path);
    out << "d1,d2,a\n1,2,3.5\n0,4,2.25\n";
  }
  Result<Table> r =
      db.Execute("COPY f FROM '" + path + "' (APPEND)");
  std::remove(path.c_str());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->ColumnByName("rows_appended").value()->GetValue(0),
            Value::Int64(2));
  EXPECT_EQ(db.catalog().GetTable("f").value()->num_rows(), 22u);
  // COPY without (APPEND) stays rejected end to end.
  EXPECT_FALSE(db.Execute("COPY f FROM '" + path + "'").ok());
}

TEST(ExecuteTest, ExplainAnalyzeInsertShowsCandidates) {
  PctDatabase db;
  db.EnableSummaryCache(true);
  ASSERT_TRUE(db.CreateTable("f", RandomFact(15, 300)).ok());
  ASSERT_TRUE(db.Query(kVpctSql).ok());
  Result<Table> r =
      db.Execute("EXPLAIN ANALYZE INSERT INTO f VALUES (1, 2, 3.0)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string text = FormatCsv(*r);
  EXPECT_NE(text.find("append"), std::string::npos) << text;
  EXPECT_NE(text.find("delta-merge["), std::string::npos) << text;
  EXPECT_NE(text.find("recompute["), std::string::npos) << text;
  // And the row actually landed (ANALYZE executes).
  EXPECT_EQ(db.catalog().GetTable("f").value()->num_rows(), 301u);

  // Plain EXPLAIN describes the path without running it.
  Result<Table> plain =
      db.Execute("EXPLAIN INSERT INTO f VALUES (1, 2, 3.0)");
  ASSERT_TRUE(plain.ok());
  EXPECT_NE(FormatCsv(*plain).find("append path"), std::string::npos);
  EXPECT_EQ(db.catalog().GetTable("f").value()->num_rows(), 301u);
}

}  // namespace
}  // namespace pctagg
