// Unit tests for the hash GROUP BY operator: every aggregate function,
// NULL-skipping semantics, empty inputs, global groups and expression inputs.

#include "engine/aggregate.h"

#include <gtest/gtest.h>

#include <map>

#include "engine/table.h"

namespace pctagg {
namespace {

// d | a
// 1 | 10
// 1 | NULL
// 2 | 4
// 2 | 6
// NULL | 5
Table TestTable() {
  Table t(Schema({{"d", DataType::kInt64}, {"a", DataType::kFloat64}}));
  t.AppendRow({Value::Int64(1), Value::Float64(10.0)});
  t.AppendRow({Value::Int64(1), Value::Null()});
  t.AppendRow({Value::Int64(2), Value::Float64(4.0)});
  t.AppendRow({Value::Int64(2), Value::Float64(6.0)});
  t.AppendRow({Value::Null(), Value::Float64(5.0)});
  return t;
}

// Keyed by the first column's int value; NULL maps to the sentinel -999.
std::map<int64_t, std::vector<Value>> RowsByKey(const Table& t) {
  std::map<int64_t, std::vector<Value>> out;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    std::vector<Value> row = t.GetRow(i);
    out[row[0].is_null() ? -999 : row[0].int64()] = row;
  }
  return out;
}

TEST(AggregateTest, SumCountAvgMinMaxPerGroup) {
  Table t = TestTable();
  Result<Table> r = HashAggregate(
      t, {"d"},
      {{AggFunc::kSum, Col("a"), "s"},
       {AggFunc::kCount, Col("a"), "c"},
       {AggFunc::kCountStar, nullptr, "n"},
       {AggFunc::kAvg, Col("a"), "avg"},
       {AggFunc::kMin, Col("a"), "lo"},
       {AggFunc::kMax, Col("a"), "hi"}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Table& out = r.value();
  EXPECT_EQ(out.num_rows(), 3u);  // groups: 1, 2, NULL
  auto rows = RowsByKey(out);
  // Group 1: one NULL input skipped by sum/count/avg, counted by count(*).
  const std::vector<Value>& g1 = rows.at(1);
  EXPECT_DOUBLE_EQ(g1[1].float64(), 10.0);
  EXPECT_EQ(g1[2].int64(), 1);
  EXPECT_EQ(g1[3].int64(), 2);
  EXPECT_DOUBLE_EQ(g1[4].float64(), 10.0);
  // Group 2.
  const std::vector<Value>& g2 = rows.at(2);
  EXPECT_DOUBLE_EQ(g2[1].float64(), 10.0);
  EXPECT_DOUBLE_EQ(g2[4].float64(), 5.0);
  EXPECT_DOUBLE_EQ(g2[5].float64(), 4.0);
  EXPECT_DOUBLE_EQ(g2[6].float64(), 6.0);
  // NULL is a group of its own (SQL GROUP BY semantics).
  const std::vector<Value>& gn = rows.at(-999);
  EXPECT_DOUBLE_EQ(gn[1].float64(), 5.0);
}

TEST(AggregateTest, AllNullGroupSumsToNull) {
  Table t(Schema({{"d", DataType::kInt64}, {"a", DataType::kFloat64}}));
  t.AppendRow({Value::Int64(1), Value::Null()});
  t.AppendRow({Value::Int64(1), Value::Null()});
  Table out = HashAggregate(t, {"d"},
                            {{AggFunc::kSum, Col("a"), "s"},
                             {AggFunc::kAvg, Col("a"), "avg"},
                             {AggFunc::kMin, Col("a"), "lo"},
                             {AggFunc::kCount, Col("a"), "c"}})
                  .value();
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_TRUE(out.column(1).IsNull(0));
  EXPECT_TRUE(out.column(2).IsNull(0));
  EXPECT_TRUE(out.column(3).IsNull(0));
  EXPECT_EQ(out.column(4).Int64At(0), 0);  // count of non-null is 0, not NULL
}

TEST(AggregateTest, IntSumStaysInt) {
  Table t(Schema({{"d", DataType::kInt64}, {"q", DataType::kInt64}}));
  t.AppendRow({Value::Int64(1), Value::Int64(3)});
  t.AppendRow({Value::Int64(1), Value::Int64(4)});
  Table out =
      HashAggregate(t, {"d"}, {{AggFunc::kSum, Col("q"), "s"}}).value();
  EXPECT_EQ(out.schema().column(1).type, DataType::kInt64);
  EXPECT_EQ(out.column(1).Int64At(0), 7);
}

TEST(AggregateTest, GlobalGroupOnEmptyInput) {
  Table t(Schema({{"a", DataType::kFloat64}}));
  Table out = HashAggregate(t, {},
                            {{AggFunc::kSum, Col("a"), "s"},
                             {AggFunc::kCountStar, nullptr, "n"}})
                  .value();
  ASSERT_EQ(out.num_rows(), 1u);  // SQL: global aggregate of empty set
  EXPECT_TRUE(out.column(0).IsNull(0));
  EXPECT_EQ(out.column(1).Int64At(0), 0);
}

TEST(AggregateTest, GroupedAggregateOnEmptyInputIsEmpty) {
  Table t(Schema({{"d", DataType::kInt64}, {"a", DataType::kFloat64}}));
  Table out =
      HashAggregate(t, {"d"}, {{AggFunc::kSum, Col("a"), "s"}}).value();
  EXPECT_EQ(out.num_rows(), 0u);
}

TEST(AggregateTest, ExpressionInput) {
  Table t = TestTable();
  // sum(CASE WHEN d = 1 THEN a ELSE 0 END) over all rows.
  ExprPtr cse = CaseWhen({{Eq(Col("d"), Lit(Value::Int64(1))), Col("a")}},
                         Lit(Value::Int64(0)));
  Table out = HashAggregate(t, {}, {{AggFunc::kSum, cse, "s"}}).value();
  EXPECT_DOUBLE_EQ(out.column(0).Float64At(0), 10.0);
}

TEST(AggregateTest, StringMinMax) {
  Table t(Schema({{"d", DataType::kInt64}, {"s", DataType::kString}}));
  t.AppendRow({Value::Int64(1), Value::String("pear")});
  t.AppendRow({Value::Int64(1), Value::String("apple")});
  t.AppendRow({Value::Int64(1), Value::Null()});
  Table out = HashAggregate(t, {"d"},
                            {{AggFunc::kMin, Col("s"), "lo"},
                             {AggFunc::kMax, Col("s"), "hi"}})
                  .value();
  EXPECT_EQ(out.column(1).StringAt(0), "apple");
  EXPECT_EQ(out.column(2).StringAt(0), "pear");
}

TEST(AggregateTest, SumOverStringRejected) {
  Table t(Schema({{"s", DataType::kString}}));
  EXPECT_EQ(HashAggregate(t, {}, {{AggFunc::kSum, Col("s"), "x"}})
                .status()
                .code(),
            StatusCode::kTypeMismatch);
}

TEST(AggregateTest, MissingInputExpressionRejected) {
  Table t = TestTable();
  EXPECT_FALSE(HashAggregate(t, {}, {{AggFunc::kSum, nullptr, "x"}}).ok());
}

TEST(AggregateTest, UnknownGroupColumnRejected) {
  Table t = TestTable();
  EXPECT_EQ(HashAggregate(t, {"zzz"}, {{AggFunc::kCountStar, nullptr, "n"}})
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(AggregateTest, MultipleGroupColumns) {
  Table t(Schema({{"x", DataType::kInt64},
                  {"y", DataType::kInt64},
                  {"a", DataType::kFloat64}}));
  t.AppendRow({Value::Int64(1), Value::Int64(1), Value::Float64(1)});
  t.AppendRow({Value::Int64(1), Value::Int64(2), Value::Float64(2)});
  t.AppendRow({Value::Int64(1), Value::Int64(1), Value::Float64(3)});
  Table out =
      HashAggregate(t, {"x", "y"}, {{AggFunc::kSum, Col("a"), "s"}}).value();
  EXPECT_EQ(out.num_rows(), 2u);
}

TEST(AggregateTest, AvgIsSumOverCount) {
  Table t = TestTable();
  Table out =
      HashAggregate(t, {}, {{AggFunc::kAvg, Col("a"), "m"}}).value();
  EXPECT_DOUBLE_EQ(out.column(0).Float64At(0), 25.0 / 4.0);
}

}  // namespace
}  // namespace pctagg
