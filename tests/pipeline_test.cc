// Property sweep for the fused push-based percentage pipelines: every query
// runs twice — ExecutionMode::kFused vs kMaterialized — and the results must
// be bit-identical (exact value bits, including FLOAT64), across dop {1,4},
// NULL keys, numeric and string/dictionary group keys, WHERE clauses,
// multi-term Vpct with lattice reuse, grand totals, and the horizontal
// variants with extras. Float measures stay under one morsel (<= 16384 rows)
// so the fold order is pinned at every dop; the large-input sweep uses an
// INT64 measure, whose double sums are exact regardless of morsel shape.
//
// The same suite doubles as the SIMD/scalar equivalence check: see the
// SimdVsScalar tests here plus the `pipeline_test_scalar` ctest variant
// (PCTAGG_DISABLE_SIMD=1) and the `fused_tsan` target in tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/cpu.h"
#include "common/rng.h"
#include "core/database.h"
#include "engine/pipeline.h"
#include "engine/table_ops.h"
#include "obs/trace.h"
#include "server/session.h"
#include "workload/generators.h"

namespace pctagg {
namespace {

// d1(4) x d2(5) x d3(3) with ~10% NULL d2 keys; INT64 measure in [1, 100]
// with ~8% NULLs. Integer measures keep double sums exact, so fused and
// materialized agree bitwise at every dop and morsel shape.
Table IntFact(size_t n, uint64_t seed) {
  Rng rng(seed);
  Table t(Schema({{"d1", DataType::kInt64},
                  {"d2", DataType::kInt64},
                  {"d3", DataType::kInt64},
                  {"a", DataType::kInt64}}));
  for (size_t i = 0; i < n; ++i) {
    Value d2 = rng.Uniform(10) == 0
                   ? Value::Null()
                   : Value::Int64(static_cast<int64_t>(rng.Uniform(5)));
    Value a = rng.Uniform(12) == 0
                  ? Value::Null()
                  : Value::Int64(static_cast<int64_t>(rng.Uniform(100)) + 1);
    t.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(4))), d2,
                 Value::Int64(static_cast<int64_t>(rng.Uniform(3))), a});
  }
  return t;
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

// Exact-equality comparison: same schema, same row count, and every cell
// matches bit-for-bit (doubles compared by bit pattern, so NaN payloads and
// signed zeros count too).
::testing::AssertionResult BitIdentical(const Table& a, const Table& b) {
  if (a.num_columns() != b.num_columns()) {
    return ::testing::AssertionFailure()
           << "column count " << a.num_columns() << " vs " << b.num_columns();
  }
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (a.schema().column(c).name != b.schema().column(c).name) {
      return ::testing::AssertionFailure()
             << "column " << c << " name " << a.schema().column(c).name
             << " vs " << b.schema().column(c).name;
    }
  }
  if (a.num_rows() != b.num_rows()) {
    return ::testing::AssertionFailure()
           << "row count " << a.num_rows() << " vs " << b.num_rows();
  }
  for (size_t c = 0; c < a.num_columns(); ++c) {
    for (size_t i = 0; i < a.num_rows(); ++i) {
      Value va = a.column(c).GetValue(i);
      Value vb = b.column(c).GetValue(i);
      if (va.is_null() != vb.is_null()) {
        return ::testing::AssertionFailure()
               << "null mismatch at (" << i << ", "
               << a.schema().column(c).name << "): " << va.ToString() << " vs "
               << vb.ToString();
      }
      if (va.is_null()) continue;
      bool same;
      if (va.is_float64() && vb.is_float64()) {
        same = DoubleBits(va.AsDouble()) == DoubleBits(vb.AsDouble());
      } else {
        same = !va.is_float64() && !vb.is_float64() &&
               va.ToString() == vb.ToString();
      }
      if (!same) {
        return ::testing::AssertionFailure()
               << "cell mismatch at (" << i << ", "
               << a.schema().column(c).name << "): " << va.ToString() << " vs "
               << vb.ToString();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// Runs `sql` under both execution modes at `dop` and checks bit-identity.
// `expect_fused` additionally asserts the fused pipeline really ran (the
// forced mode falls back silently on unsupported shapes, which would turn
// the comparison into materialized-vs-materialized and prove nothing).
void ExpectFusedMatchesMaterialized(const PctDatabase& db,
                                    const std::string& sql, size_t dop,
                                    bool expect_fused = true) {
  SCOPED_TRACE(sql + " @ dop=" + std::to_string(dop));
  obs::QueryTrace trace;
  QueryOptions fused;
  fused.execution = ExecutionMode::kFused;
  fused.degree_of_parallelism = dop;
  fused.trace = &trace;
  Result<Table> rf = db.Query(sql, fused);
  ASSERT_TRUE(rf.ok()) << rf.status().ToString();
  if (expect_fused) {
    EXPECT_EQ(trace.strategy, "fused-pipeline");
    EXPECT_EQ(trace.strategy_source, "forced");
  }

  QueryOptions mat;
  mat.execution = ExecutionMode::kMaterialized;
  mat.degree_of_parallelism = dop;
  Result<Table> rm = db.Query(sql, mat);
  ASSERT_TRUE(rm.ok()) << rm.status().ToString();
  EXPECT_TRUE(BitIdentical(*rf, *rm));
}

// --- Bit-identity sweep across dop {1, 4} -----------------------------------

class PipelineSweep : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable("f", IntFact(3000, 7)).ok());
    ASSERT_TRUE(db_.CreateTable("sales", GenerateSales(4000)).ok());
    ASSERT_TRUE(db_.CreateTable("salesn", GenerateSalesNamed(4000)).ok());
  }
  PctDatabase db_;
};

TEST_P(PipelineSweep, VpctSimple) {
  ExpectFusedMatchesMaterialized(
      db_, "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2",
      GetParam());
}

TEST_P(PipelineSweep, VpctSingleKeyDirectDictTier) {
  // One INT64 group column exercises the direct/inline key tier.
  ExpectFusedMatchesMaterialized(
      db_, "SELECT d1, Vpct(a) AS pct FROM f GROUP BY d1", GetParam());
}

TEST_P(PipelineSweep, VpctMultiTermLatticeAndGrandTotal) {
  // p1 reuses p2's finer level through the lattice; p3 is a grand total;
  // s rides along as a scalar extra. Three group columns force packed keys.
  ExpectFusedMatchesMaterialized(
      db_,
      "SELECT d1, d2, d3, Vpct(a BY d3) AS p1, Vpct(a BY d2, d3) AS p2, "
      "Vpct(a) AS p3, sum(a) AS s FROM f GROUP BY d1, d2, d3",
      GetParam());
}

TEST_P(PipelineSweep, VpctWithWhere) {
  ExpectFusedMatchesMaterialized(
      db_,
      "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f WHERE d3 = 1 "
      "GROUP BY d1, d2",
      GetParam());
}

TEST_P(PipelineSweep, VpctWhereMatchesNothing) {
  ExpectFusedMatchesMaterialized(
      db_,
      "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f WHERE d3 = 99 "
      "GROUP BY d1, d2",
      GetParam());
}

TEST_P(PipelineSweep, VpctFloatMeasureNumericKeys) {
  // FLOAT64 measure: 4000 rows fit in one morsel at every dop, pinning the
  // accumulation order, so even float sums are bit-identical.
  ExpectFusedMatchesMaterialized(
      db_,
      "SELECT state, city, Vpct(salesAmt BY state) AS pct FROM sales "
      "GROUP BY state, city",
      GetParam());
}

TEST_P(PipelineSweep, VpctStringDictionaryKeys) {
  ExpectFusedMatchesMaterialized(
      db_,
      "SELECT state, city, Vpct(salesAmt BY state) AS pct FROM salesn "
      "GROUP BY state, city",
      GetParam());
}

TEST_P(PipelineSweep, VpctOrderByAndHaving) {
  // ApplyTail (HAVING/ORDER BY/LIMIT) runs after both paths' result tables.
  ExpectFusedMatchesMaterialized(
      db_,
      "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2 "
      "HAVING pct >= 0.1 ORDER BY d1, d2 LIMIT 12",
      GetParam());
}

TEST_P(PipelineSweep, HpctSimple) {
  ExpectFusedMatchesMaterialized(
      db_, "SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1", GetParam());
}

TEST_P(PipelineSweep, HpctTwoByColumns) {
  ExpectFusedMatchesMaterialized(
      db_, "SELECT d1, Hpct(a BY d2, d3) FROM f GROUP BY d1", GetParam());
}

TEST_P(PipelineSweep, HpctGlobalNoGroupBy) {
  ExpectFusedMatchesMaterialized(db_, "SELECT Hpct(a BY d2) FROM f",
                                 GetParam());
}

TEST_P(PipelineSweep, HpctStringKeysWithWhere) {
  // Hpct(1 ...) makes the measure an exact integer count. A float measure
  // would not be bitwise here: the fused pipeline folds per-combination
  // partials from FVh while CASE-from-F folds raw rows, and float addition
  // is not associative (same boundary as cross-dop sums; docs/PARALLELISM.md).
  ExpectFusedMatchesMaterialized(
      db_,
      "SELECT state, Hpct(1 BY dweek) FROM salesn "
      "WHERE city <> 'city03' GROUP BY state",
      GetParam());
}

TEST_P(PipelineSweep, HaggSumWithDefaultZero) {
  ExpectFusedMatchesMaterialized(
      db_, "SELECT d1, sum(a BY d2 DEFAULT 0) FROM f GROUP BY d1", GetParam());
}

TEST_P(PipelineSweep, HaggCountMinMax) {
  ExpectFusedMatchesMaterialized(
      db_, "SELECT d1, count(a BY d2) FROM f GROUP BY d1", GetParam());
  ExpectFusedMatchesMaterialized(
      db_, "SELECT d1, max(a BY d3) FROM f GROUP BY d1", GetParam());
  ExpectFusedMatchesMaterialized(
      db_, "SELECT d1, min(a BY d3 DEFAULT 0) FROM f GROUP BY d1", GetParam());
}

TEST_P(PipelineSweep, HaggWithExtrasIncludingAvg) {
  // Plain aggregates alongside the horizontal term: the fused pipeline
  // decomposes avg into sum+count partials over FVh and must still match the
  // materialized plan's direct kAvg, including its NULL semantics.
  ExpectFusedMatchesMaterialized(
      db_,
      "SELECT d1, sum(a BY d2 DEFAULT 0), sum(a) AS s, count(*) AS n, "
      "avg(a) AS m FROM f GROUP BY d1",
      GetParam());
}

TEST_P(PipelineSweep, LargeInputIntMeasure) {
  // 50k rows split into several adaptive morsels at dop=4; the INT64 measure
  // keeps partial sums exact so the cross-shape comparison stays bitwise.
  PctDatabase big;
  ASSERT_TRUE(big.CreateTable("f", IntFact(50000, 11)).ok());
  ExpectFusedMatchesMaterialized(
      big,
      "SELECT d1, d2, Vpct(a BY d2) AS pct, sum(a) AS s FROM f "
      "GROUP BY d1, d2",
      GetParam());
  ExpectFusedMatchesMaterialized(
      big, "SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1", GetParam());
}

INSTANTIATE_TEST_SUITE_P(Dop, PipelineSweep, ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "dop" + std::to_string(info.param);
                         });

// --- SIMD vs scalar ----------------------------------------------------------

class PipelineSimd : public ::testing::Test {
 protected:
  void TearDown() override { internal::ResetSimdEnabledForTest(); }
};

TEST_F(PipelineSimd, FusedAggregateMatchesScalarFallback) {
  Table f = IntFact(20000, 23);
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFunc::kSum, Col("a"), "s"});
  aggs.push_back({AggFunc::kCount, Col("a"), "n"});
  ExprPtr where = Eq(Col("d3"), Lit(Value::Int64(1)));

  internal::SetSimdEnabledForTest(true);
  Result<Table> vec = FusedAggregate(f, where, {"d1", "d2"}, aggs, 4);
  ASSERT_TRUE(vec.ok()) << vec.status().ToString();

  internal::SetSimdEnabledForTest(false);
  Result<Table> scalar = FusedAggregate(f, where, {"d1", "d2"}, aggs, 4);
  ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();

  EXPECT_TRUE(BitIdentical(*vec, *scalar));
}

TEST_F(PipelineSimd, FusedAggregateMatchesFilterThenHashAggregate) {
  Table f = IntFact(20000, 29);
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFunc::kSum, Col("a"), "s"});
  aggs.push_back({AggFunc::kCountStar, nullptr, "n"});
  ExprPtr where = Gt(Col("a"), Lit(Value::Int64(40)));

  Result<Table> fused = FusedAggregate(f, where, {"d1", "d2", "d3"}, aggs, 1);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();

  Result<Table> filtered = Filter(f, where);
  ASSERT_TRUE(filtered.ok());
  Result<Table> reference =
      HashAggregate(*filtered, {"d1", "d2", "d3"}, aggs, 1);
  ASSERT_TRUE(reference.ok());

  EXPECT_TRUE(BitIdentical(*fused, *reference));
}

TEST_F(PipelineSimd, PercentDivideMatchesScalarLoop) {
  Rng rng(31);
  Column num(DataType::kFloat64);
  Column den(DataType::kFloat64);
  for (size_t i = 0; i < 10000; ++i) {
    if (rng.Uniform(20) == 0) {
      num.AppendNull();
    } else {
      num.AppendFloat64(rng.NextDouble() * 50.0);
    }
    // Mix of NULL, zero and ordinary divisors: all three must agree.
    uint64_t kind = rng.Uniform(10);
    if (kind == 0) {
      den.AppendNull();
    } else if (kind == 1) {
      den.AppendFloat64(0.0);
    } else {
      den.AppendFloat64(rng.NextDouble() * 100.0 + 1.0);
    }
  }

  internal::SetSimdEnabledForTest(true);
  Result<Column> vec = PercentDivideColumns(num, den);
  ASSERT_TRUE(vec.ok());

  internal::SetSimdEnabledForTest(false);
  Result<Column> scalar = PercentDivideColumns(num, den);
  ASSERT_TRUE(scalar.ok());

  ASSERT_EQ(vec->size(), scalar->size());
  for (size_t i = 0; i < vec->size(); ++i) {
    Value a = vec->GetValue(i);
    Value b = scalar->GetValue(i);
    ASSERT_EQ(a.is_null(), b.is_null()) << "row " << i;
    if (!a.is_null()) {
      EXPECT_EQ(DoubleBits(a.AsDouble()), DoubleBits(b.AsDouble()))
          << "row " << i;
    }
  }
}

TEST_F(PipelineSimd, EndToEndQueriesMatchWithSimdDisabled) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", IntFact(3000, 37)).ok());
  internal::SetSimdEnabledForTest(false);
  ExpectFusedMatchesMaterialized(
      db, "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2", 4);
  ExpectFusedMatchesMaterialized(
      db, "SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1", 4);
}

// --- Dispatch, trace and fallback -------------------------------------------

class PipelineDispatch : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable("f", IntFact(1200, 41)).ok());
  }
  PctDatabase db_;
};

TEST_F(PipelineDispatch, FusedTraceShowsPipelineNodesAndCandidates) {
  obs::QueryTrace trace;
  QueryOptions options;
  options.execution = ExecutionMode::kFused;
  options.trace = &trace;
  Result<Table> r = db_.Query(
      "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2", options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  EXPECT_EQ(trace.query_class, "vertical-percentage");
  EXPECT_EQ(trace.strategy, "fused-pipeline");
  EXPECT_EQ(trace.strategy_source, "forced");
  // All four materialized candidates plus the fused pipeline, exactly one
  // chosen — and the chosen one is the fused entry.
  ASSERT_EQ(trace.predicted_costs.size(), 5u);
  int chosen = 0;
  bool fused_chosen = false;
  for (const auto& c : trace.predicted_costs) {
    EXPECT_GT(c.cost, 0.0);
    if (c.chosen) {
      ++chosen;
      fused_chosen = c.name == "fused-pipeline";
    }
  }
  EXPECT_EQ(chosen, 1);
  EXPECT_TRUE(fused_chosen);
  // The plan tree is the fused node chain, with operator stats attached.
  ASSERT_FALSE(trace.root().children.empty());
  bool saw_fused_node = false;
  for (const auto& child : trace.root().children) {
    if (child->detail.find("fused") != std::string::npos) saw_fused_node = true;
  }
  EXPECT_TRUE(saw_fused_node);
  EXPECT_GT(trace.ActualRowOps(), 0u);
  EXPECT_DOUBLE_EQ(trace.actual_group_rows,
                   static_cast<double>(r->num_rows()));
}

TEST_F(PipelineDispatch, ExplainAnalyzeRendersFusedTree) {
  QueryOptions options;
  options.execution = ExecutionMode::kFused;
  Result<std::string> rendered = db_.ExplainAnalyze(
      "SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1", options);
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();
  EXPECT_NE(rendered->find("fused-pipeline"), std::string::npos);
  EXPECT_NE(rendered->find("fused"), std::string::npos);
  // Per-node operator stats made it into the render.
  EXPECT_NE(rendered->find("rows_in="), std::string::npos);
  EXPECT_NE(rendered->find("fused-pipeline="), std::string::npos);
}

TEST_F(PipelineDispatch, AdvisorPathListsFusedCandidateUnchosenOnSmallInput) {
  // 1200 rows is far below kFusedMinRows, so kAuto keeps the materialized
  // plan but the trace still prices the fused alternative.
  obs::QueryTrace trace;
  QueryOptions options;
  options.trace = &trace;
  ASSERT_TRUE(
      db_.Query("SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2",
                options)
          .ok());
  EXPECT_NE(trace.strategy, "fused-pipeline");
  ASSERT_EQ(trace.predicted_costs.size(), 5u);
  bool fused_listed = false;
  for (const auto& c : trace.predicted_costs) {
    if (c.name == "fused-pipeline") {
      fused_listed = true;
      EXPECT_FALSE(c.chosen);
    }
  }
  EXPECT_TRUE(fused_listed);
}

TEST_F(PipelineDispatch, AutoPicksFusedAboveRowThreshold) {
  PctDatabase big;
  ASSERT_TRUE(big.CreateTable("f", IntFact(70000, 43)).ok());
  obs::QueryTrace trace;
  QueryOptions options;
  options.trace = &trace;
  Result<Table> r = big.Query(
      "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2", options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(trace.strategy, "fused-pipeline");
  EXPECT_EQ(trace.strategy_source, "advisor");
}

TEST_F(PipelineDispatch, ForcedFusedFallsBackOnUnsupportedShapes) {
  // avg as the BY term has no distributive combine step over FVh partials;
  // a global horizontal with WHERE has no fused shape either. Both must run
  // and must not claim the fused strategy.
  for (const char* sql :
       {"SELECT d1, avg(a BY d2) FROM f GROUP BY d1",
        "SELECT Hpct(a BY d2) FROM f WHERE d3 = 1"}) {
    SCOPED_TRACE(sql);
    obs::QueryTrace trace;
    QueryOptions options;
    options.execution = ExecutionMode::kFused;
    options.trace = &trace;
    Result<Table> r = db_.Query(sql, options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_NE(trace.strategy, "fused-pipeline");
    // Still bit-identical to the materialized run (trivially, it is one).
    QueryOptions mat;
    mat.execution = ExecutionMode::kMaterialized;
    Result<Table> rm = db_.Query(sql, mat);
    ASSERT_TRUE(rm.ok());
    EXPECT_TRUE(BitIdentical(*r, *rm));
  }
}

TEST_F(PipelineDispatch, ForcedMaterializedStrategyIsNeverFused) {
  obs::QueryTrace trace;
  QueryOptions options;
  options.execution = ExecutionMode::kFused;  // loses to the explicit strategy
  options.vpct_strategy = VpctStrategy{};
  options.trace = &trace;
  ASSERT_TRUE(
      db_.Query("SELECT d1, Vpct(a BY d1) AS pct FROM f GROUP BY d1", options)
          .ok());
  EXPECT_NE(trace.strategy, "fused-pipeline");
  EXPECT_EQ(trace.strategy_source, "forced");
  // Forced-strategy traces keep exactly the four materialized candidates.
  EXPECT_EQ(trace.predicted_costs.size(), 4u);
}

TEST_F(PipelineDispatch, FusedSharesSummaryCacheWithMaterialized) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", IntFact(2000, 47)).ok());
  db.EnableSummaryCache(true);
  const std::string sql =
      "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2";

  // Materialized run populates the Fk-level summary; the fused run keys the
  // identical (table, group-by, rendered-aggs) entry and must hit it.
  QueryOptions mat;
  mat.execution = ExecutionMode::kMaterialized;
  Result<Table> rm = db.Query(sql, mat);
  ASSERT_TRUE(rm.ok()) << rm.status().ToString();
  size_t hits_before = db.summaries().hits();

  QueryOptions fused;
  fused.execution = ExecutionMode::kFused;
  Result<Table> rf = db.Query(sql, fused);
  ASSERT_TRUE(rf.ok()) << rf.status().ToString();
  EXPECT_GT(db.summaries().hits(), hits_before);
  EXPECT_TRUE(BitIdentical(*rf, *rm));

  // And a repeated fused run hits the entry it (or the first run) cached.
  size_t hits_mid = db.summaries().hits();
  ASSERT_TRUE(db.Query(sql, fused).ok());
  EXPECT_GT(db.summaries().hits(), hits_mid);
}

// --- SET exec through the server session ------------------------------------

TEST(PipelineSession, SetExecRoundTrips) {
  Session s(1, 0);
  Result<std::string> r = s.ApplySet("exec fused");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "exec = fused");
  EXPECT_EQ(s.query_options().execution, ExecutionMode::kFused);

  ASSERT_TRUE(s.ApplySet("exec materialized").ok());
  EXPECT_EQ(s.query_options().execution, ExecutionMode::kMaterialized);

  ASSERT_TRUE(s.ApplySet("exec default").ok());
  EXPECT_EQ(s.query_options().execution, ExecutionMode::kAuto);
  EXPECT_NE(s.Describe().find("exec = auto"), std::string::npos);

  EXPECT_FALSE(s.ApplySet("exec bogus").ok());
}

}  // namespace
}  // namespace pctagg
