// Unit tests for Schema, Table and Catalog.

#include <gtest/gtest.h>

#include "engine/catalog.h"
#include "engine/table.h"

namespace pctagg {
namespace {

Schema TwoColSchema() {
  return Schema({{"d", DataType::kInt64}, {"a", DataType::kFloat64}});
}

TEST(SchemaTest, FindColumnCaseInsensitive) {
  Schema s = TwoColSchema();
  EXPECT_EQ(s.FindColumn("D").value(), 0u);
  EXPECT_EQ(s.FindColumn("a").value(), 1u);
  EXPECT_EQ(s.FindColumn("x").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(s.HasColumn("A"));
  EXPECT_FALSE(s.HasColumn("x"));
}

TEST(SchemaTest, ToStringListsColumns) {
  EXPECT_EQ(TwoColSchema().ToString(), "d INT64, a FLOAT64");
}

TEST(SchemaTest, RenameColumn) {
  Schema s = TwoColSchema();
  s.RenameColumn(1, "pct");
  EXPECT_TRUE(s.HasColumn("pct"));
  EXPECT_FALSE(s.HasColumn("a"));
}

TEST(TableTest, AppendRowTypeChecked) {
  Table t(TwoColSchema());
  EXPECT_TRUE(t.AppendRow({Value::Int64(1), Value::Float64(0.5)}).ok());
  EXPECT_TRUE(t.AppendRow({Value::Null(), Value::Null()}).ok());
  EXPECT_FALSE(t.AppendRow({Value::Int64(1)}).ok());  // arity
  EXPECT_EQ(t.AppendRow({Value::String("x"), Value::Float64(0)}).code(),
            StatusCode::kTypeMismatch);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, GetRowRoundTrips) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value::Int64(7), Value::Null()}).ok());
  std::vector<Value> row = t.GetRow(0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], Value::Int64(7));
  EXPECT_TRUE(row[1].is_null());
}

TEST(TableTest, ColumnByName) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value::Int64(1), Value::Float64(2.0)}).ok());
  EXPECT_DOUBLE_EQ(t.ColumnByName("A").value()->Float64At(0), 2.0);
  EXPECT_FALSE(t.ColumnByName("zzz").ok());
}

TEST(TableTest, AppendRowFrom) {
  Table src(TwoColSchema());
  ASSERT_TRUE(src.AppendRow({Value::Int64(1), Value::Float64(2.0)}).ok());
  Table dst(TwoColSchema());
  dst.AppendRowFrom(src, 0);
  EXPECT_EQ(dst.num_rows(), 1u);
  EXPECT_EQ(dst.column(0).Int64At(0), 1);
}

TEST(TableTest, AddAndReplaceColumn) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value::Int64(1), Value::Float64(2.0)}).ok());
  Column extra(DataType::kInt64);
  extra.AppendInt64(9);
  EXPECT_TRUE(t.AddColumn({"x", DataType::kInt64}, extra).ok());
  EXPECT_EQ(t.num_columns(), 3u);
  // Length mismatch rejected.
  Column wrong(DataType::kInt64);
  EXPECT_FALSE(t.AddColumn({"y", DataType::kInt64}, wrong).ok());
  // Replace keeps arity and length.
  Column repl(DataType::kInt64);
  repl.AppendInt64(5);
  EXPECT_TRUE(t.ReplaceColumn(0, repl).ok());
  EXPECT_EQ(t.column(0).Int64At(0), 5);
  EXPECT_FALSE(t.ReplaceColumn(9, repl).ok());
}

TEST(TableTest, RenameColumn) {
  Table t(TwoColSchema());
  EXPECT_TRUE(t.RenameColumn(1, "pct").ok());
  EXPECT_TRUE(t.schema().HasColumn("pct"));
  EXPECT_FALSE(t.RenameColumn(7, "x").ok());
}

TEST(TableTest, KeyBytesOverColumnSubset) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value::Int64(1), Value::Float64(2.0)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Int64(1), Value::Float64(3.0)}).ok());
  std::string k0, k1;
  t.AppendKeyBytes(0, {0}, &k0);
  t.AppendKeyBytes(1, {0}, &k1);
  EXPECT_EQ(k0, k1);
  k0.clear();
  k1.clear();
  t.AppendKeyBytes(0, {0, 1}, &k0);
  t.AppendKeyBytes(1, {0, 1}, &k1);
  EXPECT_NE(k0, k1);
}

TEST(TableTest, ToStringRendersHeaderAndRows) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value::Int64(1), Value::Float64(0.5)}).ok());
  std::string s = t.ToString();
  EXPECT_NE(s.find("d"), std::string::npos);
  EXPECT_NE(s.find("0.5"), std::string::npos);
}

TEST(TableTest, ToStringTruncates) {
  Table t(TwoColSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int64(i), Value::Float64(i)}).ok());
  }
  std::string s = t.ToString(3);
  EXPECT_NE(s.find("7 more rows"), std::string::npos);
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog c;
  EXPECT_TRUE(c.CreateTable("t", Table(TwoColSchema())).ok());
  EXPECT_TRUE(c.HasTable("T"));  // case-insensitive
  EXPECT_TRUE(c.GetTable("t").ok());
  EXPECT_EQ(c.CreateTable("T", Table(TwoColSchema())).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(c.DropTable("t").ok());
  EXPECT_FALSE(c.HasTable("t"));
  EXPECT_EQ(c.DropTable("t").code(), StatusCode::kNotFound);
  EXPECT_EQ(c.GetTable("t").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, CreateOrReplace) {
  Catalog c;
  Table t1(TwoColSchema());
  ASSERT_TRUE(t1.AppendRow({Value::Int64(1), Value::Float64(1)}).ok());
  c.CreateOrReplaceTable("t", std::move(t1));
  EXPECT_EQ(c.GetTable("t").value()->num_rows(), 1u);
  c.CreateOrReplaceTable("t", Table(TwoColSchema()));
  EXPECT_EQ(c.GetTable("t").value()->num_rows(), 0u);
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable("b", Table(TwoColSchema())).ok());
  ASSERT_TRUE(c.CreateTable("A", Table(TwoColSchema())).ok());
  std::vector<std::string> names = c.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(CatalogTest, TempNamesUnique) {
  Catalog c;
  std::string n1 = c.TempName("Fk");
  ASSERT_TRUE(c.CreateTable(n1, Table(TwoColSchema())).ok());
  std::string n2 = c.TempName("Fk");
  EXPECT_NE(n1, n2);
}

}  // namespace
}  // namespace pctagg
