// Crash-recovery tests. Each scenario forks a child that runs real storage
// operations with PCTAGG_CRASH_AFTER=<point>:<n> set, so the child dies with
// _Exit(137) at a chosen instruction — the in-process stand-in for kill -9.
// The parent then recovers the data directory and asserts the durability
// contract: every acknowledged write under fsync=always survives, recovered
// tables are bit-identical (dictionary codes and NULL bitmaps included), and
// torn WAL/checkpoint tails never poison what came before them.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/database.h"
#include "storage/fault.h"
#include "storage/storage.h"

namespace pctagg {
namespace storage {
namespace {

class TempDir {
 public:
  TempDir() {
    std::string tmpl = "/tmp/pctagg_recovery_test_XXXXXX";
    path_ = ::mkdtemp(tmpl.data());
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string File(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

// Runs `body` in a forked child with PCTAGG_CRASH_AFTER=`spec` (empty = no
// fault) and returns the child's exit code. The child must not return from
// `body` unless the fault never fired; it exits 0 in that case.
int RunChild(const std::string& spec, const std::function<void()>& body) {
  pid_t pid = ::fork();
  if (pid == 0) {
    if (spec.empty()) {
      ::unsetenv("PCTAGG_CRASH_AFTER");
    } else {
      ::setenv("PCTAGG_CRASH_AFTER", spec.c_str(), 1);
    }
    // The parent has already latched a (disabled) crash spec by running its
    // own recovery; rearm from the fresh environment.
    ReloadCrashSpecForTesting();
    body();
    std::_Exit(0);
  }
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
}

Table RandomFact(uint64_t seed, size_t n) {
  static const char* kStates[] = {"ca", "or", "wa", "nv", "az"};
  Rng rng(seed);
  Table t(Schema({{"d", DataType::kInt64},
                  {"a", DataType::kFloat64},
                  {"s", DataType::kString}}));
  for (size_t i = 0; i < n; ++i) {
    Value d = rng.Uniform(10) == 0
                  ? Value::Null()
                  : Value::Int64(static_cast<int64_t>(rng.Uniform(6)));
    Value s = rng.Uniform(8) == 0
                  ? Value::Null()
                  : Value::String(kStates[rng.Uniform(5)]);
    t.AppendRow({d, Value::Float64(rng.NextDouble() * 10.0), s});
  }
  return t;
}

void ExpectTablesBitIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    const Column& ca = a.column(c);
    const Column& cb = b.column(c);
    ASSERT_EQ(ca.type(), cb.type());
    EXPECT_EQ(ca.validity(), cb.validity()) << "column " << c;
    switch (ca.type()) {
      case DataType::kInt64:
        EXPECT_EQ(ca.int64_data(), cb.int64_data()) << "column " << c;
        break;
      case DataType::kFloat64:
        for (size_t r = 0; r < a.num_rows(); ++r) {
          if (ca.IsNull(r)) continue;
          EXPECT_EQ(ca.Float64At(r), cb.Float64At(r))
              << "column " << c << " row " << r;
        }
        break;
      case DataType::kString:
        EXPECT_EQ(ca.codes(), cb.codes()) << "column " << c;
        ASSERT_EQ(ca.dict()->size(), cb.dict()->size());
        for (uint32_t i = 0; i < ca.dict()->size(); ++i) {
          EXPECT_EQ(ca.dict()->value(i), cb.dict()->value(i));
        }
        break;
    }
  }
}

// The child workload used by the WAL crash tests: attach storage with
// fsync=always, create the table, then append batches forever (the fault
// kills the process mid-flight).
void AppendForever(const std::string& data_dir, size_t dop) {
  PctDatabase db;
  StorageOptions opts;
  opts.data_dir = data_dir;
  opts.fsync = FsyncPolicy::kAlways;
  if (!db.OpenStorage(opts).ok()) std::_Exit(3);
  if (!db.CreateTable("f", RandomFact(1, 40)).ok()) std::_Exit(3);
  QueryOptions q;
  q.degree_of_parallelism = dop;
  for (uint64_t batch = 0;; ++batch) {
    Result<AppendOutcome> r =
        db.AppendRows("f", RandomFact(100 + batch, 25), q);
    if (!r.ok()) std::_Exit(3);
  }
}

// What the table must look like after `batches` fully-acknowledged appends.
Table ExpectedTable(size_t batches) {
  Table t = RandomFact(1, 40);
  for (uint64_t batch = 0; batch < batches; ++batch) {
    Table delta = RandomFact(100 + batch, 25);
    for (size_t r = 0; r < delta.num_rows(); ++r) {
      t.AppendRowFrom(delta, r);
    }
  }
  return t;
}

class RecoveryCrashTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RecoveryCrashTest, CrashAfterWalRecordKeepsAcknowledgedWrites) {
  const size_t dop = GetParam();
  TempDir dir;
  std::string data_dir = dir.File("db");
  // Die right after the 4th append record's bytes reach the OS (CreateTable
  // persists via segment, so WAL records are appends only): batches 1-3 were
  // acknowledged and batch 4 is complete-but-unacknowledged — recovery must
  // surface at least the first three and, with intact bytes, all four.
  int code = RunChild("wal_record:4",
                      [&] { AppendForever(data_dir, dop); });
  ASSERT_EQ(code, kCrashExitCode);

  PctDatabase db;
  StorageOptions opts;
  opts.data_dir = data_dir;
  ASSERT_TRUE(db.OpenStorage(opts).ok());
  const RecoveryStats& rec = db.storage()->recovery_stats();
  EXPECT_FALSE(rec.clean_shutdown);
  Result<const Table*> f =
      static_cast<const PctDatabase&>(db).catalog().GetTable("f");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  ExpectTablesBitIdentical(ExpectedTable(4), **f);
}

TEST_P(RecoveryCrashTest, CrashMidWalRecordDiscardsOnlyTornTail) {
  const size_t dop = GetParam();
  TempDir dir;
  std::string data_dir = dir.File("db");
  // Die with only the first half of the 5th record written: records 1-4 are
  // intact, record 5 is a torn tail recovery must discard.
  int code = RunChild("wal_partial:5",
                      [&] { AppendForever(data_dir, dop); });
  ASSERT_EQ(code, kCrashExitCode);

  PctDatabase db;
  StorageOptions opts;
  opts.data_dir = data_dir;
  ASSERT_TRUE(db.OpenStorage(opts).ok());
  const RecoveryStats& rec = db.storage()->recovery_stats();
  EXPECT_GT(rec.wal_discarded_bytes, 0u);
  EXPECT_FALSE(rec.wal_tail_reason.empty());
  Result<const Table*> f =
      static_cast<const PctDatabase&>(db).catalog().GetTable("f");
  ASSERT_TRUE(f.ok());
  ExpectTablesBitIdentical(ExpectedTable(4), **f);

  // The truncated WAL accepts new appends after recovery.
  ASSERT_TRUE(db.AppendRows("f", RandomFact(999, 10)).ok());
}

INSTANTIATE_TEST_SUITE_P(Dop, RecoveryCrashTest, ::testing::Values(1, 4));

TEST(CheckpointCrashTest, CrashDuringCheckpointSegmentWrite) {
  TempDir dir;
  std::string data_dir = dir.File("db");
  Table t1 = RandomFact(7, 60);
  Table t2 = RandomFact(8, 45);
  // Child: persist two tables via WAL appends, then checkpoint; die right
  // after the FIRST fresh segment file is written, before the manifest flip.
  int code = RunChild("segment:3", [&] {
    // Segments 1 and 2 are written by CreateTable's PersistTable; the
    // checkpoint's first fresh segment is the 3rd WriteSegment overall.
    PctDatabase db;
    StorageOptions opts;
    opts.data_dir = data_dir;
    opts.fsync = FsyncPolicy::kAlways;
    if (!db.OpenStorage(opts).ok()) std::_Exit(3);
    if (!db.CreateTable("t1", t1).ok()) std::_Exit(3);
    if (!db.CreateTable("t2", t2).ok()) std::_Exit(3);
    Result<storage::StorageManager::CheckpointStats> ck = db.Checkpoint();
    std::_Exit(ck.ok() ? 0 : 3);
  });
  ASSERT_EQ(code, kCrashExitCode);

  // The manifest still references the pre-checkpoint file set, which is
  // complete; the half-finished checkpoint left only unreferenced files.
  PctDatabase db;
  StorageOptions opts;
  opts.data_dir = data_dir;
  ASSERT_TRUE(db.OpenStorage(opts).ok());
  EXPECT_GT(db.storage()->recovery_stats().files_swept, 0u);
  const PctDatabase& cdb = db;
  Result<const Table*> r1 = cdb.catalog().GetTable("t1");
  Result<const Table*> r2 = cdb.catalog().GetTable("t2");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ExpectTablesBitIdentical(t1, **r1);
  ExpectTablesBitIdentical(t2, **r2);
}

TEST(CheckpointCrashTest, CrashBeforeManifestRenameKeepsOldManifest) {
  TempDir dir;
  std::string data_dir = dir.File("db");
  Table t1 = RandomFact(21, 50);
  // Child phase 1 (no fault): create the table and checkpoint cleanly.
  int code = RunChild("", [&] {
    PctDatabase db;
    StorageOptions opts;
    opts.data_dir = data_dir;
    opts.fsync = FsyncPolicy::kAlways;
    if (!db.OpenStorage(opts).ok()) std::_Exit(3);
    if (!db.CreateTable("t1", t1).ok()) std::_Exit(3);
    if (!db.Checkpoint().ok()) std::_Exit(3);
  });
  ASSERT_EQ(code, 0);
  // Child phase 2: append one batch, checkpoint again, but die after the new
  // manifest's TEMP file is written — before the rename publishes it.
  int code2 = RunChild("manifest_tmp:1", [&] {
    PctDatabase db;
    StorageOptions opts;
    opts.data_dir = data_dir;
    opts.fsync = FsyncPolicy::kAlways;
    if (!db.OpenStorage(opts).ok()) std::_Exit(3);
    if (!db.AppendRows("t1", RandomFact(22, 30)).ok()) std::_Exit(3);
    db.Checkpoint().ok();
    std::_Exit(0);
  });
  ASSERT_EQ(code2, kCrashExitCode);

  // The old manifest + old segment + the WAL record for the append are all
  // still live, so nothing acknowledged is lost.
  PctDatabase db;
  StorageOptions opts;
  opts.data_dir = data_dir;
  ASSERT_TRUE(db.OpenStorage(opts).ok());
  Table expected = t1;
  Table delta = RandomFact(22, 30);
  for (size_t r = 0; r < delta.num_rows(); ++r) {
    expected.AppendRowFrom(delta, r);
  }
  Result<const Table*> back =
      static_cast<const PctDatabase&>(db).catalog().GetTable("t1");
  ASSERT_TRUE(back.ok());
  ExpectTablesBitIdentical(expected, **back);
}

TEST(RecoveryPropertyTest, RecoveredStateIsBitIdenticalAcrossManyBatches) {
  // Property: for any prefix of acknowledged appends, kill -9 then recovery
  // yields exactly CreateTable + that prefix, bit-for-bit.
  for (size_t crash_after : {2u, 6u, 11u}) {
    TempDir dir;
    std::string data_dir = dir.File("db");
    std::string spec = "wal_record:" + std::to_string(crash_after);
    int code = RunChild(spec, [&] { AppendForever(data_dir, 1); });
    ASSERT_EQ(code, kCrashExitCode);

    PctDatabase db;
    StorageOptions opts;
    opts.data_dir = data_dir;
    ASSERT_TRUE(db.OpenStorage(opts).ok());
    Result<const Table*> f =
        static_cast<const PctDatabase&>(db).catalog().GetTable("f");
    ASSERT_TRUE(f.ok());
    ExpectTablesBitIdentical(ExpectedTable(crash_after), **f);
  }
}

TEST(RecoveryPropertyTest, RepeatedCrashRecoverCyclesConverge) {
  // Crash during append, recover, append more, crash again, ... The final
  // recovery must reflect every acknowledged batch from every generation.
  TempDir dir;
  std::string data_dir = dir.File("db");
  int code = RunChild("wal_record:2", [&] { AppendForever(data_dir, 1); });
  ASSERT_EQ(code, kCrashExitCode);

  Table expected = ExpectedTable(2);
  for (int cycle = 0; cycle < 3; ++cycle) {
    Table delta = RandomFact(500 + cycle, 15);
    int c = RunChild("wal_record:1", [&] {
      PctDatabase db;
      StorageOptions opts;
      opts.data_dir = data_dir;
      opts.fsync = FsyncPolicy::kAlways;
      if (!db.OpenStorage(opts).ok()) std::_Exit(3);
      if (!db.AppendRows("f", delta).ok()) std::_Exit(3);
      for (;;) {  // keep appending until the fault fires
        if (!db.AppendRows("f", delta).ok()) std::_Exit(3);
      }
    });
    ASSERT_EQ(c, kCrashExitCode);
    for (size_t r = 0; r < delta.num_rows(); ++r) {
      expected.AppendRowFrom(delta, r);
    }
  }
  PctDatabase db;
  StorageOptions opts;
  opts.data_dir = data_dir;
  ASSERT_TRUE(db.OpenStorage(opts).ok());
  Result<const Table*> f =
      static_cast<const PctDatabase&>(db).catalog().GetTable("f");
  ASSERT_TRUE(f.ok());
  ExpectTablesBitIdentical(expected, **f);
}

}  // namespace
}  // namespace storage
}  // namespace pctagg
