// Tests for the horizontal planner: the CASE/SPJ x direct/from-FV strategy
// grid of SIGMOD Table 5 and DMKD Table 3 must agree with each other and
// with a brute-force reference, for Hpct and for every horizontal aggregate.

#include "core/horizontal_planner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <tuple>

#include "common/rng.h"
#include "core/database.h"
#include "sql/parser.h"

namespace pctagg {
namespace {

// Positive measures (strategy equivalence holds unconditionally), plus NULL
// measures and one (group, combo) hole: group d1=2 never sees d2=3.
Table RandomFact(uint64_t seed, size_t n = 300) {
  Rng rng(seed);
  Table t(Schema({{"d1", DataType::kInt64},
                  {"d2", DataType::kInt64},
                  {"d3", DataType::kInt64},
                  {"a", DataType::kFloat64}}));
  for (size_t i = 0; i < n; ++i) {
    int64_t d1 = static_cast<int64_t>(rng.Uniform(3));
    int64_t d2 = static_cast<int64_t>(rng.Uniform(4));
    if (d1 == 2 && d2 == 3) d2 = 0;  // the hole
    int64_t d3 = static_cast<int64_t>(rng.Uniform(3));
    Value a = rng.Uniform(12) == 0
                  ? Value::Null()
                  : Value::Float64(std::round(rng.NextDouble() * 50.0) + 1.0);
    t.AppendRow(
        {Value::Int64(d1), Value::Int64(d2), Value::Int64(d3), a});
  }
  return t;
}

using Cells = std::map<std::pair<int64_t, std::string>, Value>;

// Flattens a horizontal result into (group, column-name) -> value.
Cells Flatten(const Table& t) {
  Cells out;
  const Column& d1 = *t.ColumnByName("d1").value();
  for (size_t i = 0; i < t.num_rows(); ++i) {
    for (size_t c = 1; c < t.num_columns(); ++c) {
      out[{d1.Int64At(i), t.schema().column(c).name}] =
          t.column(c).GetValue(i);
    }
  }
  return out;
}

void ExpectCellsEqual(const Cells& a, const Cells& b, const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (const auto& [key, v] : a) {
    ASSERT_TRUE(b.count(key)) << label << ": missing " << key.first << "/"
                              << key.second;
    const Value& w = b.at(key);
    ASSERT_EQ(v.is_null(), w.is_null())
        << label << " at " << key.first << "/" << key.second << ": "
        << v.ToString() << " vs " << w.ToString();
    if (!v.is_null()) {
      EXPECT_NEAR(v.AsDouble(), w.AsDouble(), 1e-9)
          << label << " at " << key.first << "/" << key.second;
    }
  }
}

// Strategy grid: (method, hash_dispatch).
class HorizontalStrategyGrid
    : public ::testing::TestWithParam<std::tuple<HorizontalMethod, bool>> {};

TEST_P(HorizontalStrategyGrid, HpctAgreesWithDefaultStrategy) {
  auto [method, dispatch] = GetParam();
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(42)).ok());
  std::string sql =
      "SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1";
  Table baseline = db.QueryHorizontal(sql, HorizontalStrategy{}).value();
  HorizontalStrategy strategy;
  strategy.method = method;
  strategy.hash_dispatch = dispatch;
  Result<Table> r = db.QueryHorizontal(sql, strategy);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectCellsEqual(Flatten(baseline), Flatten(r.value()),
                   HorizontalMethodName(method));
}

TEST_P(HorizontalStrategyGrid, HaggSumAgrees) {
  auto [method, dispatch] = GetParam();
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(43)).ok());
  std::string sql = "SELECT d1, sum(a BY d2) FROM f GROUP BY d1";
  Table baseline = db.QueryHorizontal(sql, HorizontalStrategy{}).value();
  HorizontalStrategy strategy;
  strategy.method = method;
  strategy.hash_dispatch = dispatch;
  Result<Table> r = db.QueryHorizontal(sql, strategy);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectCellsEqual(Flatten(baseline), Flatten(r.value()),
                   HorizontalMethodName(method));
}

TEST_P(HorizontalStrategyGrid, HaggCountAndMinMaxAgree) {
  auto [method, dispatch] = GetParam();
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(44)).ok());
  for (const char* sql :
       {"SELECT d1, count(a BY d2) FROM f GROUP BY d1",
        "SELECT d1, count(* BY d2) FROM f GROUP BY d1",
        "SELECT d1, min(a BY d2) FROM f GROUP BY d1",
        "SELECT d1, max(a BY d2) FROM f GROUP BY d1"}) {
    Table baseline = db.QueryHorizontal(sql, HorizontalStrategy{}).value();
    HorizontalStrategy strategy;
    strategy.method = method;
    strategy.hash_dispatch = dispatch;
    Result<Table> r = db.QueryHorizontal(sql, strategy);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    ExpectCellsEqual(Flatten(baseline), Flatten(r.value()), sql);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndDispatch, HorizontalStrategyGrid,
    ::testing::Combine(::testing::Values(HorizontalMethod::kCaseDirect,
                                         HorizontalMethod::kCaseFromFV,
                                         HorizontalMethod::kSpjDirect,
                                         HorizontalMethod::kSpjFromFV),
                       ::testing::Bool()));

TEST(HorizontalPlannerTest, HpctBruteForce) {
  PctDatabase db;
  Table f = RandomFact(7);
  // Brute force: per (d1, d2) sum / per d1 total.
  std::map<int64_t, double> totals;
  std::map<std::pair<int64_t, int64_t>, double> sums;
  const Column& d1 = *f.ColumnByName("d1").value();
  const Column& d2 = *f.ColumnByName("d2").value();
  const Column& a = *f.ColumnByName("a").value();
  for (size_t i = 0; i < f.num_rows(); ++i) {
    if (a.IsNull(i)) continue;
    totals[d1.Int64At(i)] += a.Float64At(i);
    sums[{d1.Int64At(i), d2.Int64At(i)}] += a.Float64At(i);
  }
  ASSERT_TRUE(db.CreateTable("f", std::move(f)).ok());
  Table t = db.Query("SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1").value();
  const Column& rd1 = *t.ColumnByName("d1").value();
  for (size_t i = 0; i < t.num_rows(); ++i) {
    int64_t g = rd1.Int64At(i);
    for (size_t c = 1; c < t.num_columns(); ++c) {
      const std::string& name = t.schema().column(c).name;  // "d2=K"
      int64_t k = std::stoll(name.substr(name.find('=') + 1));
      double expected = sums.count({g, k}) ? sums[{g, k}] / totals[g] : 0.0;
      ASSERT_FALSE(t.column(c).IsNull(i)) << g << "/" << name;
      EXPECT_NEAR(t.column(c).Float64At(i), expected, 1e-9) << g << "/" << name;
    }
  }
}

TEST(HorizontalPlannerTest, RowPercentagesSumToOne) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(11)).ok());
  Table t = db.Query("SELECT d1, Hpct(a BY d2, d3) FROM f GROUP BY d1").value();
  for (size_t i = 0; i < t.num_rows(); ++i) {
    double sum = 0;
    for (size_t c = 1; c < t.num_columns(); ++c) {
      ASSERT_FALSE(t.column(c).IsNull(i));
      sum += t.column(c).Float64At(i);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(HorizontalPlannerTest, MissingCellsNullForHaggZeroPctForHpct) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(13)).ok());
  // The hole: group d1=2 has no d2=3 rows.
  Table hagg = db.Query("SELECT d1, sum(a BY d2) FROM f GROUP BY d1 "
                        "ORDER BY d1")
                   .value();
  Table hpct = db.Query("SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1 "
                        "ORDER BY d1")
                   .value();
  const Column* hole_sum = hagg.ColumnByName("d2=3").value();
  const Column* hole_pct = hpct.ColumnByName("d2=3").value();
  EXPECT_TRUE(hole_sum->IsNull(2));
  ASSERT_FALSE(hole_pct->IsNull(2));
  EXPECT_DOUBLE_EQ(hole_pct->Float64At(2), 0.0);
}

TEST(HorizontalPlannerTest, DefaultZeroCoalesces) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(13)).ok());
  Table t = db.Query("SELECT d1, sum(a BY d2 DEFAULT 0) FROM f GROUP BY d1 "
                     "ORDER BY d1")
                .value();
  const Column* hole = t.ColumnByName("d2=3").value();
  ASSERT_FALSE(hole->IsNull(2));
  EXPECT_DOUBLE_EQ(hole->Float64At(2), 0.0);
}

TEST(HorizontalPlannerTest, BinaryCodingIdiom) {
  // DMKD Section 3.2: max(1 BY gender, marstatus DEFAULT 0) codes
  // categorical attributes as binary columns.
  PctDatabase db;
  Table f(Schema({{"empId", DataType::kInt64},
                  {"gender", DataType::kInt64},
                  {"marstatus", DataType::kInt64},
                  {"salary", DataType::kFloat64}}));
  f.AppendRow({Value::Int64(1), Value::Int64(0), Value::Int64(0),
               Value::Float64(30)});
  f.AppendRow({Value::Int64(2), Value::Int64(1), Value::Int64(0),
               Value::Float64(50)});
  f.AppendRow({Value::Int64(3), Value::Int64(1), Value::Int64(1),
               Value::Float64(40)});
  ASSERT_TRUE(db.CreateTable("employee", std::move(f)).ok());
  Table t = db.Query(
                  "SELECT empId, max(1 BY gender, marstatus DEFAULT 0), "
                  "sum(salary) AS salary FROM employee GROUP BY empId "
                  "ORDER BY empId")
                .value();
  // Each employee has exactly one 1 across the binary columns.
  for (size_t i = 0; i < t.num_rows(); ++i) {
    double ones = 0;
    for (size_t c = 1; c + 1 < t.num_columns(); ++c) {
      double v = t.column(c).NumericAt(i);
      EXPECT_TRUE(v == 0.0 || v == 1.0);
      ones += v;
    }
    EXPECT_DOUBLE_EQ(ones, 1.0);
  }
}

TEST(HorizontalPlannerTest, CountDistinct) {
  PctDatabase db;
  Table f(Schema({{"d1", DataType::kInt64},
                  {"d2", DataType::kInt64},
                  {"tid", DataType::kInt64}}));
  // d1=1, d2=1: transactions {10, 10, 20} -> 2 distinct.
  f.AppendRow({Value::Int64(1), Value::Int64(1), Value::Int64(10)});
  f.AppendRow({Value::Int64(1), Value::Int64(1), Value::Int64(10)});
  f.AppendRow({Value::Int64(1), Value::Int64(1), Value::Int64(20)});
  f.AppendRow({Value::Int64(1), Value::Int64(2), Value::Int64(30)});
  ASSERT_TRUE(db.CreateTable("f", std::move(f)).ok());
  Table t = db.Query("SELECT d1, count(DISTINCT tid BY d2) FROM f "
                     "GROUP BY d1")
                .value();
  EXPECT_EQ(t.ColumnByName("d2=1").value()->Int64At(0), 2);
  EXPECT_EQ(t.ColumnByName("d2=2").value()->Int64At(0), 1);
  // Indirect strategies are rejected for DISTINCT.
  HorizontalStrategy from_fv;
  from_fv.method = HorizontalMethod::kCaseFromFV;
  EXPECT_FALSE(db.QueryHorizontal("SELECT d1, count(DISTINCT tid BY d2) "
                                  "FROM f GROUP BY d1",
                                  from_fv)
                   .ok());
}

TEST(HorizontalPlannerTest, AvgWorksDirectAndViaAlgebraicDecomposition) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(3)).ok());
  std::string sql = "SELECT d1, avg(a BY d2) FROM f GROUP BY d1";
  Result<Table> direct = db.QueryHorizontal(sql, HorizontalStrategy{});
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  // avg is algebraic: the indirect strategies carry (sum, count) through FV
  // and divide at the end — identical results.
  for (HorizontalMethod method :
       {HorizontalMethod::kCaseFromFV, HorizontalMethod::kSpjFromFV}) {
    HorizontalStrategy from_fv;
    from_fv.method = method;
    Result<Table> indirect = db.QueryHorizontal(sql, from_fv);
    ASSERT_TRUE(indirect.ok()) << indirect.status().ToString();
    ExpectCellsEqual(Flatten(direct.value()), Flatten(indirect.value()),
                     HorizontalMethodName(method));
  }
  EXPECT_TRUE(db.Query(sql).ok());
}

TEST(HorizontalPlannerTest, MultipleHorizontalTermsArePrefixed) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(5)).ok());
  Table t = db.Query(
                  "SELECT d1, sum(a BY d2) AS s2, count(* BY d3) AS c3, "
                  "sum(a) AS total FROM f GROUP BY d1")
                .value();
  EXPECT_TRUE(t.schema().HasColumn("s2.d2=0"));
  EXPECT_TRUE(t.schema().HasColumn("c3.d3=0"));
  EXPECT_TRUE(t.schema().HasColumn("total"));
}

TEST(HorizontalPlannerTest, NoGroupByGivesSingleRow) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(6)).ok());
  for (HorizontalMethod method :
       {HorizontalMethod::kCaseDirect, HorizontalMethod::kSpjDirect}) {
    HorizontalStrategy strategy;
    strategy.method = method;
    Result<Table> r =
        db.QueryHorizontal("SELECT Hpct(a BY d2) FROM f", strategy);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r.value().num_rows(), 1u);
    double sum = 0;
    for (size_t c = 0; c < r.value().num_columns(); ++c) {
      sum += r.value().column(c).Float64At(0);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << HorizontalMethodName(method);
  }
}

TEST(HorizontalPlannerTest, MultiColumnBy) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(8)).ok());
  Table t =
      db.Query("SELECT d1, sum(a BY d2, d3) FROM f GROUP BY d1").value();
  // Cell names carry both columns.
  bool found = false;
  for (size_t c = 1; c < t.num_columns(); ++c) {
    if (t.schema().column(c).name.find("d2=") != std::string::npos &&
        t.schema().column(c).name.find("d3=") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(HorizontalPlannerTest, GeneratedSqlMentionsStrategy) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(9)).ok());
  SelectStatement stmt =
      ParseSelect("SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1").value();
  AnalyzedQuery q =
      Analyze(stmt, db.catalog().GetTable("f").value()->schema()).value();
  HorizontalStrategy spj;
  spj.method = HorizontalMethod::kSpjDirect;
  EXPECT_NE(PlanHorizontalQuery(q, spj).value().ToSql().find("SPJ"),
            std::string::npos);
  HorizontalStrategy cse;
  cse.method = HorizontalMethod::kCaseDirect;
  EXPECT_NE(PlanHorizontalQuery(q, cse).value().ToSql().find("CASE WHEN"),
            std::string::npos);
}

TEST(HorizontalPlannerTest, CleanupDropsTemporaries) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(10)).ok());
  size_t before = db.catalog().TableNames().size();
  for (HorizontalMethod method :
       {HorizontalMethod::kCaseDirect, HorizontalMethod::kCaseFromFV,
        HorizontalMethod::kSpjDirect, HorizontalMethod::kSpjFromFV}) {
    HorizontalStrategy strategy;
    strategy.method = method;
    ASSERT_TRUE(db.QueryHorizontal("SELECT d1, Hpct(a BY d2) FROM f "
                                   "GROUP BY d1",
                                   strategy)
                    .ok());
    EXPECT_EQ(db.catalog().TableNames().size(), before)
        << HorizontalMethodName(method);
  }
}

}  // namespace
}  // namespace pctagg
