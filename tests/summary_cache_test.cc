// Tests for the cross-query shared-summary cache (the paper's future-work
// "shared summaries" idea): repeated percentage queries on the same table
// reuse the Fk aggregate; results are identical; invalidation works.

#include "core/summary_cache.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/database.h"

namespace pctagg {
namespace {

Table RandomFact(uint64_t seed, size_t n = 500) {
  Rng rng(seed);
  Table t(Schema({{"d1", DataType::kInt64},
                  {"d2", DataType::kInt64},
                  {"a", DataType::kFloat64}}));
  for (size_t i = 0; i < n; ++i) {
    t.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(4))),
                 Value::Int64(static_cast<int64_t>(rng.Uniform(5))),
                 Value::Float64(1.0 + rng.NextDouble() * 9.0)});
  }
  return t;
}

constexpr char kSql[] =
    "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2 "
    "ORDER BY d1, d2";

TEST(SummaryCacheTest, KeyNormalizesCase) {
  EXPECT_EQ(SummaryCache::KeyFor("Sales", {"State", "City"}, "sum(a)"),
            SummaryCache::KeyFor("sales", {"state", "city"}, "sum(a)"));
  EXPECT_NE(SummaryCache::KeyFor("sales", {"state"}, "sum(a)"),
            SummaryCache::KeyFor("sales", {"state"}, "sum(b)"));
}

TEST(SummaryCacheTest, LookupInsertInvalidate) {
  SummaryCache cache;
  std::string key = SummaryCache::KeyFor("f", {"d1"}, "sum(a)");
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  Table t(Schema({{"d1", DataType::kInt64}}));
  t.AppendRow({Value::Int64(1)});
  cache.Insert(key, t);
  std::shared_ptr<const Table> hit = cache.Lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->num_rows(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  // Unrelated table invalidation keeps the entry.
  cache.InvalidateTable("other");
  EXPECT_EQ(cache.size(), 1u);
  cache.InvalidateTable("F");
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SummaryCacheTest, RepeatedQueriesHitTheCache) {
  PctDatabase db;
  db.EnableSummaryCache(true);
  ASSERT_TRUE(db.CreateTable("f", RandomFact(1)).ok());
  Table first = db.Query(kSql).value();
  EXPECT_EQ(db.summaries().hits(), 0u);
  EXPECT_EQ(db.summaries().size(), 1u);
  Table second = db.Query(kSql).value();
  EXPECT_GE(db.summaries().hits(), 1u);
  // Identical answers.
  ASSERT_EQ(first.num_rows(), second.num_rows());
  for (size_t i = 0; i < first.num_rows(); ++i) {
    EXPECT_EQ(first.GetRow(i), second.GetRow(i));
  }
}

TEST(SummaryCacheTest, DifferentStrategiesShareTheSummary) {
  PctDatabase db;
  db.EnableSummaryCache(true);
  ASSERT_TRUE(db.CreateTable("f", RandomFact(2)).ok());
  ASSERT_TRUE(db.QueryVpct(kSql, VpctStrategy{}).ok());
  VpctStrategy update_strategy;
  update_strategy.insert_result = false;
  Result<Table> r = db.QueryVpct(kSql, update_strategy);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(db.summaries().hits(), 1u);  // the UPDATE plan reused Fk
}

TEST(SummaryCacheTest, WhereClauseQueriesAreNotCached) {
  PctDatabase db;
  db.EnableSummaryCache(true);
  ASSERT_TRUE(db.CreateTable("f", RandomFact(3)).ok());
  std::string sql =
      "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f WHERE d1 <> 3 "
      "GROUP BY d1, d2";
  ASSERT_TRUE(db.Query(sql).ok());
  EXPECT_EQ(db.summaries().size(), 0u);  // filtered scans are not shared
}

TEST(SummaryCacheTest, ReplaceTableInvalidates) {
  PctDatabase db;
  db.EnableSummaryCache(true);
  ASSERT_TRUE(db.CreateTable("f", RandomFact(4)).ok());
  Table before = db.Query(kSql).value();
  EXPECT_EQ(db.summaries().size(), 1u);
  // Replace the base table with different content: the summary must go.
  db.ReplaceTable("f", RandomFact(5));
  EXPECT_EQ(db.summaries().size(), 0u);
  Table after = db.Query(kSql).value();
  // Different data, so at least one percentage differs.
  bool any_diff = before.num_rows() != after.num_rows();
  for (size_t i = 0; !any_diff && i < before.num_rows(); ++i) {
    any_diff = !(before.GetRow(i) == after.GetRow(i));
  }
  EXPECT_TRUE(any_diff);
}

// Regression test for the fill/invalidate race: a cache fill computed
// against the OLD contents of a base table must not land after the table was
// replaced. The planner snapshots the table's generation before scanning and
// passes it back to Insert; an intervening InvalidateTable bumps the
// generation so the stale insert is rejected. Without generations, this
// sequence (slow fill finishing after ReplaceTable) would poison the cache
// with pre-replacement percentages.
TEST(SummaryCacheTest, StaleInsertAfterInvalidationIsRejected) {
  SummaryCache cache;
  std::string key = SummaryCache::KeyFor("f", {"d1"}, "sum(a)");
  // A query thread starts a fill: snapshot the generation, then "scan".
  uint64_t generation = cache.GenerationFor("f");
  // Meanwhile a writer replaces the table.
  cache.InvalidateTable("f");
  // The fill finishes and tries to publish its (now stale) summary.
  Table t(Schema({{"d1", DataType::kInt64}}));
  ASSERT_TRUE(t.AppendRow({Value::Int64(1)}).ok());
  cache.Insert(key, t, generation);
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stale_inserts(), 1u);
  // A fill that re-snapshots after the invalidation publishes fine.
  uint64_t fresh = cache.GenerationFor("f");
  cache.Insert(key, t, fresh);
  EXPECT_NE(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.stale_inserts(), 1u);
  // Clear() also bumps generations for everything it evicts.
  uint64_t before_clear = cache.GenerationFor("f");
  cache.Clear();
  EXPECT_NE(cache.GenerationFor("f"), before_clear);
  cache.Insert(key, t, before_clear);
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.stale_inserts(), 2u);
}

TEST(SummaryCacheTest, DisabledByDefault) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(6)).ok());
  ASSERT_TRUE(db.Query(kSql).ok());
  EXPECT_EQ(db.summaries().size(), 0u);
}

}  // namespace
}  // namespace pctagg
