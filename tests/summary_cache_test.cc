// Tests for the cross-query shared-summary cache (the paper's future-work
// "shared summaries" idea): repeated percentage queries on the same table
// reuse the Fk aggregate; results are identical; invalidation works.

#include "core/summary_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/database.h"

namespace pctagg {
namespace {

Table RandomFact(uint64_t seed, size_t n = 500) {
  Rng rng(seed);
  Table t(Schema({{"d1", DataType::kInt64},
                  {"d2", DataType::kInt64},
                  {"a", DataType::kFloat64}}));
  for (size_t i = 0; i < n; ++i) {
    t.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(4))),
                 Value::Int64(static_cast<int64_t>(rng.Uniform(5))),
                 Value::Float64(1.0 + rng.NextDouble() * 9.0)});
  }
  return t;
}

constexpr char kSql[] =
    "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f GROUP BY d1, d2 "
    "ORDER BY d1, d2";

TEST(SummaryCacheTest, KeyNormalizesCase) {
  EXPECT_EQ(SummaryCache::KeyFor("Sales", {"State", "City"}, "sum(a)"),
            SummaryCache::KeyFor("sales", {"state", "city"}, "sum(a)"));
  EXPECT_NE(SummaryCache::KeyFor("sales", {"state"}, "sum(a)"),
            SummaryCache::KeyFor("sales", {"state"}, "sum(b)"));
}

TEST(SummaryCacheTest, LookupInsertInvalidate) {
  SummaryCache cache;
  std::string key = SummaryCache::KeyFor("f", {"d1"}, "sum(a)");
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  Table t(Schema({{"d1", DataType::kInt64}}));
  t.AppendRow({Value::Int64(1)});
  cache.Insert(key, t);
  std::shared_ptr<const Table> hit = cache.Lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->num_rows(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  // Unrelated table invalidation keeps the entry.
  cache.InvalidateTable("other");
  EXPECT_EQ(cache.size(), 1u);
  cache.InvalidateTable("F");
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SummaryCacheTest, RepeatedQueriesHitTheCache) {
  PctDatabase db;
  db.EnableSummaryCache(true);
  ASSERT_TRUE(db.CreateTable("f", RandomFact(1)).ok());
  Table first = db.Query(kSql).value();
  EXPECT_EQ(db.summaries().hits(), 0u);
  EXPECT_EQ(db.summaries().size(), 1u);
  Table second = db.Query(kSql).value();
  EXPECT_GE(db.summaries().hits(), 1u);
  // Identical answers.
  ASSERT_EQ(first.num_rows(), second.num_rows());
  for (size_t i = 0; i < first.num_rows(); ++i) {
    EXPECT_EQ(first.GetRow(i), second.GetRow(i));
  }
}

TEST(SummaryCacheTest, DifferentStrategiesShareTheSummary) {
  PctDatabase db;
  db.EnableSummaryCache(true);
  ASSERT_TRUE(db.CreateTable("f", RandomFact(2)).ok());
  ASSERT_TRUE(db.QueryVpct(kSql, VpctStrategy{}).ok());
  VpctStrategy update_strategy;
  update_strategy.insert_result = false;
  Result<Table> r = db.QueryVpct(kSql, update_strategy);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(db.summaries().hits(), 1u);  // the UPDATE plan reused Fk
}

TEST(SummaryCacheTest, WhereClauseQueriesAreNotCached) {
  PctDatabase db;
  db.EnableSummaryCache(true);
  ASSERT_TRUE(db.CreateTable("f", RandomFact(3)).ok());
  std::string sql =
      "SELECT d1, d2, Vpct(a BY d2) AS pct FROM f WHERE d1 <> 3 "
      "GROUP BY d1, d2";
  ASSERT_TRUE(db.Query(sql).ok());
  EXPECT_EQ(db.summaries().size(), 0u);  // filtered scans are not shared
}

TEST(SummaryCacheTest, ReplaceTableInvalidates) {
  PctDatabase db;
  db.EnableSummaryCache(true);
  ASSERT_TRUE(db.CreateTable("f", RandomFact(4)).ok());
  Table before = db.Query(kSql).value();
  EXPECT_EQ(db.summaries().size(), 1u);
  // Replace the base table with different content: the summary must go.
  db.ReplaceTable("f", RandomFact(5));
  EXPECT_EQ(db.summaries().size(), 0u);
  Table after = db.Query(kSql).value();
  // Different data, so at least one percentage differs.
  bool any_diff = before.num_rows() != after.num_rows();
  for (size_t i = 0; !any_diff && i < before.num_rows(); ++i) {
    any_diff = !(before.GetRow(i) == after.GetRow(i));
  }
  EXPECT_TRUE(any_diff);
}

// Regression test for the fill/invalidate race: a cache fill computed
// against the OLD contents of a base table must not land after the table was
// replaced. The planner snapshots the table's generation before scanning and
// passes it back to Insert; an intervening InvalidateTable bumps the
// generation so the stale insert is rejected. Without generations, this
// sequence (slow fill finishing after ReplaceTable) would poison the cache
// with pre-replacement percentages.
TEST(SummaryCacheTest, StaleInsertAfterInvalidationIsRejected) {
  SummaryCache cache;
  std::string key = SummaryCache::KeyFor("f", {"d1"}, "sum(a)");
  // A query thread starts a fill: snapshot the generation, then "scan".
  uint64_t generation = cache.GenerationFor("f");
  // Meanwhile a writer replaces the table.
  cache.InvalidateTable("f");
  // The fill finishes and tries to publish its (now stale) summary.
  Table t(Schema({{"d1", DataType::kInt64}}));
  ASSERT_TRUE(t.AppendRow({Value::Int64(1)}).ok());
  cache.Insert(key, t, generation);
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stale_inserts(), 1u);
  // A fill that re-snapshots after the invalidation publishes fine.
  uint64_t fresh = cache.GenerationFor("f");
  cache.Insert(key, t, fresh);
  EXPECT_NE(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.stale_inserts(), 1u);
  // Clear() also bumps generations for everything it evicts.
  uint64_t before_clear = cache.GenerationFor("f");
  cache.Clear();
  EXPECT_NE(cache.GenerationFor("f"), before_clear);
  cache.Insert(key, t, before_clear);
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.stale_inserts(), 2u);
}

// --- Byte-budget LRU ------------------------------------------------------

// A small one-column summary for budget tests; each instance costs the same
// approximate byte count, so eviction order is purely LRU.
Table SmallSummary(int64_t v) {
  Table t(Schema({{"d1", DataType::kInt64}}));
  EXPECT_TRUE(t.AppendRow({Value::Int64(v)}).ok());
  return t;
}

TEST(SummaryCacheTest, InsertTracksBytes) {
  SummaryCache cache;
  EXPECT_EQ(cache.bytes(), 0u);
  cache.Insert(SummaryCache::KeyFor("f", {"d1"}, "sum(a)"), SmallSummary(1));
  size_t one = cache.bytes();
  EXPECT_GT(one, 0u);
  cache.Insert(SummaryCache::KeyFor("f", {"d2"}, "sum(a)"), SmallSummary(2));
  EXPECT_EQ(cache.bytes(), 2 * one);
  // Replacing an entry keeps the byte count flat.
  cache.Insert(SummaryCache::KeyFor("f", {"d1"}, "sum(a)"), SmallSummary(3));
  EXPECT_EQ(cache.bytes(), 2 * one);
  cache.InvalidateTable("f");
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(SummaryCacheTest, EvictsLeastRecentlyUsedFirst) {
  SummaryCache cache;
  std::string k1 = SummaryCache::KeyFor("f", {"d1"}, "sum(a)");
  std::string k2 = SummaryCache::KeyFor("f", {"d2"}, "sum(a)");
  std::string k3 = SummaryCache::KeyFor("f", {"d3"}, "sum(a)");
  cache.Insert(k1, SmallSummary(1));
  size_t one = cache.bytes();
  cache.Insert(k2, SmallSummary(2));
  // Touch k1 so k2 is now the coldest entry.
  EXPECT_NE(cache.Lookup(k1), nullptr);
  // Budget for exactly two entries: inserting a third evicts the coldest.
  cache.set_capacity_bytes(2 * one);
  cache.Insert(k3, SmallSummary(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.Lookup(k1), nullptr);
  EXPECT_EQ(cache.Lookup(k2), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(k3), nullptr);
}

TEST(SummaryCacheTest, ShrinkingBudgetEvictsImmediately) {
  SummaryCache cache;
  for (int64_t i = 0; i < 4; ++i) {
    cache.Insert(SummaryCache::KeyFor("f", {"d" + std::to_string(i)}, "sum(a)"),
                 SmallSummary(i));
  }
  EXPECT_EQ(cache.size(), 4u);
  size_t one = cache.bytes() / 4;
  cache.set_capacity_bytes(one);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 3u);
  EXPECT_LE(cache.bytes(), one);
  // Budget 0 disables storage entirely.
  cache.set_capacity_bytes(0);
  EXPECT_EQ(cache.size(), 0u);
  cache.Insert(SummaryCache::KeyFor("f", {"d9"}, "sum(a)"), SmallSummary(9));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SummaryCacheTest, CacheBoundedUnderQueryLoad) {
  PctDatabase db;
  db.EnableSummaryCache(true);
  db.summaries().set_capacity_bytes(1);  // absurdly small: everything evicts
  ASSERT_TRUE(db.CreateTable("f", RandomFact(7)).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(db.Query(kSql).ok());
  EXPECT_EQ(db.summaries().size(), 0u);
  EXPECT_GE(db.summaries().evictions(), 1u);
  EXPECT_EQ(db.summaries().bytes(), 0u);
}

// --- Append protocol ------------------------------------------------------

SummaryRecipe SumRecipe() {
  return SummaryRecipe{{"d1"}, {{AggFunc::kSum, nullptr, "s"}}};
}

TEST(SummaryCacheTest, RecipeMergeability) {
  EXPECT_TRUE(RecipeIsMergeable(
      SummaryRecipe{{"d1"}, {{AggFunc::kSum, nullptr, "s"},
                             {AggFunc::kCount, nullptr, "c"},
                             {AggFunc::kMin, nullptr, "lo"},
                             {AggFunc::kMax, nullptr, "hi"},
                             {AggFunc::kCountStar, nullptr, "n"}}}));
  EXPECT_FALSE(RecipeIsMergeable(
      SummaryRecipe{{"d1"}, {{AggFunc::kAvg, nullptr, "m"}}}));
}

TEST(SummaryCacheTest, BeginAppendChecksOutMergeableEntries) {
  SummaryCache cache;
  std::string mergeable_key = SummaryCache::KeyFor("f", {"d1"}, "sum(a)");
  std::string plain_key = SummaryCache::KeyFor("f", {"d2"}, "avg(a)");
  std::string other_key = SummaryCache::KeyFor("g", {"d1"}, "sum(a)");
  SummaryRecipe recipe = SumRecipe();
  cache.Insert(mergeable_key, SmallSummary(1), cache.GenerationFor("f"),
               &recipe);
  cache.Insert(plain_key, SmallSummary(2));  // no recipe: not maintainable
  cache.Insert(other_key, SmallSummary(3), cache.GenerationFor("g"), &recipe);

  size_t dropped = 0;
  std::vector<SummaryCache::PendingMerge> pending =
      cache.BeginAppend("f", &dropped);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].key, mergeable_key);
  EXPECT_EQ(dropped, 1u);
  // Both f-derived entries are gone for the append window; g's survives.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Lookup(other_key), nullptr);

  // The merged summary lands because nothing intervened.
  EXPECT_TRUE(cache.CompleteMerge(pending[0], SmallSummary(4)));
  std::shared_ptr<const Table> merged = cache.Lookup(mergeable_key);
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->column(0).GetValue(0), Value::Int64(4));
}

TEST(SummaryCacheTest, CompleteMergeRejectedAfterLaterWrite) {
  SummaryCache cache;
  std::string key = SummaryCache::KeyFor("f", {"d1"}, "sum(a)");
  SummaryRecipe recipe = SumRecipe();
  cache.Insert(key, SmallSummary(1), cache.GenerationFor("f"), &recipe);
  std::vector<SummaryCache::PendingMerge> pending = cache.BeginAppend("f");
  ASSERT_EQ(pending.size(), 1u);
  // A second write (replace or another append) lands before the merge does:
  // the merged summary describes a superseded table state and must not stick.
  cache.InvalidateTable("f");
  EXPECT_FALSE(cache.CompleteMerge(pending[0], SmallSummary(2)));
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_GE(cache.stale_inserts(), 1u);
}

TEST(SummaryCacheTest, FresherFillWinsOverMerge) {
  SummaryCache cache;
  std::string key = SummaryCache::KeyFor("f", {"d1"}, "sum(a)");
  SummaryRecipe recipe = SumRecipe();
  cache.Insert(key, SmallSummary(1), cache.GenerationFor("f"), &recipe);
  std::vector<SummaryCache::PendingMerge> pending = cache.BeginAppend("f");
  ASSERT_EQ(pending.size(), 1u);
  // While the append merges, a query misses (the entry was checked out) and
  // recomputes from the already-extended table, inserting at the post-append
  // generation. That fill is as fresh as the merge; it must not be clobbered.
  cache.Insert(key, SmallSummary(42), cache.GenerationFor("f"), &recipe);
  EXPECT_FALSE(cache.CompleteMerge(pending[0], SmallSummary(2)));
  std::shared_ptr<const Table> kept = cache.Lookup(key);
  ASSERT_NE(kept, nullptr);
  EXPECT_EQ(kept->column(0).GetValue(0), Value::Int64(42));
}

// Extension of the fill/invalidate regression above to appends: a fill that
// scanned the table *before* rows were appended must not publish after the
// append, or the cache would serve pre-append aggregates for a post-append
// table. BeginAppend bumps the generation exactly like InvalidateTable.
TEST(SummaryCacheTest, StaleInsertDuringAppendIsRejected) {
  SummaryCache cache;
  std::string key = SummaryCache::KeyFor("f", {"d1"}, "sum(a)");
  // Query thread snapshots the generation and starts scanning.
  uint64_t generation = cache.GenerationFor("f");
  // Writer appends rows: generation moves, mergeable entries check out.
  std::vector<SummaryCache::PendingMerge> pending = cache.BeginAppend("f");
  EXPECT_TRUE(pending.empty());
  // The pre-append fill lands late and must be rejected.
  cache.Insert(key, SmallSummary(1), generation);
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.stale_inserts(), 1u);
  // A fill snapshotted after the append publishes fine.
  cache.Insert(key, SmallSummary(2), cache.GenerationFor("f"));
  EXPECT_NE(cache.Lookup(key), nullptr);
}

// The thundering-herd regression (single-flight): N identical concurrent
// misses must run ONE fill. Every non-owner blocks on the owner's in-flight
// fill and wakes with the entry — exactly 1 miss and N-1 hits, never N scans.
TEST(SummaryCacheTest, SingleFlightThunderingHerd) {
  SummaryCache cache;
  const std::string key = SummaryCache::KeyFor("f", {"d1"}, "sum(a)");
  constexpr size_t kThreads = 8;
  std::atomic<size_t> owners{0};
  std::atomic<size_t> got_table{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      std::shared_ptr<const Table> out;
      if (cache.LookupOrBeginFill(key, &out)) {
        owners.fetch_add(1);
        // The "scan": slow enough that the herd piles up behind it.
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        cache.Insert(key, SmallSummary(7));
        cache.FinishFill(key);
      } else {
        ASSERT_NE(out, nullptr);
        got_table.fetch_add(1);
      }
    });
  }
  go.store(true);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(owners.load(), 1u);
  EXPECT_EQ(got_table.load(), kThreads - 1);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), kThreads - 1);
  EXPECT_EQ(cache.stale_inserts(), 0u);
  // Every waiter that parked behind the owner counts as a shared fill.
  EXPECT_GE(cache.shared_fills(), 1u);
  EXPECT_LE(cache.shared_fills(), kThreads - 1);
}

// A fill owner that fails (FinishFill without Insert) must not strand its
// waiters: one of them claims ownership and runs its own fill.
TEST(SummaryCacheTest, FailedFillHandsOwnershipToWaiter) {
  SummaryCache cache;
  const std::string key = SummaryCache::KeyFor("f", {"d1"}, "sum(a)");
  std::shared_ptr<const Table> out;
  ASSERT_TRUE(cache.LookupOrBeginFill(key, &out));
  std::atomic<bool> waiter_owned{false};
  std::thread waiter([&] {
    std::shared_ptr<const Table> w;
    if (cache.LookupOrBeginFill(key, &w)) {
      waiter_owned.store(true);
      cache.Insert(key, SmallSummary(1));
      cache.FinishFill(key);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Owner errors out: release without inserting (what ScopedFill does on an
  // early return).
  cache.FinishFill(key);
  waiter.join();
  EXPECT_TRUE(waiter_owned.load());
  EXPECT_EQ(cache.misses(), 2u);  // both ran their own fill
  EXPECT_NE(cache.Lookup(key), nullptr);
}

TEST(SummaryCacheTest, DisabledByDefault) {
  PctDatabase db;
  ASSERT_TRUE(db.CreateTable("f", RandomFact(6)).ok());
  ASSERT_TRUE(db.Query(kSql).ok());
  EXPECT_EQ(db.summaries().size(), 0u);
}

}  // namespace
}  // namespace pctagg
