// Reproduces SIGMOD 2004 Table 6: "Comparing percentage aggregations versus
// OLAP extensions" — Vpct (best strategy) and Hpct (best strategy) against
// the ANSI SQL/OLAP window-function formulation
//   SELECT DISTINCT D1..Dk, sum(A) OVER (PARTITION BY D1..Dk) /
//                           sum(A) OVER (PARTITION BY D1..Dj) FROM F.
//
// Expected shape (paper): both proposed aggregations beat the OLAP baseline
// on every query, by up to an order of magnitude — the window formulation
// carries per-fact-row aggregates through the division and a DISTINCT over
// all n rows, instead of aggregating first.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using pctagg::HorizontalMethod;
using pctagg::HorizontalStrategy;
using pctagg::VpctStrategy;
using pctagg_bench::MustRunHorizontal;
using pctagg_bench::MustRunOlap;
using pctagg_bench::MustRunVpct;

struct QueryShape {
  const char* label;
  const char* vpct_sql;   // also the OLAP-baseline input
  const char* hpct_sql;   // same question in horizontal form
  bool on_sales;
  bool hpct_from_fv;      // the Table 5 winner for this shape
};

const QueryShape kQueries[] = {
    {"employee/gender",
     "SELECT gender, Vpct(salary) AS pct FROM employee GROUP BY gender",
     "SELECT Hpct(salary BY gender) FROM employee", false, false},
    {"employee/gender_by_marstatus",
     "SELECT gender, marstatus, Vpct(salary BY marstatus) AS pct "
     "FROM employee GROUP BY gender, marstatus",
     "SELECT gender, Hpct(salary BY marstatus) FROM employee "
     "GROUP BY gender",
     false, false},
    {"employee/gender_by_educat_marstatus",
     "SELECT gender, educat, marstatus, Vpct(salary BY educat, marstatus) "
     "AS pct FROM employee GROUP BY gender, educat, marstatus",
     "SELECT gender, Hpct(salary BY educat, marstatus) FROM employee "
     "GROUP BY gender",
     false, false},
    {"employee/gender_educat_by_age_marstatus",
     "SELECT gender, educat, age, marstatus, "
     "Vpct(salary BY age, marstatus) AS pct "
     "FROM employee GROUP BY gender, educat, age, marstatus",
     "SELECT gender, educat, Hpct(salary BY age, marstatus) FROM employee "
     "GROUP BY gender, educat",
     false, true},
    {"sales/dweek",
     "SELECT dweek, Vpct(salesAmt) AS pct FROM sales GROUP BY dweek",
     "SELECT Hpct(salesAmt BY dweek) FROM sales", true, false},
    {"sales/monthNo_by_dweek",
     "SELECT monthNo, dweek, Vpct(salesAmt BY dweek) AS pct FROM sales "
     "GROUP BY monthNo, dweek",
     "SELECT monthNo, Hpct(salesAmt BY dweek) FROM sales GROUP BY monthNo",
     true, false},
    {"sales/dept_by_dweek_monthNo",
     "SELECT dept, dweek, monthNo, Vpct(salesAmt BY dweek, monthNo) AS pct "
     "FROM sales GROUP BY dept, dweek, monthNo",
     "SELECT dept, Hpct(salesAmt BY dweek, monthNo) FROM sales "
     "GROUP BY dept",
     true, true},
    {"sales/dept_store_by_dweek_monthNo",
     "SELECT dept, store, dweek, monthNo, "
     "Vpct(salesAmt BY dweek, monthNo) AS pct "
     "FROM sales GROUP BY dept, store, dweek, monthNo",
     "SELECT dept, store, Hpct(salesAmt BY dweek, monthNo) FROM sales "
     "GROUP BY dept, store",
     true, true},
};

void Ensure(const QueryShape& q) {
  if (q.on_sales) {
    pctagg_bench::EnsureSales();
  } else {
    pctagg_bench::EnsureEmployee();
  }
}

void BM_Vpct(benchmark::State& state) {
  const QueryShape& q = kQueries[state.range(0)];
  Ensure(q);
  for (auto _ : state) {
    MustRunVpct(q.vpct_sql, VpctStrategy{});  // the Table 4 best strategy
  }
}

void BM_Hpct(benchmark::State& state) {
  const QueryShape& q = kQueries[state.range(0)];
  Ensure(q);
  // Like the paper, each side runs its *measured best* strategy. In this
  // engine Table 5 shows CASE-from-FV winning (or tying) on every shape —
  // the in-memory from-FV path pays no per-statement I/O — so it is the
  // best-strategy choice here, regardless of the per-shape winner flag the
  // paper's DBMS would pick.
  (void)q.hpct_from_fv;
  HorizontalStrategy strategy;
  strategy.method = HorizontalMethod::kCaseFromFV;
  strategy.hash_dispatch = false;  // the DBMS's O(N) CASE evaluation
  for (auto _ : state) {
    MustRunHorizontal(q.hpct_sql, strategy);
  }
}

void BM_Olap(benchmark::State& state) {
  const QueryShape& q = kQueries[state.range(0)];
  Ensure(q);
  for (auto _ : state) {
    MustRunOlap(q.vpct_sql);
  }
}

void RegisterAll() {
  for (size_t qi = 0; qi < std::size(kQueries); ++qi) {
    std::string base = std::string("Table6/") + kQueries[qi].label;
    benchmark::RegisterBenchmark((base + "/Vpct").c_str(), BM_Vpct)
        ->Args({static_cast<long>(qi)})
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark((base + "/Hpct").c_str(), BM_Hpct)
        ->Args({static_cast<long>(qi)})
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark((base + "/OLAP_extension").c_str(), BM_Olap)
        ->Args({static_cast<long>(qi)})
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "SIGMOD 2004 Table 6 reproduction: percentage aggregations vs ANSI "
      "OLAP window extensions.\n\n");
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
