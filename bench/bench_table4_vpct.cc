// Reproduces SIGMOD 2004 Table 4: "Query optimizations for Vpct()".
//
// Eight query shapes (four on employee, four on sales) x four strategy
// columns:
//   (1) best strategy  — matching indexes, INSERT, Fj from Fk
//   (2) index(Fj) != index(Fk) — mismatched indexes, join rebuilds its hash
//   (3) UPDATE FV instead of INSERT
//   (4) Fj computed from F (second scan) instead of from the partial Fk
//
// Expected shape (paper): (2) is marginally slower than (1); (3) hurts most
// when |FV| ~ |F| (the dept,store query); (4) costs a second full scan and
// matters most when |Fk| << |F|.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using pctagg::VpctStrategy;
using pctagg_bench::Db;
using pctagg_bench::MustRunVpct;

struct QueryShape {
  const char* label;
  const char* sql;
  bool on_sales;
};

const QueryShape kQueries[] = {
    {"employee/gender",
     "SELECT gender, Vpct(salary) AS pct FROM employee GROUP BY gender",
     false},
    {"employee/gender_by_marstatus",
     "SELECT gender, marstatus, Vpct(salary BY marstatus) AS pct "
     "FROM employee GROUP BY gender, marstatus",
     false},
    {"employee/gender_by_educat_marstatus",
     "SELECT gender, educat, marstatus, Vpct(salary BY educat, marstatus) "
     "AS pct FROM employee GROUP BY gender, educat, marstatus",
     false},
    {"employee/gender_educat_by_age_marstatus",
     "SELECT gender, educat, age, marstatus, "
     "Vpct(salary BY age, marstatus) AS pct "
     "FROM employee GROUP BY gender, educat, age, marstatus",
     false},
    {"sales/dweek",
     "SELECT dweek, Vpct(salesAmt) AS pct FROM sales GROUP BY dweek", true},
    {"sales/monthNo_by_dweek",
     "SELECT monthNo, dweek, Vpct(salesAmt BY dweek) AS pct FROM sales "
     "GROUP BY monthNo, dweek",
     true},
    {"sales/dept_by_dweek_monthNo",
     "SELECT dept, dweek, monthNo, Vpct(salesAmt BY dweek, monthNo) AS pct "
     "FROM sales GROUP BY dept, dweek, monthNo",
     true},
    {"sales/dept_store_by_dweek_monthNo",
     "SELECT dept, store, dweek, monthNo, "
     "Vpct(salesAmt BY dweek, monthNo) AS pct "
     "FROM sales GROUP BY dept, store, dweek, monthNo",
     true},
};

VpctStrategy StrategyForColumn(int column) {
  VpctStrategy s;  // column 1: the paper's best strategy
  if (column == 2) s.matching_indexes = false;
  if (column == 3) s.insert_result = false;
  if (column == 4) s.fj_from_fk = false;
  return s;
}

void BM_Table4(benchmark::State& state) {
  const QueryShape& q = kQueries[state.range(0)];
  VpctStrategy strategy = StrategyForColumn(static_cast<int>(state.range(1)));
  if (q.on_sales) {
    pctagg_bench::EnsureSales();
  } else {
    pctagg_bench::EnsureEmployee();
  }
  for (auto _ : state) {
    MustRunVpct(q.sql, strategy);
  }
}

const char* ColumnName(int column) {
  switch (column) {
    case 1:
      return "1_best";
    case 2:
      return "2_mismatched_index";
    case 3:
      return "3_update";
    case 4:
      return "4_fj_from_F";
  }
  return "?";
}

void RegisterAll() {
  for (size_t qi = 0; qi < std::size(kQueries); ++qi) {
    for (int column = 1; column <= 4; ++column) {
      std::string name = std::string("Table4/") + kQueries[qi].label + "/" +
                         ColumnName(column);
      benchmark::RegisterBenchmark(name.c_str(), BM_Table4)
          ->Args({static_cast<long>(qi), column})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "SIGMOD 2004 Table 4 reproduction: Vpct() optimization strategies.\n"
      "Columns: (1) best, (2) mismatched indexes, (3) UPDATE, "
      "(4) Fj from F.\n\n");
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
