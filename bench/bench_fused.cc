// bench_fused — measures the fused push-based percentage pipelines against
// the materialized multi-statement plans and reports per-DOP timings as JSON
// (BENCH_fused.json, also echoed to stdout).
//
// Two comparisons:
//   1. The fused scan->filter->aggregate kernel (FusedAggregate) versus the
//      materialized equivalent it replaces — Filter into an intermediate
//      table, then HashAggregate over the copy — on the same WHERE +
//      GROUP BY shape at DOP 1/2/4/8. The seed reference is the materialized
//      pair at DOP=1; "speedup_vs_seed" is materialized_ms / fused_ms,
//      measured on the same host in the same process, so the ratio transfers
//      across CI hardware. The DOP=1 row doubles as the regression guard
//      (dop1_regression_pct must stay <= 5: fusing must never lose to
//      materializing serially).
//   2. End-to-end Vpct / Hpct queries through PctDatabase::Query with
//      ExecutionMode::kFused vs kMaterialized at each DOP.
//
// Scaling soft-check: the fused kernel at DOP=4 must not be slower than its
// own DOP=1 by more than 15% — MorselPlan::Auto clamps workers to the cores
// the process can actually use, so extra DOP must degenerate to serial
// instead of thrashing (the committed dop=4-slower-than-dop=1 row this PR
// fixes). num_cores is recorded honestly: on a single-core host the DOP>1
// rows show the clamp, not scaling.
//
// Flags / environment:
//   --smoke                  tiny rows (TSan/CI smoke)
//   PCTAGG_FUSED_BENCH_ROWS  sales rows (default 1000000)
//   PCTAGG_FUSED_BENCH_REPS  repetitions, best-of (default 3)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/database.h"
#include "engine/aggregate.h"
#include "engine/pipeline.h"
#include "engine/table_ops.h"
#include "workload/generators.h"

namespace {

using pctagg::AggFunc;
using pctagg::AggSpec;
using pctagg::Col;
using pctagg::ExecutionMode;
using pctagg::ExprPtr;
using pctagg::Lit;
using pctagg::PctDatabase;
using pctagg::QueryOptions;
using pctagg::Result;
using pctagg::StrFormat;
using pctagg::Table;
using pctagg::Value;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  long long n = std::atoll(v);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

constexpr size_t kDops[] = {1, 2, 4, 8};

// The WHERE + GROUP BY shape both sides run: a ~75%-selective predicate
// (month <= 9) so the materialized path really pays for its intermediate
// copy, grouped at the paper's Fk granularity.
ExprPtr BenchWhere() { return pctagg::Le(Col("monthNo"), Lit(Value::Int64(9))); }

std::vector<AggSpec> BenchAggs() {
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFunc::kSum, Col("salesAmt"), "s"});
  return aggs;
}

// What the fused kernel replaces: Filter materializes the surviving rows
// into a new table (the planner's Fw temp), then HashAggregate scans the
// copy. Both operators are the engine's current morsel-parallel versions, so
// the delta measured here is fusion itself, not an old scalar loop.
double MaterializedAggregateMs(const Table& t, size_t dop, size_t* out_groups) {
  pctagg::Stopwatch timer;
  Result<Table> fw = pctagg::Filter(t, BenchWhere());
  if (!fw.ok()) {
    std::fprintf(stderr, "Filter failed: %s\n", fw.status().ToString().c_str());
    std::abort();
  }
  Result<Table> r =
      pctagg::HashAggregate(*fw, {"dweek", "monthNo"}, BenchAggs(), dop);
  double ms = timer.ElapsedMillis();
  if (!r.ok()) {
    std::fprintf(stderr, "HashAggregate failed: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  *out_groups = r.value().num_rows();
  return ms;
}

double FusedAggregateMs(const Table& t, size_t dop, size_t* out_groups) {
  pctagg::Stopwatch timer;
  Result<Table> r = pctagg::FusedAggregate(t, BenchWhere(), {"dweek", "monthNo"},
                                           BenchAggs(), dop);
  double ms = timer.ElapsedMillis();
  if (!r.ok()) {
    std::fprintf(stderr, "FusedAggregate failed: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  *out_groups = r.value().num_rows();
  return ms;
}

struct BenchQuery {
  const char* name;
  const char* sql;
  ExecutionMode mode;
};

constexpr BenchQuery kQueries[] = {
    {"vpct_fused",
     "SELECT monthNo, dweek, Vpct(salesAmt BY dweek) AS pct FROM sales "
     "GROUP BY monthNo, dweek",
     ExecutionMode::kFused},
    {"vpct_materialized",
     "SELECT monthNo, dweek, Vpct(salesAmt BY dweek) AS pct FROM sales "
     "GROUP BY monthNo, dweek",
     ExecutionMode::kMaterialized},
    {"hpct_fused",
     "SELECT store, Hpct(salesAmt BY dweek) FROM sales GROUP BY store",
     ExecutionMode::kFused},
    {"hpct_materialized",
     "SELECT store, Hpct(salesAmt BY dweek) FROM sales GROUP BY store",
     ExecutionMode::kMaterialized},
};

double QueryMs(const PctDatabase& db, const BenchQuery& q, size_t dop) {
  QueryOptions options;
  options.degree_of_parallelism = dop;
  options.execution = q.mode;
  pctagg::Stopwatch timer;
  Result<Table> r = db.Query(q.sql, options);
  double ms = timer.ElapsedMillis();
  if (!r.ok() || r.value().num_rows() == 0) {
    std::fprintf(stderr, "benchmark query failed: %s\n%s\n",
                 r.status().ToString().c_str(), q.sql);
    std::abort();
  }
  return ms;
}

template <typename Fn>
double BestOf(size_t reps, Fn&& fn) {
  double best = fn();
  for (size_t i = 1; i < reps; ++i) {
    double ms = fn();
    if (ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  size_t rows = EnvSize("PCTAGG_FUSED_BENCH_ROWS", smoke ? 20000 : 1000000);
  size_t reps = EnvSize("PCTAGG_FUSED_BENCH_REPS", smoke ? 1 : 3);
  size_t num_cores = std::thread::hardware_concurrency();

  std::fprintf(stderr, "[setup] generating sales n=%zu (cores=%zu)...\n", rows,
               num_cores);
  PctDatabase db;
  if (!db.CreateTable("sales", pctagg::GenerateSales(rows)).ok()) {
    std::fprintf(stderr, "table setup failed\n");
    return 1;
  }
  const Table& sales = *db.catalog().GetTable("sales").value();

  // --- Kernel comparison: materialized Filter+HashAggregate (dop=1) is the
  // seed reference; FusedAggregate runs at each DOP.
  size_t seed_groups = 0;
  double seed_ms = BestOf(
      reps, [&] { return MaterializedAggregateMs(sales, 1, &seed_groups); });
  std::fprintf(stderr, "[agg] materialized dop=1: %.2f ms (%zu groups)\n",
               seed_ms, seed_groups);

  std::string agg_json;
  double dop1_ms = 0;
  double dop4_ms = 0;
  for (size_t dop : kDops) {
    size_t groups = 0;
    double ms =
        BestOf(reps, [&] { return FusedAggregateMs(sales, dop, &groups); });
    if (groups != seed_groups) {
      std::fprintf(stderr, "group count mismatch: %zu vs %zu\n", groups,
                   seed_groups);
      return 1;
    }
    if (dop == 1) dop1_ms = ms;
    if (dop == 4) dop4_ms = ms;
    std::fprintf(stderr, "[agg] fused dop=%zu: %.2f ms (%.2fx vs materialized)\n",
                 dop, ms, seed_ms / ms);
    agg_json += StrFormat(
        "      {\"dop\": %zu, \"ms\": %.3f, \"speedup_vs_seed\": %.3f}%s\n",
        dop, ms, seed_ms / ms, dop == 8 ? "" : ",");
  }
  // Regression guard: fusing must not lose to materializing at DOP=1.
  double dop1_regression_pct = (dop1_ms - seed_ms) / seed_ms * 100.0;

  // --- End-to-end queries per DOP, fused vs materialized dispatch.
  std::string query_json;
  for (size_t qi = 0; qi < sizeof(kQueries) / sizeof(kQueries[0]); ++qi) {
    const BenchQuery& q = kQueries[qi];
    query_json += StrFormat("    {\"name\": \"%s\", \"dop_ms\": [", q.name);
    for (size_t di = 0; di < 4; ++di) {
      size_t dop = kDops[di];
      double ms = BestOf(reps, [&] { return QueryMs(db, q, dop); });
      std::fprintf(stderr, "[query] %s dop=%zu: %.2f ms\n", q.name, dop, ms);
      query_json += StrFormat("%.3f%s", ms, di == 3 ? "" : ", ");
    }
    query_json += StrFormat(
        "]}%s\n", qi + 1 == sizeof(kQueries) / sizeof(kQueries[0]) ? "" : ",");
  }

  std::string json = StrFormat(
      "{\n"
      "  \"benchmark\": \"fused_pipeline\",\n"
      "  \"rows\": %zu,\n"
      "  \"num_cores\": %zu,\n"
      "  \"repetitions\": %zu,\n"
      "  \"aggregate\": {\n"
      "    \"groups\": %zu,\n"
      "    \"seed_reference_ms\": %.3f,\n"
      "    \"dop1_regression_pct\": %.2f,\n"
      "    \"dop\": [\n%s    ]\n"
      "  },\n"
      "  \"queries\": [\n%s  ]\n"
      "}\n",
      rows, num_cores, reps, seed_groups, seed_ms, dop1_regression_pct,
      agg_json.c_str(), query_json.c_str());

  std::fputs(json.c_str(), stdout);
  FILE* f = std::fopen("BENCH_fused.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote BENCH_fused.json\n");
  }
  if (dop1_regression_pct > 5.0) {
    std::fprintf(stderr,
                 "FAIL: fused DOP=1 is %.2f%% slower than the materialized "
                 "pair (budget: 5%%)\n",
                 dop1_regression_pct);
    return 1;
  }
  if (dop4_ms > dop1_ms * 1.15) {
    // Sub-5ms timings on shared CI hosts are scheduler jitter, not signal:
    // at smoke sizes this is a warning, at full size a failure.
    bool hard = dop1_ms >= 5.0;
    std::fprintf(stderr,
                 "%s: fused DOP=4 (%.2f ms) is more than 15%% slower than "
                 "DOP=1 (%.2f ms) — the adaptive morsel clamp is not holding\n",
                 hard ? "FAIL" : "warning (timings below 5 ms, not enforced)",
                 dop4_ms, dop1_ms);
    if (hard) return 1;
  }
  return 0;
}
