// bench_persistence — cost of durability: append throughput with the WAL on
// (fsync always/batch/off) against the pure in-memory path, plus checkpoint
// and startup-recovery time on the same corpus; reports JSON
// (BENCH_persistence.json, also echoed to stdout).
//
// Workload: the paper's sales table at PCTAGG_PERSISTENCE_ROWS rows
// (default 1M). Each mode creates the base table, then appends kRounds
// batches of 1% each, timing only the appends:
//
//   in-memory   no storage attached — the seed reference the WAL path is
//               held against.
//   wal-batch   --data-dir with fsync=batch (8 MiB group commit): the
//               production default; the acceptance bar says its append
//               throughput stays within 25% of in-memory.
//   wal-always  fsync per record: the full-durability upper bound, reported
//               but not guarded (it is dominated by device sync latency).
//
// After the wal-batch run the same database is CHECKPOINTed (timed, with
// segment bytes) and the data directory is reopened twice: once recovering
// from segments only (post-checkpoint) and once replaying the whole append
// history from the WAL (no checkpoint), timing both recoveries.
//
// The JSON's "aggregate" section is shaped for scripts/bench_smoke.py:
// "seed_reference_ms" is the in-memory append total, the dop=1 row carries
// wal-batch with "speedup_vs_seed" = in_memory_ms / wal_batch_ms (≈ 1/(1+
// overhead)), and "dop1_regression_pct" is the WAL overhead in percent —
// over 25 the binary exits 1 (skipped in --smoke).
//
// Correctness rider: the table recovered from segments + WAL replay must be
// bit-identical (dictionary codes and NULL bitmaps included) to the
// in-memory table built from the same base + batches.
//
// Flags / environment:
//   --smoke                     tiny rows + 1 repetition
//   PCTAGG_PERSISTENCE_ROWS     sales rows (default 1000000)
//   PCTAGG_PERSISTENCE_REPS     repetitions, best-of (default 3)

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/database.h"
#include "engine/table_ops.h"
#include "storage/storage.h"
#include "workload/generators.h"

namespace {

using pctagg::PctDatabase;
using pctagg::Result;
using pctagg::StrFormat;
using pctagg::Table;
using pctagg::storage::FsyncPolicy;
using pctagg::storage::StorageOptions;

constexpr size_t kRounds = 30;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  long long n = std::atoll(v);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

std::string MakeTempDir() {
  std::string tmpl = "/tmp/pctagg_bench_persistence_XXXXXX";
  const char* dir = ::mkdtemp(tmpl.data());
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::abort();
  }
  return dir;
}

void Must(const pctagg::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::abort();
  }
}

// Appends every batch, returning total milliseconds spent in AppendRows.
double TimeAppends(PctDatabase* db, const std::vector<Table>& batches) {
  double total_ms = 0;
  for (const Table& batch : batches) {
    pctagg::Stopwatch timer;
    Result<pctagg::AppendOutcome> r = db->AppendRows("sales", batch);
    total_ms += timer.ElapsedMillis();
    Must(r.status(), "append");
  }
  return total_ms;
}

// One timed run of a persistence mode; policy ignored when durable==false.
double RunAppendMode(const Table& base, const std::vector<Table>& batches,
                     bool durable, FsyncPolicy policy) {
  PctDatabase db;
  std::string dir;
  if (durable) {
    dir = MakeTempDir();
    StorageOptions opts;
    opts.data_dir = dir + "/db";
    opts.fsync = policy;
    Must(db.OpenStorage(opts), "open storage");
  }
  Must(db.CreateTable("sales", base), "create table");
  double ms = TimeAppends(&db, batches);
  if (durable) std::filesystem::remove_all(dir);
  return ms;
}

template <typename Fn>
double BestOf(size_t reps, Fn&& fn) {
  double best = fn();
  for (size_t i = 1; i < reps; ++i) best = std::min(best, fn());
  return best;
}

bool TablesBitIdentical(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (size_t c = 0; c < a.num_columns(); ++c) {
    const pctagg::Column& ca = a.column(c);
    const pctagg::Column& cb = b.column(c);
    if (ca.type() != cb.type() || ca.validity() != cb.validity()) return false;
    switch (ca.type()) {
      case pctagg::DataType::kInt64:
        if (ca.int64_data() != cb.int64_data()) return false;
        break;
      case pctagg::DataType::kFloat64:
        for (size_t r = 0; r < a.num_rows(); ++r) {
          if (!ca.IsNull(r) && ca.Float64At(r) != cb.Float64At(r)) {
            return false;
          }
        }
        break;
      case pctagg::DataType::kString: {
        if (ca.codes() != cb.codes()) return false;
        if (ca.dict()->size() != cb.dict()->size()) return false;
        for (uint32_t i = 0; i < ca.dict()->size(); ++i) {
          if (ca.dict()->value(i) != cb.dict()->value(i)) return false;
        }
        break;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  size_t rows = EnvSize("PCTAGG_PERSISTENCE_ROWS", smoke ? 20000 : 1000000);
  size_t reps = EnvSize("PCTAGG_PERSISTENCE_REPS", smoke ? 1 : 3);

  std::fprintf(stderr,
               "[setup] generating sales n=%zu + %zu append batches of 1%%\n",
               rows, kRounds);
  Table base = pctagg::GenerateSales(rows);
  const size_t batch_rows = std::max<size_t>(rows / 100, 1);
  std::vector<Table> batches;
  batches.reserve(kRounds);
  for (size_t i = 0; i < kRounds; ++i) {
    batches.push_back(pctagg::GenerateSales(batch_rows, /*seed=*/977 + i));
  }
  const double appended_rows =
      static_cast<double>(batch_rows) * static_cast<double>(kRounds);

  struct Mode {
    const char* name;
    bool durable;
    FsyncPolicy policy;
    double ms = 0;
  };
  Mode modes[] = {
      {"in-memory", false, FsyncPolicy::kOff},
      {"wal-batch", true, FsyncPolicy::kBatch},
      {"wal-always", true, FsyncPolicy::kAlways},
      {"wal-off", true, FsyncPolicy::kOff},
  };
  std::string mode_json;
  for (size_t m = 0; m < sizeof(modes) / sizeof(modes[0]); ++m) {
    Mode& mode = modes[m];
    mode.ms = BestOf(reps, [&] {
      return RunAppendMode(base, batches, mode.durable, mode.policy);
    });
    std::fprintf(stderr,
                 "[%s] %zu appends in %.2f ms (%.0f rows/s)\n", mode.name,
                 kRounds, mode.ms, appended_rows / (mode.ms / 1000.0));
    mode_json += StrFormat(
        "    {\"name\": \"%s\", \"append_total_ms\": %.3f, "
        "\"rows_per_sec\": %.0f}%s\n",
        mode.name, mode.ms, appended_rows / (mode.ms / 1000.0),
        m + 1 == sizeof(modes) / sizeof(modes[0]) ? "" : ",");
  }
  const double in_memory_ms = modes[0].ms;
  const double wal_batch_ms = modes[1].ms;
  const double overhead_pct =
      (wal_batch_ms - in_memory_ms) / in_memory_ms * 100.0;
  std::fprintf(stderr,
               "[headline] wal-batch append overhead vs in-memory: %+.1f%%\n",
               overhead_pct);

  // --- Checkpoint + recovery timings on the full corpus --------------------
  std::string dir = MakeTempDir();
  double checkpoint_ms = 0, recovery_segment_ms = 0, recovery_wal_ms = 0;
  uint64_t checkpoint_bytes = 0, wal_replay_records = 0;
  bool identical = true;
  {
    // Build the durable database (batch fsync), then time CHECKPOINT.
    PctDatabase db;
    StorageOptions opts;
    opts.data_dir = dir + "/db";
    opts.fsync = FsyncPolicy::kBatch;
    Must(db.OpenStorage(opts), "open storage");
    Must(db.CreateTable("sales", base), "create table");
    TimeAppends(&db, batches);
    pctagg::Stopwatch timer;
    Result<pctagg::storage::StorageManager::CheckpointStats> ck =
        db.Checkpoint();
    Must(ck.status(), "checkpoint");
    checkpoint_ms = timer.ElapsedMillis();
    checkpoint_bytes = ck->bytes;
  }
  {
    // Recovery from segments only (the post-checkpoint shape).
    PctDatabase db;
    StorageOptions opts;
    opts.data_dir = dir + "/db";
    Must(db.OpenStorage(opts), "reopen (segments)");
    recovery_segment_ms = db.storage()->recovery_stats().recovery_ms;
    Table expected = base;
    for (const Table& b : batches) {
      Must(InsertInto(&expected, b), "build expected");
    }
    Result<const Table*> got =
        static_cast<const PctDatabase&>(db).catalog().GetTable("sales");
    Must(got.status(), "recovered table");
    identical = TablesBitIdentical(expected, **got);
  }
  std::filesystem::remove_all(dir);
  {
    // Recovery replaying the whole append history from the WAL.
    dir = MakeTempDir();
    {
      PctDatabase db;
      StorageOptions opts;
      opts.data_dir = dir + "/db";
      opts.fsync = FsyncPolicy::kOff;
      Must(db.OpenStorage(opts), "open storage");
      Must(db.CreateTable("sales", base), "create table");
      TimeAppends(&db, batches);
      Must(db.storage()->SyncWal(), "sync wal");
    }
    PctDatabase db;
    StorageOptions opts;
    opts.data_dir = dir + "/db";
    Must(db.OpenStorage(opts), "reopen (wal replay)");
    recovery_wal_ms = db.storage()->recovery_stats().recovery_ms;
    wal_replay_records = db.storage()->recovery_stats().wal_records_replayed;
    std::filesystem::remove_all(dir);
  }
  std::fprintf(stderr,
               "[persistence] checkpoint %.2f ms (%llu bytes), recovery "
               "segments %.2f ms, wal replay %.2f ms (%llu records)\n",
               checkpoint_ms, (unsigned long long)checkpoint_bytes,
               recovery_segment_ms, recovery_wal_ms,
               (unsigned long long)wal_replay_records);
  std::fprintf(stderr, "[check] recovered vs in-memory bit-identical: %s\n",
               identical ? "yes" : "NO");

  std::string json = StrFormat(
      "{\n"
      "  \"benchmark\": \"persistence\",\n"
      "  \"rows\": %zu,\n"
      "  \"batch_rows\": %zu,\n"
      "  \"rounds\": %zu,\n"
      "  \"repetitions\": %zu,\n"
      "  \"aggregate\": {\n"
      "    \"seed_reference_ms\": %.3f,\n"
      "    \"dop1_regression_pct\": %.2f,\n"
      "    \"dop\": [\n"
      "      {\"dop\": 1, \"ms\": %.3f, \"speedup_vs_seed\": %.3f}\n"
      "    ]\n"
      "  },\n"
      "  \"modes\": [\n%s  ],\n"
      "  \"persistence\": {\n"
      "    \"checkpoint_ms\": %.3f,\n"
      "    \"checkpoint_bytes\": %llu,\n"
      "    \"recovery_segment_ms\": %.3f,\n"
      "    \"recovery_wal_replay_ms\": %.3f,\n"
      "    \"wal_replay_records\": %llu\n"
      "  },\n"
      "  \"checks\": {\n"
      "    \"recovered_bit_identical\": %s\n"
      "  }\n"
      "}\n",
      rows, batch_rows, kRounds, reps, in_memory_ms, overhead_pct,
      wal_batch_ms, in_memory_ms / wal_batch_ms, mode_json.c_str(),
      checkpoint_ms, (unsigned long long)checkpoint_bytes,
      recovery_segment_ms, recovery_wal_ms,
      (unsigned long long)wal_replay_records, identical ? "true" : "false");

  std::fputs(json.c_str(), stdout);
  FILE* f = std::fopen("BENCH_persistence.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote BENCH_persistence.json\n");
  }
  if (!identical) return 1;
  if (!smoke && overhead_pct > 25.0) {
    std::fprintf(stderr,
                 "FAIL: wal-batch append overhead %.1f%% exceeds the 25%% "
                 "acceptance bar\n",
                 overhead_pct);
    return 1;
  }
  return 0;
}
