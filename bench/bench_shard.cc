// bench_shard — measures distributed scatter/gather percentage execution
// (docs/SHARDING.md) against the single-node fused scan and reports per-DOP
// timings as JSON (BENCH_shard.json, also echoed to stdout).
//
// Topology: 4 in-process worker servers on loopback ephemeral ports, one
// coordinator database sharding the transactionLine fact on cityId. The
// measure is INT64 itemQty so distributed results are bit-identical to the
// single-node answer (enforced below, any size).
//
// Two timings per DOP:
//   * modeled-concurrent — per-shard partial scans measured one at a time
//     (each shard as if alone on its own machine), plus the serialized
//     coordinator tail: response serde, gather merge, percentage assembly.
//     This is the number a real N-machine deployment sees and it is
//     host-core-count independent, so it is the CI guard
//     (docs/EXPERIMENTS.md).
//   * e2e — the same query through the real coordinator/server wire path
//     with all four shard scans in flight at once. On a many-core host this
//     approaches the model; on a 1-core CI runner the four workers time-slice
//     one core and e2e degenerates to the sum of the scans, which is why it
//     is reported but not guarded.
//
// The seed reference is the single-node fused scan at DOP=4 (the best plan
// the engine had before sharding). "speedup_vs_seed" is seed_ms /
// modeled_ms on the same host in the same process, so the ratio transfers
// across CI hardware. The DOP=1 row is the guard: 4-shard distributed
// execution must stay >= 2x faster than the single-node scan (enforced at
// full size; smoke sizes only warn).
//
// Flags / environment:
//   --smoke                  tiny rows (CI smoke)
//   PCTAGG_SHARD_BENCH_ROWS  transactionLine rows (default 4000000)
//   PCTAGG_SHARD_BENCH_REPS  repetitions, best-of (default 3)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/database.h"
#include "core/lattice_plan.h"
#include "dist/coordinator.h"
#include "engine/csv.h"
#include "engine/merge.h"
#include "engine/parallel.h"
#include "server/server.h"
#include "sql/analyzer.h"
#include "sql/parser.h"
#include "storage/serde.h"
#include "workload/generators.h"

namespace {

using pctagg::AnalyzedQuery;
using pctagg::FormatCsv;
using pctagg::PctDatabase;
using pctagg::PctServer;
using pctagg::QueryOptions;
using pctagg::Result;
using pctagg::ServerConfig;
using pctagg::Status;
using pctagg::StrFormat;
using pctagg::Table;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  long long n = std::atoll(v);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

constexpr size_t kShards = 4;
constexpr size_t kSeedDop = 4;
constexpr size_t kDops[] = {1, 2, 4, 8};

// Vpct over the INT64 quantity measure: shard partials are integer sums, so
// the merged-and-divided percentages match single-node bit for bit. The
// ORDER BY pins row order against the nondeterministic arrival order of the
// merge-on-arrival gather.
constexpr const char* kSql =
    "SELECT dayOfWeekNo, stateId, Vpct(itemQty BY stateId) AS pct, "
    "sum(itemQty) AS s FROM f GROUP BY dayOfWeekNo, stateId "
    "ORDER BY dayOfWeekNo, stateId";

template <typename Fn>
double BestOf(size_t reps, Fn&& fn) {
  double best = fn();
  for (size_t i = 1; i < reps; ++i) {
    double ms = fn();
    if (ms < best) best = ms;
  }
  return best;
}

[[noreturn]] void Die(const std::string& what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what.c_str(), status.ToString().c_str());
  std::abort();
}

double QueryMs(const PctDatabase& db, const std::string& sql, size_t dop,
               std::string* csv) {
  QueryOptions options;
  options.degree_of_parallelism = dop;
  pctagg::Stopwatch timer;
  Result<Table> r = db.Query(sql, options);
  double ms = timer.ElapsedMillis();
  if (!r.ok()) Die("query failed", r.status());
  if (csv != nullptr) *csv = FormatCsv(*r);
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  size_t rows = EnvSize("PCTAGG_SHARD_BENCH_ROWS", smoke ? 20000 : 4000000);
  size_t reps = EnvSize("PCTAGG_SHARD_BENCH_REPS", smoke ? 1 : 3);
  size_t num_cores = std::thread::hardware_concurrency();

  std::fprintf(stderr, "[setup] generating transactionLine n=%zu (cores=%zu)\n",
               rows, num_cores);
  Table fact = pctagg::GenerateTransactionLine(rows);

  // --- Seed reference: the single-node fused scan at DOP=4, the best plan
  // the engine had before sharding existed.
  PctDatabase single;
  if (!single.CreateTable("f", fact).ok()) {
    std::fprintf(stderr, "table setup failed\n");
    return 1;
  }
  std::string reference_csv;
  double seed_ms =
      BestOf(reps, [&] { return QueryMs(single, kSql, kSeedDop, &reference_csv); });
  std::fprintf(stderr, "[seed] single-node dop=%zu: %.2f ms\n", kSeedDop,
               seed_ms);

  // --- Real topology: 4 worker servers on loopback, coordinator shards on
  // cityId(20) and the full table crosses the wire via SHARDDATA.
  std::vector<std::unique_ptr<PctDatabase>> worker_dbs;
  std::vector<std::unique_ptr<PctServer>> workers;
  std::vector<pctagg::dist::WorkerEndpoint> endpoints;
  for (size_t i = 0; i < kShards; ++i) {
    worker_dbs.push_back(std::make_unique<PctDatabase>());
    ServerConfig wc;
    wc.port = 0;
    wc.worker_threads = 2;
    workers.push_back(std::make_unique<PctServer>(worker_dbs.back().get(), wc));
    if (!workers.back()->Start().ok()) {
      std::fprintf(stderr, "worker %zu failed to start\n", i);
      return 1;
    }
    endpoints.push_back({"127.0.0.1", workers.back()->port()});
  }
  PctDatabase coord_db;
  if (!coord_db.CreateTable("f", std::move(fact)).ok()) {
    std::fprintf(stderr, "coordinator table setup failed\n");
    return 1;
  }
  pctagg::dist::Coordinator coordinator(&coord_db, endpoints);
  pctagg::Stopwatch shard_timer;
  if (Status st = coordinator.ShardTable("f", "cityId"); !st.ok()) {
    Die("SHARD failed", st);
  }
  std::fprintf(stderr, "[shard] scattered %zu rows over %zu workers: %.2f ms\n",
               rows, kShards, shard_timer.ElapsedMillis());

  // e2e through the coordinator (all shards in flight at once).
  auto e2e_once = [&](std::string* csv) {
    QueryOptions options;
    options.degree_of_parallelism = kSeedDop;
    pctagg::Stopwatch timer;
    Result<std::optional<Table>> r =
        coordinator.MaybeExecute(kSql, options, nullptr);
    double ms = timer.ElapsedMillis();
    if (!r.ok()) Die("distributed query failed", r.status());
    if (!r->has_value()) {
      std::fprintf(stderr, "coordinator declined the sharded query\n");
      std::abort();
    }
    if (csv != nullptr) *csv = FormatCsv(**r);
    return ms;
  };
  std::string e2e_csv;
  double e2e_ms = BestOf(reps, [&] { return e2e_once(&e2e_csv); });
  bool e2e_identical = e2e_csv == reference_csv;
  std::fprintf(stderr, "[e2e] distributed dop=%zu: %.2f ms (%s)\n", kSeedDop,
               e2e_ms, e2e_identical ? "bit-identical" : "MISMATCH");

  // --- Modeled-concurrent per DOP: the same partial SQL the coordinator
  // scatters, run on each worker's database one at a time (no core
  // contention), plus the serialized coordinator tail measured directly.
  Result<pctagg::SelectStatement> stmt = pctagg::ParseSelect(kSql);
  if (!stmt.ok()) Die("parse failed", stmt.status());
  auto stub = coord_db.catalog().GetTable("f");
  if (!stub.ok()) Die("stub lookup failed", stub.status());
  Result<AnalyzedQuery> query = pctagg::Analyze(*stmt, (*stub)->schema());
  if (!query.ok()) Die("analyze failed", query.status());
  Result<pctagg::DistPartialPlan> plan =
      pctagg::BuildDistributedPartialPlan(*query);
  if (!plan.ok()) Die("partial plan failed", plan.status());

  std::string agg_json;
  double modeled_dop1_ms = 0;
  size_t result_rows = 0;
  uint64_t bytes_moved = 0;
  bool identical = e2e_identical;
  for (size_t dop : kDops) {
    double max_scan_ms = 0, serde_ms = 0;
    std::vector<Table> partials;
    uint64_t dop_bytes = 0;
    for (size_t i = 0; i < kShards; ++i) {
      QueryOptions options;
      options.degree_of_parallelism = dop;
      double scan_ms = BestOf(reps, [&] {
        pctagg::Stopwatch timer;
        Result<Table> partial = worker_dbs[i]->Query(plan->partial_sql, options);
        double ms = timer.ElapsedMillis();
        if (!partial.ok()) Die("partial scan failed", partial.status());
        if (partials.size() <= i) partials.push_back(std::move(*partial));
        return ms;
      });
      if (scan_ms > max_scan_ms) max_scan_ms = scan_ms;
      // Response serde both ways, as the wire path pays it: encode on the
      // worker, decode on the coordinator. Shards ship concurrently, so the
      // model charges the slowest one.
      pctagg::Stopwatch serde_timer;
      std::string bytes;
      pctagg::storage::EncodeTable(partials[i], &bytes);
      pctagg::storage::ByteReader reader(bytes);
      Result<Table> decoded = pctagg::storage::DecodeTable(&reader);
      if (!decoded.ok()) Die("serde failed", decoded.status());
      double one_serde = serde_timer.ElapsedMillis();
      if (one_serde > serde_ms) serde_ms = one_serde;
      dop_bytes += bytes.size();
      partials[i] = std::move(*decoded);
    }
    pctagg::Stopwatch merge_timer;
    Table merged = std::move(partials[0]);
    for (size_t i = 1; i < kShards; ++i) {
      Result<Table> m = pctagg::MergeSummaries(
          merged, partials[i], plan->finest_cols.size(), plan->combine);
      if (!m.ok()) Die("merge failed", m.status());
      merged = std::move(*m);
    }
    double merge_ms = merge_timer.ElapsedMillis();
    pctagg::Stopwatch assemble_timer;
    Table assembled;
    {
      pctagg::ScopedParallelism parallelism(dop);
      auto finest = std::make_shared<const Table>(std::move(merged));
      Result<Table> a = pctagg::AssembleFromPartials(*query, finest, nullptr,
                                                     pctagg::CurrentDop());
      if (!a.ok()) Die("assembly failed", a.status());
      Result<Table> tail = pctagg::ApplyQueryTail(std::move(*a), *query);
      if (!tail.ok()) Die("tail failed", tail.status());
      assembled = std::move(*tail);
    }
    double assemble_ms = assemble_timer.ElapsedMillis();
    if (FormatCsv(assembled) != reference_csv) identical = false;
    result_rows = assembled.num_rows();
    bytes_moved = dop_bytes;

    double modeled_ms = max_scan_ms + serde_ms + merge_ms + assemble_ms;
    if (dop == 1) modeled_dop1_ms = modeled_ms;
    std::fprintf(stderr,
                 "[model] dop=%zu: %.2f ms (scan %.2f + serde %.2f + merge "
                 "%.2f + assemble %.2f), %.2fx vs seed\n",
                 dop, modeled_ms, max_scan_ms, serde_ms, merge_ms, assemble_ms,
                 seed_ms / modeled_ms);
    agg_json += StrFormat(
        "      {\"dop\": %zu, \"ms\": %.3f, \"speedup_vs_seed\": %.3f, "
        "\"max_shard_scan_ms\": %.3f, \"serde_ms\": %.3f, "
        "\"merge_ms\": %.3f, \"assemble_ms\": %.3f}%s\n",
        dop, modeled_ms, seed_ms / modeled_ms, max_scan_ms, serde_ms, merge_ms,
        assemble_ms, dop == 8 ? "" : ",");
  }
  double dop1_speedup = seed_ms / modeled_dop1_ms;
  double dop1_regression_pct = (modeled_dop1_ms - seed_ms) / seed_ms * 100.0;

  std::string json = StrFormat(
      "{\n"
      "  \"benchmark\": \"shard\",\n"
      "  \"rows\": %zu,\n"
      "  \"num_cores\": %zu,\n"
      "  \"repetitions\": %zu,\n"
      "  \"shards\": %zu,\n"
      "  \"aggregate\": {\n"
      "    \"result_rows\": %zu,\n"
      "    \"seed_reference_ms\": %.3f,\n"
      "    \"dop1_speedup\": %.3f,\n"
      "    \"dop1_regression_pct\": %.2f,\n"
      "    \"dop\": [\n%s    ]\n"
      "  },\n"
      "  \"e2e\": {\n"
      "    \"dop\": %zu,\n"
      "    \"ms\": %.3f,\n"
      "    \"partial_bytes_moved\": %llu,\n"
      "    \"bit_identical\": %s\n"
      "  }\n"
      "}\n",
      rows, num_cores, reps, kShards, result_rows, seed_ms, dop1_speedup,
      dop1_regression_pct, agg_json.c_str(), kSeedDop, e2e_ms,
      static_cast<unsigned long long>(bytes_moved),
      identical ? "true" : "false");

  std::fputs(json.c_str(), stdout);
  FILE* f = std::fopen("BENCH_shard.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote BENCH_shard.json\n");
  }

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: distributed result differs from single-node on an "
                 "INT64 measure\n");
    return 1;
  }
  if (dop1_speedup < 2.0) {
    // At smoke sizes the fixed coordinator tail (serde, merge, assembly)
    // dominates the shrunken scans, so the 2x floor only holds once the
    // per-shard scan is the bottleneck: enforce at >=200k rows.
    bool hard = rows >= 200000;
    std::fprintf(stderr,
                 "%s: modeled 4-shard DOP=1 speedup %.2fx is below the 2x "
                 "floor (single-node %.2f ms, modeled %.2f ms)\n",
                 hard ? "FAIL" : "warning (smoke-size run, not enforced)",
                 dop1_speedup, seed_ms, modeled_dop1_ms);
    if (hard) return 1;
  }
  return 0;
}
