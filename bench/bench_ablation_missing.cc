// Ablation for the missing-rows discussion (SIGMOD Section 3.1): the paper
// argues pre-processing (inserting zero-measure rows into F) is preferred
// when many percentage queries reuse the expanded F, while post-processing
// (inserting rows into the small result) is cheaper for one-off queries and
// "allows faster processing".
//
// This benchmark uses a sparse sales table (a fraction of the store x dweek
// cells has no rows) and times: no handling, post-processing, and
// pre-processing, for a single Vpct query. Expected shape: post-processing
// adds little over the baseline (it touches the |FV|-sized result);
// pre-processing costs a copy-and-expand pass over all of F.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"

namespace {

using pctagg::MissingRowPolicy;
using pctagg::Value;
using pctagg::VpctStrategy;
using pctagg_bench::Db;
using pctagg_bench::MustRunVpct;
using pctagg_bench::Scaled;

// Sales where each store is closed on two pseudo-random weekdays: about 29%
// of the store x dweek cells are empty.
void EnsureSparseSales() {
  if (Db().catalog().HasTable("sparse_sales")) return;
  size_t n = Scaled(400000);
  std::fprintf(stderr, "[setup] generating sparse sales n=%zu...\n", n);
  pctagg::Rng rng(2718);
  pctagg::Table t(pctagg::Schema({{"store", pctagg::DataType::kInt64},
                                  {"dweek", pctagg::DataType::kInt64},
                                  {"salesAmt", pctagg::DataType::kFloat64}}));
  t.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t store = static_cast<int64_t>(rng.Uniform(100));
    int64_t dweek = static_cast<int64_t>(rng.Uniform(7) + 1);
    // Store s is closed on weekdays (s % 7)+1 and (s % 5)+1.
    if (dweek == store % 7 + 1 || dweek == store % 5 + 1) dweek = 7;
    t.AppendRow({Value::Int64(store), Value::Int64(dweek),
                 Value::Float64(1.0 + rng.NextDouble() * 9.0)});
  }
  Db().CreateTable("sparse_sales", std::move(t)).ok();
}

constexpr char kSql[] =
    "SELECT store, dweek, Vpct(salesAmt BY dweek) AS pct FROM sparse_sales "
    "GROUP BY store, dweek";

void BM_Missing(benchmark::State& state) {
  EnsureSparseSales();
  VpctStrategy strategy;
  switch (state.range(0)) {
    case 0:
      strategy.missing_rows = MissingRowPolicy::kNone;
      break;
    case 1:
      strategy.missing_rows = MissingRowPolicy::kPostProcess;
      break;
    case 2:
      strategy.missing_rows = MissingRowPolicy::kPreProcess;
      break;
  }
  for (auto _ : state) {
    MustRunVpct(kSql, strategy);
  }
}

void RegisterAll() {
  const char* labels[] = {"none", "post_process_result", "pre_process_F"};
  for (long mode = 0; mode < 3; ++mode) {
    std::string name =
        std::string("AblationMissingRows/") + labels[mode];
    benchmark::RegisterBenchmark(name.c_str(), BM_Missing)
        ->Args({mode})
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Ablation: missing-row handling — none vs post-processing (insert "
      "into FV) vs pre-processing (expand F).\n\n");
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
