// Ablation for the papers' CASE-evaluation discussion (SIGMOD Section 3.2,
// DMKD Section 3.5): the query optimizer "unnecessarily evaluates N boolean
// expressions" per row because it cannot see that the CASE conjunctions are
// disjoint; a hash table mapping each conjunction to its result column cuts
// the per-row cost from O(N) to O(1).
//
// This benchmark sweeps N (the number of result columns) on a fixed fact
// table and times the same Hpct query with the naive O(N) CASE evaluation
// versus the hash-dispatch pivot. Expected shape: naive grows linearly with
// N; dispatch is nearly flat.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using pctagg::HorizontalStrategy;
using pctagg_bench::MustRunHorizontal;

// (BY list, approximate N) pairs on the sales table: dweek(7),
// monthNo(12), dweek x monthNo (84), dept x dweek (700).
struct Sweep {
  const char* label;
  const char* sql;
};

const Sweep kSweeps[] = {
    {"N=7",
     "SELECT store, Hpct(salesAmt BY dweek) FROM sales GROUP BY store"},
    {"N=12",
     "SELECT store, Hpct(salesAmt BY monthNo) FROM sales GROUP BY store"},
    {"N=84",
     "SELECT store, Hpct(salesAmt BY dweek, monthNo) FROM sales "
     "GROUP BY store"},
    {"N=700",
     "SELECT store, Hpct(salesAmt BY dept, dweek) FROM sales "
     "GROUP BY store"},
};

void BM_Dispatch(benchmark::State& state) {
  pctagg_bench::EnsureSales();
  const Sweep& sweep = kSweeps[state.range(0)];
  HorizontalStrategy strategy;
  strategy.hash_dispatch = state.range(1) != 0;
  for (auto _ : state) {
    MustRunHorizontal(sweep.sql, strategy);
  }
}

void RegisterAll() {
  for (size_t si = 0; si < std::size(kSweeps); ++si) {
    for (int dispatch = 0; dispatch <= 1; ++dispatch) {
      std::string name = std::string("AblationCase/") + kSweeps[si].label +
                         (dispatch ? "/hash_dispatch_O1" : "/naive_case_ON");
      benchmark::RegisterBenchmark(name.c_str(), BM_Dispatch)
          ->Args({static_cast<long>(si), dispatch})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Ablation: O(N)-per-row CASE evaluation vs the proposed O(1) "
      "hash-dispatch, sweeping the number of result columns N.\n\n");
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
