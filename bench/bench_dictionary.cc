// bench_dictionary — measures dictionary-encoded string dimensions against
// the seed's string-keyed aggregation path and reports JSON
// (BENCH_dictionary.json, also echoed to stdout).
//
// Workload: GenerateSalesNamed — the paper's sales table with human-readable
// STRING dimensions (dweek "Mon".."Sun", monthNo "Jan".."Dec",
// store "store000".."store099", ...), same cardinalities and the same RNG
// draw sequence as the all-integer GenerateSales.
//
// Sections:
//   1. Fk-from-F kernel (GROUP BY dweek, monthNo; sum(salesAmt)): a faithful
//      bench-local copy of the *seed* string path — per row, materialized
//      std::string dimension values (the seed stored strings row-wise in the
//      column; the copies are built outside the timed region) encoded as
//      's' + u32 length + bytes, then unordered_map::emplace — versus the
//      current HashAggregate, where the 4-byte dictionary codes ride the
//      all-fixed-width packed-key batch path. DOP 1/2/4/8;
//      "speedup_vs_seed" = seed_ms / new_ms. The DOP=1 row is the headline:
//      it must be >= 2x or the binary exits 1.
//   2. The same comparison for GROUP BY store alone — a single small-domain
//      string key, which the aggregate executes with the direct
//      code-indexed-array kernel (no hash table at all).
//   3. End-to-end string-keyed Vpct / Hpct queries at DOP 1 and 4.
//   4. Correctness checks on a quantized copy of the data (salesAmt rounded
//      to whole numbers, so FLOAT64 sums are exact and order-independent):
//      the rendered result CSV must be bit-for-bit identical across DOP 1/4,
//      and the numeric result columns of the string-keyed queries must be
//      bit-for-bit identical to the integer-keyed (pre-dictionary-shaped)
//      runs of the same queries. The timing sections keep the continuous
//      measure; there, cross-DOP float sums agree only to rounding because
//      FP addition is not associative.
//
// Flags / environment:
//   --smoke                  tiny rows + 1 repetition
//   PCTAGG_DICT_BENCH_ROWS   sales rows (default 1000000)
//   PCTAGG_DICT_BENCH_REPS   repetitions, best-of (default 3)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/database.h"
#include "engine/aggregate.h"
#include "engine/csv.h"
#include "workload/generators.h"

namespace {

using pctagg::Column;
using pctagg::PctDatabase;
using pctagg::QueryOptions;
using pctagg::Result;
using pctagg::StrFormat;
using pctagg::Table;
using pctagg::Value;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  long long n = std::atoll(v);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

constexpr size_t kDops[] = {1, 2, 4, 8};

// One string dimension column as the seed stored it: a row-wise value array.
// Built outside the timed region — the seed paid this cost at load time.
struct SeedStringColumn {
  std::vector<std::string> values;
  std::vector<char> valid;
};

SeedStringColumn MaterializeSeedColumn(const Column& col) {
  SeedStringColumn out;
  const size_t n = col.size();
  out.values.resize(n);
  out.valid.resize(n, 1);
  for (size_t r = 0; r < n; ++r) {
    if (col.IsNull(r)) {
      out.valid[r] = 0;
    } else {
      out.values[r] = std::string(col.StringAt(r));
    }
  }
  return out;
}

// The seed's accumulator struct, as in bench_parallel_scaling.
struct SeedAggState {
  double sum = 0.0;
  int64_t isum = 0;
  int64_t count = 0;
  int64_t row_count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::string smin;
  std::string smax;
  bool saw_value = false;
};

// The seed's string group-assignment + accumulate loop: per row, each key
// column contributes 's' + u32 length + bytes (NULL -> '\0'), then
// unordered_map::emplace — one map-node allocation per input row in
// libstdc++, plus the composite key-string copy.
double SeedReferenceAggregateMs(
    const std::vector<const SeedStringColumn*>& keys, const Column& in,
    size_t* out_groups) {
  pctagg::Stopwatch timer;
  std::unordered_map<std::string, size_t> group_of;
  std::vector<SeedAggState> states;
  const size_t n = in.size();
  std::string key;
  for (size_t row = 0; row < n; ++row) {
    key.clear();
    for (const SeedStringColumn* kc : keys) {
      if (!kc->valid[row]) {
        key.push_back('\0');
        continue;
      }
      const std::string& s = kc->values[row];
      key.push_back('s');
      uint32_t len = static_cast<uint32_t>(s.size());
      char buf[sizeof(len)];
      std::memcpy(buf, &len, sizeof(len));
      key.append(buf, sizeof(len));
      key.append(s);
    }
    auto [it, inserted] = group_of.emplace(key, states.size());
    if (inserted) states.emplace_back();
    SeedAggState& st = states[it->second];
    st.row_count++;
    if (in.IsNull(row)) continue;
    st.count++;
    st.saw_value = true;
    double v = in.NumericAt(row);
    st.sum += v;
    if (v < st.min) st.min = v;
    if (v > st.max) st.max = v;
  }
  *out_groups = states.size();
  return timer.ElapsedMillis();
}

double NewAggregateMs(const Table& t, const std::vector<std::string>& keys,
                      size_t dop, size_t* out_groups) {
  pctagg::Stopwatch timer;
  Result<Table> r = pctagg::HashAggregate(
      t, keys, {{pctagg::AggFunc::kSum, pctagg::Col("salesAmt"), "s"}}, dop);
  double ms = timer.ElapsedMillis();
  if (!r.ok()) {
    std::fprintf(stderr, "HashAggregate failed: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  *out_groups = r.value().num_rows();
  return ms;
}

template <typename Fn>
double BestOf(size_t reps, Fn&& fn) {
  double best = fn();
  for (size_t i = 1; i < reps; ++i) {
    double ms = fn();
    if (ms < best) best = ms;
  }
  return best;
}

// One kernel comparison (seed loop vs HashAggregate across kDops), rendered
// as the JSON object bench_smoke.py reads: {groups, seed_reference_ms,
// dop1_regression_pct, dop: [{dop, ms, speedup_vs_seed}]}.
std::string KernelSection(const Table& t, const std::vector<std::string>& keys,
                          size_t reps, const char* label,
                          double* out_dop1_speedup) {
  std::vector<SeedStringColumn> materialized;
  materialized.reserve(keys.size());
  for (const std::string& k : keys) {
    materialized.push_back(
        MaterializeSeedColumn(*t.ColumnByName(k).value()));
  }
  std::vector<const SeedStringColumn*> key_ptrs;
  for (const SeedStringColumn& c : materialized) key_ptrs.push_back(&c);
  const Column& in = *t.ColumnByName("salesAmt").value();

  size_t seed_groups = 0;
  double seed_ms = BestOf(reps, [&] {
    return SeedReferenceAggregateMs(key_ptrs, in, &seed_groups);
  });
  std::fprintf(stderr, "[%s] seed reference: %.2f ms (%zu groups)\n", label,
               seed_ms, seed_groups);

  std::string dop_json;
  double dop1_ms = 0;
  for (size_t dop : kDops) {
    size_t groups = 0;
    double ms =
        BestOf(reps, [&] { return NewAggregateMs(t, keys, dop, &groups); });
    if (groups != seed_groups) {
      std::fprintf(stderr, "group count mismatch: %zu vs %zu\n", groups,
                   seed_groups);
      std::abort();
    }
    if (dop == 1) dop1_ms = ms;
    std::fprintf(stderr, "[%s] dop=%zu: %.2f ms (%.2fx vs seed)\n", label, dop,
                 ms, seed_ms / ms);
    dop_json += StrFormat(
        "      {\"dop\": %zu, \"ms\": %.3f, \"speedup_vs_seed\": %.3f}%s\n",
        dop, ms, seed_ms / ms, dop == 8 ? "" : ",");
  }
  *out_dop1_speedup = seed_ms / dop1_ms;
  return StrFormat(
      "{\n"
      "    \"groups\": %zu,\n"
      "    \"seed_reference_ms\": %.3f,\n"
      "    \"dop1_regression_pct\": %.2f,\n"
      "    \"dop\": [\n%s    ]\n"
      "  }",
      seed_groups, seed_ms, (dop1_ms - seed_ms) / seed_ms * 100.0,
      dop_json.c_str());
}

// salesAmt rounded to whole numbers: integer-valued doubles sum exactly, so
// aggregation results are bit-identical regardless of accumulation order.
Table Quantized(const Table& src) {
  Table t(src.schema());
  t.Reserve(src.num_rows());
  const size_t amt = src.schema().FindColumn("salesAmt").value();
  std::vector<Value> row;
  row.reserve(src.num_columns());
  for (size_t r = 0; r < src.num_rows(); ++r) {
    row.clear();
    for (size_t c = 0; c < src.num_columns(); ++c) {
      Value v = src.column(c).GetValue(r);
      if (c == amt && !v.is_null()) {
        v = Value::Float64(std::round(v.AsDouble()));
      }
      row.push_back(std::move(v));
    }
    t.AppendRow(row);
  }
  return t;
}

struct BenchQuery {
  const char* name;
  const char* sql;
  size_t key_cols;  // leading group-by columns, skipped by NumericCsv
  bool vertical;    // Vpct (else Hpct)
};

constexpr BenchQuery kQueries[] = {
    {"vpct",
     "SELECT monthNo, dweek, Vpct(salesAmt BY dweek) AS pct FROM sales "
     "GROUP BY monthNo, dweek",
     2, true},
    {"hpct", "SELECT store, Hpct(salesAmt BY dweek) FROM sales GROUP BY store",
     1, false},
};

// `forced` pins one strategy per query class. The identity checks compare
// runs across tables and DOPs, and the advisor may legitimately choose
// different (answer-equivalent, differently row-ordered) plans for
// dictionary-encoded vs integer dimensions; bit-for-bit comparison needs
// the same plan on both sides. Timing runs keep the advisor's choice.
Table RunQuery(const PctDatabase& db, const BenchQuery& q, size_t dop,
               bool forced) {
  QueryOptions options;
  options.degree_of_parallelism = dop;
  if (forced) {
    if (q.vertical) {
      options.vpct_strategy = pctagg::VpctStrategy{};
    } else {
      pctagg::HorizontalStrategy h;
      h.method = pctagg::HorizontalMethod::kCaseDirect;
      options.horizontal_strategy = h;
    }
  }
  Result<Table> r = db.Query(q.sql, options);
  if (!r.ok() || r.value().num_rows() == 0) {
    std::fprintf(stderr, "benchmark query failed: %s\n%s\n",
                 r.status().ToString().c_str(), q.sql);
    std::abort();
  }
  return std::move(r.value());
}

// Orders a result column for comparison. Pivot output columns are named
// "dweek=<value>" and sorted by value — numerically for the integer table
// (1..7), lexicographically for the string table ("Fri" < "Mon" < ...) —
// so the same logical cell sits at a different position on each side. Rank
// day names by their day number to line the two orders up.
size_t CanonicalRank(const std::string& name) {
  static const char* const kDweek[] = {"Mon", "Tue", "Wed", "Thu",
                                       "Fri", "Sat", "Sun"};
  const size_t eq = name.find('=');
  if (eq == std::string::npos) return 0;
  const std::string suffix = name.substr(eq + 1);
  for (size_t i = 0; i < 7; ++i) {
    if (suffix == kDweek[i]) return i + 1;
  }
  return static_cast<size_t>(std::atoll(suffix.c_str()));
}

// Renders only the columns after the group-by keys, in canonical pivot
// order, so string-keyed and integer-keyed runs of the same query compare
// positionally: both tables come from the same RNG draw sequence, so groups
// appear in the same first-seen order and row i denotes the same logical
// group in both.
std::string NumericCsv(const Table& t, size_t skip_cols) {
  std::vector<size_t> order;
  for (size_t c = skip_cols; c < t.num_columns(); ++c) order.push_back(c);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return CanonicalRank(t.schema().column(a).name) <
           CanonicalRank(t.schema().column(b).name);
  });
  std::string out;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t i = 0; i < order.size(); ++i) {
      if (i > 0) out.push_back(',');
      const Column& col = t.column(order[i]);
      if (col.IsNull(r)) {
        out += "NULL";
      } else if (col.type() == pctagg::DataType::kFloat64) {
        out += StrFormat("%.17g", col.Float64At(r));
      } else if (col.type() == pctagg::DataType::kInt64) {
        out += StrFormat("%lld", static_cast<long long>(col.Int64At(r)));
      } else {
        out += std::string(col.StringAt(r));
      }
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  size_t rows = EnvSize("PCTAGG_DICT_BENCH_ROWS", smoke ? 20000 : 1000000);
  size_t reps = EnvSize("PCTAGG_DICT_BENCH_REPS", smoke ? 1 : 3);
  size_t num_cores = std::thread::hardware_concurrency();

  std::fprintf(stderr, "[setup] generating named sales n=%zu (cores=%zu)...\n",
               rows, num_cores);
  PctDatabase db;
  if (!db.CreateTable("sales", pctagg::GenerateSalesNamed(rows)).ok()) {
    std::fprintf(stderr, "table setup failed\n");
    return 1;
  }
  const Table& sales = *db.catalog().GetTable("sales").value();

  // --- Kernel comparisons.
  double packed_speedup = 0, direct_speedup = 0;
  std::string agg_json = KernelSection(sales, {"dweek", "monthNo"}, reps,
                                       "agg", &packed_speedup);
  std::string direct_json =
      KernelSection(sales, {"store"}, reps, "direct", &direct_speedup);

  // --- End-to-end string-keyed queries at DOP 1 and 4.
  std::string query_json;
  for (size_t qi = 0; qi < sizeof(kQueries) / sizeof(kQueries[0]); ++qi) {
    const BenchQuery& q = kQueries[qi];
    query_json += StrFormat("    {\"name\": \"%s\", \"dop_ms\": [", q.name);
    for (size_t di = 0; di < 2; ++di) {
      size_t dop = di == 0 ? 1 : 4;
      double ms = BestOf(reps, [&] {
        pctagg::Stopwatch timer;
        Table r = RunQuery(db, q, dop, /*forced=*/false);
        return timer.ElapsedMillis();
      });
      std::fprintf(stderr, "[query] %s dop=%zu: %.2f ms\n", q.name, dop, ms);
      query_json += StrFormat("%.3f%s", ms, di == 1 ? "" : ", ");
    }
    query_json += StrFormat(
        "]}%s\n", qi + 1 == sizeof(kQueries) / sizeof(kQueries[0]) ? "" : ",");
  }

  // --- Correctness: quantized data, bit-for-bit CSV.
  std::fprintf(stderr, "[check] building quantized tables...\n");
  PctDatabase qnamed_db, qint_db;
  if (!qnamed_db.CreateTable("sales", Quantized(sales)).ok() ||
      !qint_db.CreateTable("sales", Quantized(pctagg::GenerateSales(rows)))
           .ok()) {
    std::fprintf(stderr, "quantized table setup failed\n");
    return 1;
  }
  bool cross_dop_ok = true;
  bool encoded_vs_unencoded_ok = true;
  for (const BenchQuery& q : kQueries) {
    const std::string csv1 =
        pctagg::FormatCsv(RunQuery(qnamed_db, q, 1, /*forced=*/true));
    const std::string csv4 =
        pctagg::FormatCsv(RunQuery(qnamed_db, q, 4, /*forced=*/true));
    if (csv1 != csv4) {
      std::fprintf(stderr, "[check] FAIL: %s differs between dop 1 and 4\n",
                   q.name);
      cross_dop_ok = false;
    }
    for (size_t dop : {size_t{1}, size_t{4}}) {
      const std::string enc = NumericCsv(
          RunQuery(qnamed_db, q, dop, /*forced=*/true), q.key_cols);
      const std::string unenc = NumericCsv(
          RunQuery(qint_db, q, dop, /*forced=*/true), q.key_cols);
      if (enc != unenc) {
        std::fprintf(stderr,
                     "[check] FAIL: %s dop=%zu string-keyed vs integer-keyed "
                     "numeric results differ\n",
                     q.name, dop);
        // Print the first differing line of each side for diagnosis.
        size_t line = 1, a = 0, b = 0;
        while (a < enc.size() && b < unenc.size()) {
          size_t ae = enc.find('\n', a), be = unenc.find('\n', b);
          std::string la = enc.substr(a, ae - a);
          std::string lb = unenc.substr(b, be - b);
          if (la != lb) {
            std::fprintf(stderr, "  line %zu:\n    string-keyed:  %s\n"
                         "    integer-keyed: %s\n", line, la.c_str(),
                         lb.c_str());
            break;
          }
          if (ae == std::string::npos || be == std::string::npos) break;
          a = ae + 1;
          b = be + 1;
          ++line;
        }
        encoded_vs_unencoded_ok = false;
      }
    }
  }
  std::fprintf(stderr, "[check] cross-dop identical: %s\n",
               cross_dop_ok ? "yes" : "NO");
  std::fprintf(stderr, "[check] encoded vs unencoded identical: %s\n",
               encoded_vs_unencoded_ok ? "yes" : "NO");

  std::string json = StrFormat(
      "{\n"
      "  \"benchmark\": \"dictionary\",\n"
      "  \"rows\": %zu,\n"
      "  \"num_cores\": %zu,\n"
      "  \"repetitions\": %zu,\n"
      "  \"aggregate\": %s,\n"
      "  \"direct_dict\": %s,\n"
      "  \"queries\": [\n%s  ],\n"
      "  \"checks\": {\n"
      "    \"cross_dop_csv_identical\": %s,\n"
      "    \"encoded_vs_unencoded_identical\": %s\n"
      "  }\n"
      "}\n",
      rows, num_cores, reps, agg_json.c_str(), direct_json.c_str(),
      query_json.c_str(), cross_dop_ok ? "true" : "false",
      encoded_vs_unencoded_ok ? "true" : "false");

  std::fputs(json.c_str(), stdout);
  FILE* f = std::fopen("BENCH_dictionary.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote BENCH_dictionary.json\n");
  }
  if (!cross_dop_ok || !encoded_vs_unencoded_ok) return 1;
  if (!smoke && packed_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: dop=1 speedup %.2fx is under the 2x acceptance bar\n",
                 packed_speedup);
    return 1;
  }
  return 0;
}
