// Ablation for the paper's future-work direction implemented here as
// VpctStrategy::lattice_reuse: with several Vpct terms using different BY
// lists, partial aggregations are computed bottom-up over the dimension
// lattice ("a set of percentage queries on the same table may be efficiently
// evaluated using shared summaries") — each coarser Fj aggregates the finest
// already-materialized Fj that subsumes it, instead of re-aggregating Fk.
//
// Expected shape: reuse wins more as the number of terms grows and as Fk
// gets large relative to the intermediate Fj levels.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using pctagg::VpctStrategy;
using pctagg_bench::MustRunVpct;

struct Sweep {
  const char* label;
  const char* sql;
};

// Nested groupings over sales: each later term's totals level is a subset
// of the previous one, the best case for bottom-up sharing.
const Sweep kSweeps[] = {
    {"m=2",
     "SELECT dept, store, dweek, monthNo, "
     "Vpct(salesAmt BY monthNo) AS p1, "
     "Vpct(salesAmt BY dweek, monthNo) AS p2 "
     "FROM sales GROUP BY dept, store, dweek, monthNo"},
    {"m=3",
     "SELECT dept, store, dweek, monthNo, "
     "Vpct(salesAmt BY monthNo) AS p1, "
     "Vpct(salesAmt BY dweek, monthNo) AS p2, "
     "Vpct(salesAmt BY store, dweek, monthNo) AS p3 "
     "FROM sales GROUP BY dept, store, dweek, monthNo"},
    {"m=4",
     "SELECT dept, store, dweek, monthNo, "
     "Vpct(salesAmt BY monthNo) AS p1, "
     "Vpct(salesAmt BY dweek, monthNo) AS p2, "
     "Vpct(salesAmt BY store, dweek, monthNo) AS p3, "
     "Vpct(salesAmt BY store, dweek) AS p4 "
     "FROM sales GROUP BY dept, store, dweek, monthNo"},
};

void BM_Lattice(benchmark::State& state) {
  pctagg_bench::EnsureSales();
  const Sweep& sweep = kSweeps[state.range(0)];
  VpctStrategy strategy;
  strategy.lattice_reuse = state.range(1) != 0;
  for (auto _ : state) {
    MustRunVpct(sweep.sql, strategy);
  }
}

void RegisterAll() {
  for (size_t si = 0; si < std::size(kSweeps); ++si) {
    for (int reuse = 0; reuse <= 1; ++reuse) {
      std::string name = std::string("AblationLattice/") + kSweeps[si].label +
                         (reuse ? "/bottom_up_reuse" : "/each_from_Fk");
      benchmark::RegisterBenchmark(name.c_str(), BM_Lattice)
          ->Args({static_cast<long>(si), reuse})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Ablation: bottom-up shared summaries for multi-term Vpct queries "
      "(lattice reuse on/off).\n\n");
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
