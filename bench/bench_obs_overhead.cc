// bench_obs_overhead — measures what the observability layer costs on the
// engine's hot paths and writes BENCH_obs.json.
//
// Three configurations of the same dop=4 queries bench_parallel_scaling
// runs (instrumentation is always compiled in — there is no build-time
// toggle to compare against):
//
//   disabled   obs::SetEnabled(false): every kernel recording site reduces
//              to one relaxed atomic load + branch
//   enabled    obs::SetEnabled(true), no trace attached: the production
//              default — OpScope still no-ops because CurrentOp() is null
//   traced     enabled + a QueryTrace collecting per-operator stats, i.e.
//              what EXPLAIN ANALYZE / SET trace on pay
//
// The guard: enabled-vs-disabled overhead must stay <= 3% (the budget from
// docs/OBSERVABILITY.md). `traced` is reported but not guarded — it is an
// opt-in per-query cost, not a tax on every query.
//
// Configurations are interleaved per repetition (disabled, enabled, traced,
// repeat) and the overhead is the MEDIAN of the paired per-repetition
// ratios: pairing cancels clock drift, the median discards scheduler
// spikes — best-of comparisons across separate runs were dominated by both
// on busy hosts.
//
// Flags / environment:
//   PCTAGG_OBS_BENCH_ROWS   sales rows (default 500000)
//   PCTAGG_OBS_BENCH_REPS   repetitions (default 15)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/generators.h"

namespace {

using pctagg::PctDatabase;
using pctagg::QueryOptions;
using pctagg::Result;
using pctagg::StrFormat;
using pctagg::Table;

constexpr size_t kDop = 4;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  long long n = std::atoll(v);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

struct BenchQuery {
  const char* name;
  const char* sql;
};

constexpr BenchQuery kQueries[] = {
    {"vpct",
     "SELECT monthNo, dweek, Vpct(salesAmt BY dweek) AS pct FROM sales "
     "GROUP BY monthNo, dweek"},
    {"hpct",
     "SELECT store, Hpct(salesAmt BY dweek) FROM sales GROUP BY store"},
};

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : (v[mid - 1] + v[mid]) / 2.0;
}

double QueryMs(const PctDatabase& db, const char* sql,
               pctagg::obs::QueryTrace* trace) {
  QueryOptions options;
  options.degree_of_parallelism = kDop;
  options.trace = trace;
  pctagg::Stopwatch timer;
  Result<Table> r = db.Query(sql, options);
  double ms = timer.ElapsedMillis();
  if (!r.ok() || r.value().num_rows() == 0) {
    std::fprintf(stderr, "benchmark query failed: %s\n%s\n",
                 r.status().ToString().c_str(), sql);
    std::abort();
  }
  return ms;
}

}  // namespace

int main() {
  size_t rows = EnvSize("PCTAGG_OBS_BENCH_ROWS", 500000);
  size_t reps = EnvSize("PCTAGG_OBS_BENCH_REPS", 15);

  std::fprintf(stderr, "[setup] generating sales n=%zu...\n", rows);
  PctDatabase db;
  if (!db.CreateTable("sales", pctagg::GenerateSales(rows)).ok()) {
    std::fprintf(stderr, "table setup failed\n");
    return 1;
  }

  constexpr size_t kNumQueries = sizeof(kQueries) / sizeof(kQueries[0]);
  std::vector<double> disabled_ms[kNumQueries], overhead_ratio[kNumQueries],
      traced_ratio[kNumQueries];

  for (size_t rep = 0; rep < reps; ++rep) {
    for (size_t qi = 0; qi < kNumQueries; ++qi) {
      const BenchQuery& q = kQueries[qi];
      pctagg::obs::SetEnabled(false);
      double d = QueryMs(db, q.sql, nullptr);
      pctagg::obs::SetEnabled(true);
      double e = QueryMs(db, q.sql, nullptr);
      pctagg::obs::QueryTrace trace;
      double t = QueryMs(db, q.sql, &trace);
      if (trace.root().children.empty()) {
        std::fprintf(stderr, "traced run collected no plan nodes\n");
        return 1;
      }
      disabled_ms[qi].push_back(d);
      overhead_ratio[qi].push_back((e - d) / d * 100.0);
      traced_ratio[qi].push_back((t - d) / d * 100.0);
    }
  }
  pctagg::obs::SetEnabled(true);  // leave the process-wide default in place

  double max_overhead_pct = 0.0;
  std::string query_json;
  for (size_t qi = 0; qi < kNumQueries; ++qi) {
    double base_ms = Median(disabled_ms[qi]);
    double overhead_pct = Median(overhead_ratio[qi]);
    double traced_pct = Median(traced_ratio[qi]);
    if (overhead_pct > max_overhead_pct) max_overhead_pct = overhead_pct;
    std::fprintf(stderr,
                 "[%s] dop=%zu disabled=%.2fms enabled %+.2f%% "
                 "traced %+.2f%% (medians of %zu paired reps)\n",
                 kQueries[qi].name, kDop, base_ms, overhead_pct, traced_pct,
                 reps);
    query_json += StrFormat(
        "    {\"name\": \"%s\", \"disabled_ms\": %.3f, "
        "\"overhead_pct\": %.2f, \"traced_overhead_pct\": %.2f}%s\n",
        kQueries[qi].name, base_ms, overhead_pct, traced_pct,
        qi + 1 == kNumQueries ? "" : ",");
  }

  std::string json = StrFormat(
      "{\n"
      "  \"benchmark\": \"obs_overhead\",\n"
      "  \"rows\": %zu,\n"
      "  \"dop\": %zu,\n"
      "  \"repetitions\": %zu,\n"
      "  \"budget_pct\": 3.0,\n"
      "  \"max_overhead_pct\": %.2f,\n"
      "  \"queries\": [\n%s  ]\n"
      "}\n",
      rows, kDop, reps, max_overhead_pct, query_json.c_str());
  std::fputs(json.c_str(), stdout);
  FILE* f = std::fopen("BENCH_obs.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote BENCH_obs.json\n");
  }

  if (max_overhead_pct > 3.0) {
    std::fprintf(stderr,
                 "FAIL: metrics overhead %.2f%% exceeds the 3%% budget\n",
                 max_overhead_pct);
    return 1;
  }
  return 0;
}
