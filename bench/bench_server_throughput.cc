// bench_server_throughput — drives the pctagg query service with N client
// threads of mixed Vpct / Hpct / OLAP-baseline traffic over real loopback
// TCP and reports queries/sec plus latency percentiles as JSON
// (BENCH_server.json, also echoed to stdout).
//
// Environment knobs:
//   PCTAGG_SERVER_BENCH_CLIENTS  concurrent client threads (default 8)
//   PCTAGG_SERVER_BENCH_QUERIES  queries per client        (default 25)
//   PCTAGG_SERVER_BENCH_ROWS     fact-table rows           (default 50000)
//   PCTAGG_SERVER_BENCH_CACHE    1 = enable the summary cache (default 0)

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/generators.h"

namespace {

using pctagg::PctClient;
using pctagg::PctDatabase;
using pctagg::RequestVerb;
using pctagg::Result;
using pctagg::ServerConfig;
using pctagg::WireResponse;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  long long n = std::atoll(v);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

// The mixed workload: two verticals, one horizontal, one OLAP baseline.
struct BenchQuery {
  RequestVerb verb;
  const char* sql;
};

constexpr BenchQuery kQueries[] = {
    {RequestVerb::kQuery,
     "SELECT state, city, Vpct(salesAmt BY city) AS pct FROM sales "
     "GROUP BY state, city"},
    {RequestVerb::kQuery,
     "SELECT dweek, Vpct(salesAmt BY dweek) AS pct FROM sales "
     "GROUP BY dweek"},
    {RequestVerb::kQuery,
     "SELECT state, Hpct(salesAmt BY dweek) FROM sales GROUP BY state"},
    {RequestVerb::kOlap,
     "SELECT monthNo, Vpct(salesAmt BY monthNo) AS pct FROM sales "
     "GROUP BY monthNo"},
};

double Percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  double idx = p * static_cast<double>(sorted_ms.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

}  // namespace

int main() {
  size_t clients = EnvSize("PCTAGG_SERVER_BENCH_CLIENTS", 8);
  size_t queries_per_client = EnvSize("PCTAGG_SERVER_BENCH_QUERIES", 25);
  size_t rows = EnvSize("PCTAGG_SERVER_BENCH_ROWS", 50000);
  bool cache = EnvSize("PCTAGG_SERVER_BENCH_CACHE", 0) == 1;

  std::fprintf(stderr, "[setup] generating sales n=%zu...\n", rows);
  PctDatabase db;
  db.EnableSummaryCache(cache);
  if (!db.CreateTable("sales", pctagg::GenerateSales(rows)).ok()) {
    std::fprintf(stderr, "table setup failed\n");
    return 1;
  }

  ServerConfig config;
  config.port = 0;  // ephemeral
  config.max_in_flight = clients * 4;
  config.default_timeout_ms = 0;  // benchmark measures, it does not cancel
  pctagg::PctServer server(&db, config);
  pctagg::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "[bench] %zu clients x %zu queries against 127.0.0.1:%d "
               "(%zu workers)\n",
               clients, queries_per_client, server.port(),
               server.executor().worker_threads());

  std::atomic<size_t> failures{0};
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  pctagg::Stopwatch wall;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([c, queries_per_client, &failures, &latencies,
                          &server] {
      Result<PctClient> client =
          PctClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures.fetch_add(queries_per_client);
        return;
      }
      latencies[c].reserve(queries_per_client);
      for (size_t q = 0; q < queries_per_client; ++q) {
        const BenchQuery& bq =
            kQueries[(c + q) % (sizeof(kQueries) / sizeof(kQueries[0]))];
        pctagg::Stopwatch timer;
        Result<WireResponse> reply = client->Call(bq.verb, bq.sql);
        double ms = timer.ElapsedMillis();
        if (!reply.ok() || !reply->status.ok() || reply->rows == 0) {
          failures.fetch_add(1);
          continue;
        }
        latencies[c].push_back(ms);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  double wall_seconds = wall.ElapsedSeconds();
  server.Stop();

  std::vector<double> all;
  for (const std::vector<double>& v : latencies) {
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  size_t total = clients * queries_per_client;
  double qps = wall_seconds > 0
                   ? static_cast<double>(all.size()) / wall_seconds
                   : 0.0;

  std::string json = pctagg::StrFormat(
      "{\n"
      "  \"benchmark\": \"server_throughput\",\n"
      "  \"rows\": %zu,\n"
      "  \"clients\": %zu,\n"
      "  \"queries_per_client\": %zu,\n"
      "  \"total_queries\": %zu,\n"
      "  \"failures\": %zu,\n"
      "  \"summary_cache\": %s,\n"
      "  \"wall_seconds\": %.3f,\n"
      "  \"qps\": %.2f,\n"
      "  \"p50_ms\": %.3f,\n"
      "  \"p95_ms\": %.3f,\n"
      "  \"p99_ms\": %.3f,\n"
      "  \"max_ms\": %.3f\n"
      "}\n",
      rows, clients, queries_per_client, total, failures.load(),
      cache ? "true" : "false", wall_seconds, qps, Percentile(all, 0.50),
      Percentile(all, 0.95), Percentile(all, 0.99),
      all.empty() ? 0.0 : all.back());

  std::fputs(json.c_str(), stdout);
  FILE* f = std::fopen("BENCH_server.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote BENCH_server.json\n");
  }
  return failures.load() == 0 ? 0 : 1;
}
