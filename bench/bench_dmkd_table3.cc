// Reproduces DMKD 2004 Table 3 (the companion paper "Horizontal
// Aggregations for Building Tabular Data Sets"): SPJ vs CASE evaluation of
// horizontal aggregations, each either directly from F or indirectly from
// the vertical aggregate FV, on the census-like data set (n=200k) and
// transactionLine at two sizes.
//
// Expected shape (paper): SPJ is always slower — by one to two orders of
// magnitude when N (the number of result columns) is large, since it runs
// one aggregation statement plus one outer join per column; there is no
// single CASE winner between direct and indirect; doubling n roughly
// doubles direct-CASE times while the indirect strategy is less sensitive.
//
// Evaluation-mode note: in the paper's DBMS the CASE strategy is one
// I/O-bound scan whose per-row CASE cost is small next to the scan itself
// (CASE on N=100 columns took 3x the N=4 time, not 25x). An in-memory
// engine has no I/O to hide behind, so the CASE statements here run with
// the hash-dispatch evaluation (one pass, O(1) per row) to preserve the
// scan-count asymmetry that drives the paper's SPJ gap; the isolated
// O(N)-vs-O(1) CASE cost is measured in bench_ablation_dispatch.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using pctagg::HorizontalMethod;
using pctagg::HorizontalStrategy;
using pctagg_bench::MustRunHorizontal;

enum class DataSet { kCensus, kTxn1, kTxn2 };

struct QueryShape {
  const char* label;
  DataSet data;
  const char* sql;  // with %s placeholder for the table name
};

std::string TableName(DataSet data) {
  switch (data) {
    case DataSet::kCensus:
      return "uscensus";
    case DataSet::kTxn1:
      return "transactionLine1";
    case DataSet::kTxn2:
      return "transactionLine2";
  }
  return "";
}

std::string FormatSql(const char* sql_template, DataSet data) {
  std::string sql = sql_template;
  size_t pos = sql.find("$T");
  sql.replace(pos, 2, TableName(data));
  return sql;
}

const QueryShape kQueries[] = {
    // UScensus rows (n = 200k): skewed categorical dimensions.
    {"uscensus/by_iSchool", DataSet::kCensus,
     "SELECT sum(dIncome BY iSchool) FROM $T"},
    {"uscensus/by_iClass", DataSet::kCensus,
     "SELECT sum(dIncome BY iClass) FROM $T"},
    {"uscensus/by_iMarital", DataSet::kCensus,
     "SELECT sum(dIncome BY iMarital) FROM $T"},
    {"uscensus/dAge_by_iMarital", DataSet::kCensus,
     "SELECT dAge, sum(dIncome BY iMarital) FROM $T GROUP BY dAge"},
    {"uscensus/dAge_iClass_by_iSchool_iSex", DataSet::kCensus,
     "SELECT dAge, iClass, sum(dIncome BY iSchool, iSex) FROM $T "
     "GROUP BY dAge, iClass"},
    // transactionLine rows at n1.
    {"txn_n1/by_regionId", DataSet::kTxn1,
     "SELECT sum(salesAmt BY regionId) FROM $T"},
    {"txn_n1/by_monthNo", DataSet::kTxn1,
     "SELECT sum(salesAmt BY monthNo) FROM $T"},
    {"txn_n1/by_subdeptId", DataSet::kTxn1,
     "SELECT sum(salesAmt BY subdeptId) FROM $T"},
    {"txn_n1/monthNo_by_dayOfWeekNo", DataSet::kTxn1,
     "SELECT monthNo, sum(salesAmt BY dayOfWeekNo) FROM $T GROUP BY monthNo"},
    {"txn_n1/deptId_by_dayOfWeekNo_monthNo", DataSet::kTxn1,
     "SELECT deptId, sum(salesAmt BY dayOfWeekNo, monthNo) FROM $T "
     "GROUP BY deptId"},
    {"txn_n1/deptId_storeId_by_dayOfWeekNo_monthNo", DataSet::kTxn1,
     "SELECT deptId, storeId, sum(salesAmt BY dayOfWeekNo, monthNo) "
     "FROM $T GROUP BY deptId, storeId"},
    // transactionLine rows at n2 = 2 x n1 (scalability).
    {"txn_n2/by_regionId", DataSet::kTxn2,
     "SELECT sum(salesAmt BY regionId) FROM $T"},
    {"txn_n2/by_monthNo", DataSet::kTxn2,
     "SELECT sum(salesAmt BY monthNo) FROM $T"},
    {"txn_n2/by_subdeptId", DataSet::kTxn2,
     "SELECT sum(salesAmt BY subdeptId) FROM $T"},
    {"txn_n2/monthNo_by_dayOfWeekNo", DataSet::kTxn2,
     "SELECT monthNo, sum(salesAmt BY dayOfWeekNo) FROM $T GROUP BY monthNo"},
    {"txn_n2/deptId_by_dayOfWeekNo_monthNo", DataSet::kTxn2,
     "SELECT deptId, sum(salesAmt BY dayOfWeekNo, monthNo) FROM $T "
     "GROUP BY deptId"},
    {"txn_n2/deptId_storeId_by_dayOfWeekNo_monthNo", DataSet::kTxn2,
     "SELECT deptId, storeId, sum(salesAmt BY dayOfWeekNo, monthNo) "
     "FROM $T GROUP BY deptId, storeId"},
};

const HorizontalMethod kMethods[] = {
    HorizontalMethod::kSpjDirect,
    HorizontalMethod::kSpjFromFV,
    HorizontalMethod::kCaseDirect,
    HorizontalMethod::kCaseFromFV,
};

const char* MethodLabel(HorizontalMethod method) {
  switch (method) {
    case HorizontalMethod::kSpjDirect:
      return "SPJ_from_F";
    case HorizontalMethod::kSpjFromFV:
      return "SPJ_from_FV";
    case HorizontalMethod::kCaseDirect:
      return "CASE_from_F";
    case HorizontalMethod::kCaseFromFV:
      return "CASE_from_FV";
  }
  return "?";
}

void BM_Dmkd(benchmark::State& state) {
  const QueryShape& q = kQueries[state.range(0)];
  HorizontalStrategy strategy;
  strategy.method = kMethods[state.range(1)];
  strategy.hash_dispatch = true;  // single-scan CASE; see header comment
  if (q.data == DataSet::kCensus) {
    pctagg_bench::EnsureCensus();
  } else {
    pctagg_bench::EnsureTransactionLine();
  }
  std::string sql = FormatSql(q.sql, q.data);
  for (auto _ : state) {
    MustRunHorizontal(sql, strategy);
  }
}

void RegisterAll() {
  for (size_t qi = 0; qi < std::size(kQueries); ++qi) {
    for (size_t mi = 0; mi < std::size(kMethods); ++mi) {
      std::string name = std::string("DmkdTable3/") + kQueries[qi].label +
                         "/" + MethodLabel(kMethods[mi]);
      benchmark::RegisterBenchmark(name.c_str(), BM_Dmkd)
          ->Args({static_cast<long>(qi), static_cast<long>(mi)})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "DMKD 2004 Table 3 reproduction: SPJ vs CASE strategies for "
      "horizontal aggregations.\n\n");
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
