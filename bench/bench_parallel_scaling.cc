// bench_parallel_scaling — measures the morsel-driven parallel operator
// kernels against the seed's scalar aggregation loop and reports per-DOP
// timings as JSON (BENCH_parallel.json, also echoed to stdout).
//
// Two comparisons:
//   1. The Fk-from-F aggregation kernel (GROUP BY dweek, monthNo over
//      sales): a faithful bench-local copy of the *seed* inner loop
//      (Table::AppendKeyBytes string key per row + unordered_map::emplace
//      per row — one node allocation per input row) versus the current
//      HashAggregate (packed KeyEncoder keys + find-before-insert KeyMap +
//      morsel-parallel two-phase merge) at DOP 1/2/4/8. "speedup_vs_seed"
//      is seed_ms / new_ms; the DOP=1 row doubles as the serial regression
//      guard (dop1_regression_pct must stay <= 5).
//   2. End-to-end Vpct / Hpct / OLAP-baseline queries through
//      PctDatabase::Query at each DOP.
//
// num_cores is recorded honestly: on a single-core host the DOP>1 rows show
// scheduling overhead, not scaling, and the headline number is the kernel
// rewrite's speedup over the seed loop.
//
// Flags / environment:
//   --smoke                   tiny rows + 1 repetition (TSan smoke target)
//   PCTAGG_PARALLEL_BENCH_ROWS  sales rows (default 1000000)
//   PCTAGG_PARALLEL_BENCH_REPS  repetitions, best-of (default 3)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/database.h"
#include "engine/aggregate.h"
#include "engine/parallel.h"
#include "workload/generators.h"

namespace {

using pctagg::PctDatabase;
using pctagg::QueryOptions;
using pctagg::Result;
using pctagg::StrFormat;
using pctagg::Table;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  long long n = std::atoll(v);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

constexpr size_t kDops[] = {1, 2, 4, 8};

// The seed's aggregation group-assignment + accumulate loop, copied
// shape-for-shape from the v0 HashAggregate so the baseline stays measurable
// after the engine moved on. Per row it builds the composite key through the
// type-tagged variant path (Table::AppendKeyBytes) and calls
// unordered_map::emplace — which in libstdc++ allocates a map node before
// probing (plus the key-string copy into it), i.e. per-row heap allocation
// even when the group already exists — then updates the same
// sum/count/min/max accumulator struct the seed used for every function.
// The emission phase is identical in both implementations and not measured
// (84 groups, noise).
struct SeedAggState {
  double sum = 0.0;
  int64_t isum = 0;
  int64_t count = 0;
  int64_t row_count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::string smin;
  std::string smax;
  bool saw_value = false;
};

double SeedReferenceAggregateMs(const Table& t,
                                const std::vector<size_t>& key_cols,
                                size_t value_col, size_t* out_groups) {
  // The Vpct planner's Fk-from-F step emits exactly one spec per term:
  // sum(salesAmt) (vpct_planner.cc, BuildFkFromF). Mirror that.
  constexpr size_t kNumSpecs = 1;
  pctagg::Stopwatch timer;
  const pctagg::Column& in = t.column(value_col);
  std::unordered_map<std::string, size_t> group_of;
  std::vector<size_t> representative_row;
  std::vector<std::vector<SeedAggState>> states;
  const size_t n = t.num_rows();
  std::string key;
  for (size_t row = 0; row < n; ++row) {
    key.clear();
    t.AppendKeyBytes(row, key_cols, &key);
    auto [it, inserted] = group_of.emplace(key, states.size());
    if (inserted) {
      representative_row.push_back(row);
      states.emplace_back(kNumSpecs);
    }
    std::vector<SeedAggState>& gs = states[it->second];
    for (size_t a = 0; a < kNumSpecs; ++a) {
      SeedAggState& st = gs[a];
      st.row_count++;
      if (in.IsNull(row)) continue;
      st.count++;
      st.saw_value = true;
      double v = in.NumericAt(row);
      st.sum += v;
      if (in.type() == pctagg::DataType::kInt64) st.isum += in.Int64At(row);
      if (v < st.min) st.min = v;
      if (v > st.max) st.max = v;
    }
  }
  *out_groups = states.size();
  return timer.ElapsedMillis();
}

double NewAggregateMs(const Table& t, size_t dop, size_t* out_groups) {
  pctagg::Stopwatch timer;
  Result<Table> r = pctagg::HashAggregate(
      t, {"dweek", "monthNo"},
      {{pctagg::AggFunc::kSum, pctagg::Col("salesAmt"), "s"}}, dop);
  double ms = timer.ElapsedMillis();
  if (!r.ok()) {
    std::fprintf(stderr, "HashAggregate failed: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  *out_groups = r.value().num_rows();
  return ms;
}

// Morsel-granularity sweep: the same column sum dispatched through
// RunMorsels at fixed morsel sizes and through MorselPlan::Auto, at dop=4.
// This is the measurement behind the adaptive bounds in engine/parallel.h —
// too-small morsels pay per-morsel bookkeeping, too-large ones starve
// dynamic balancing — and documents where Auto lands on this host.
double MorselSweepMs(const Table& t, size_t value_col,
                     const pctagg::MorselPlan& plan) {
  const pctagg::Column& in = t.column(value_col);
  pctagg::Stopwatch timer;
  std::vector<double> partial(plan.num_workers > 0 ? plan.num_workers : 1, 0.0);
  pctagg::RunMorsels(plan, [&](size_t worker, size_t begin, size_t end) {
    double s = 0.0;
    for (size_t i = begin; i < end; ++i) {
      if (!in.IsNull(i)) s += in.NumericAt(i);
    }
    partial[worker] += s;
  });
  double total = 0.0;
  for (double s : partial) total += s;
  if (total == 0.0) std::fprintf(stderr, "[sweep] empty sum\n");
  return timer.ElapsedMillis();
}

struct BenchQuery {
  const char* name;
  const char* sql;
  bool olap;
};

constexpr BenchQuery kQueries[] = {
    {"vpct",
     "SELECT monthNo, dweek, Vpct(salesAmt BY dweek) AS pct FROM sales "
     "GROUP BY monthNo, dweek",
     false},
    {"hpct",
     "SELECT store, Hpct(salesAmt BY dweek) FROM sales GROUP BY store",
     false},
    {"olap",
     "SELECT dweek, Vpct(salesAmt) AS pct FROM sales GROUP BY dweek",
     true},
};

double QueryMs(const PctDatabase& db, const BenchQuery& q, size_t dop) {
  QueryOptions options;
  options.degree_of_parallelism = dop;
  options.olap_baseline = q.olap;
  pctagg::Stopwatch timer;
  Result<Table> r = db.Query(q.sql, options);
  double ms = timer.ElapsedMillis();
  if (!r.ok() || r.value().num_rows() == 0) {
    std::fprintf(stderr, "benchmark query failed: %s\n%s\n",
                 r.status().ToString().c_str(), q.sql);
    std::abort();
  }
  return ms;
}

template <typename Fn>
double BestOf(size_t reps, Fn&& fn) {
  double best = fn();
  for (size_t i = 1; i < reps; ++i) {
    double ms = fn();
    if (ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  size_t rows = EnvSize("PCTAGG_PARALLEL_BENCH_ROWS", smoke ? 20000 : 1000000);
  size_t reps = EnvSize("PCTAGG_PARALLEL_BENCH_REPS", smoke ? 1 : 3);
  size_t num_cores = std::thread::hardware_concurrency();

  std::fprintf(stderr, "[setup] generating sales n=%zu (cores=%zu)...\n", rows,
               num_cores);
  PctDatabase db;
  if (!db.CreateTable("sales", pctagg::GenerateSales(rows)).ok()) {
    std::fprintf(stderr, "table setup failed\n");
    return 1;
  }
  const Table& sales = *db.catalog().GetTable("sales").value();
  std::vector<size_t> key_cols = {
      sales.schema().FindColumn("dweek").value(),
      sales.schema().FindColumn("monthNo").value()};
  size_t value_col = sales.schema().FindColumn("salesAmt").value();

  // --- Kernel comparison: seed scalar loop vs HashAggregate at each DOP.
  size_t seed_groups = 0;
  double seed_ms = BestOf(reps, [&] {
    return SeedReferenceAggregateMs(sales, key_cols, value_col, &seed_groups);
  });
  std::fprintf(stderr, "[agg] seed reference: %.2f ms (%zu groups)\n", seed_ms,
               seed_groups);

  std::string agg_json;
  double dop1_ms = 0;
  for (size_t dop : kDops) {
    size_t groups = 0;
    double ms = BestOf(reps, [&] { return NewAggregateMs(sales, dop, &groups); });
    if (groups != seed_groups) {
      std::fprintf(stderr, "group count mismatch: %zu vs %zu\n", groups,
                   seed_groups);
      return 1;
    }
    if (dop == 1) dop1_ms = ms;
    std::fprintf(stderr, "[agg] dop=%zu: %.2f ms (%.2fx vs seed)\n", dop, ms,
                 seed_ms / ms);
    agg_json += StrFormat(
        "      {\"dop\": %zu, \"ms\": %.3f, \"speedup_vs_seed\": %.3f}%s\n",
        dop, ms, seed_ms / ms, dop == 8 ? "" : ",");
  }
  // Serial regression guard: the DOP=1 path of the new kernel vs the seed
  // loop. Negative = faster than seed.
  double dop1_regression_pct = (dop1_ms - seed_ms) / seed_ms * 100.0;

  // --- Morsel-size sweep at dop=4: fixed granularities vs MorselPlan::Auto.
  std::string sweep_json;
  constexpr size_t kSweepSizes[] = {4096, 16384, 65536, 262144};
  for (size_t mr : kSweepSizes) {
    pctagg::MorselPlan plan = pctagg::MorselPlan::For(rows, 4, mr);
    double ms =
        BestOf(reps, [&] { return MorselSweepMs(sales, value_col, plan); });
    std::fprintf(stderr, "[sweep] morsel_rows=%zu: %.2f ms (%zu morsels)\n", mr,
                 ms, plan.num_morsels);
    sweep_json += StrFormat(
        "    {\"morsel_rows\": %zu, \"num_morsels\": %zu, \"ms\": %.3f},\n", mr,
        plan.num_morsels, ms);
  }
  {
    pctagg::MorselPlan plan = pctagg::MorselPlan::Auto(rows, 4);
    double ms =
        BestOf(reps, [&] { return MorselSweepMs(sales, value_col, plan); });
    std::fprintf(stderr,
                 "[sweep] auto: morsel_rows=%zu workers=%zu: %.2f ms "
                 "(%zu morsels)\n",
                 plan.morsel_rows, plan.num_workers, ms, plan.num_morsels);
    sweep_json += StrFormat(
        "    {\"morsel_rows\": %zu, \"num_morsels\": %zu, \"ms\": %.3f, "
        "\"auto\": true, \"workers\": %zu}\n",
        plan.morsel_rows, plan.num_morsels, ms, plan.num_workers);
  }

  // --- End-to-end queries per DOP.
  std::string query_json;
  for (size_t qi = 0; qi < sizeof(kQueries) / sizeof(kQueries[0]); ++qi) {
    const BenchQuery& q = kQueries[qi];
    query_json += StrFormat("    {\"name\": \"%s\", \"dop_ms\": [", q.name);
    for (size_t di = 0; di < 4; ++di) {
      size_t dop = kDops[di];
      double ms = BestOf(reps, [&] { return QueryMs(db, q, dop); });
      std::fprintf(stderr, "[query] %s dop=%zu: %.2f ms\n", q.name, dop, ms);
      query_json += StrFormat("%.3f%s", ms, di == 3 ? "" : ", ");
    }
    query_json += StrFormat(
        "]}%s\n", qi + 1 == sizeof(kQueries) / sizeof(kQueries[0]) ? "" : ",");
  }

  std::string json = StrFormat(
      "{\n"
      "  \"benchmark\": \"parallel_scaling\",\n"
      "  \"rows\": %zu,\n"
      "  \"num_cores\": %zu,\n"
      "  \"repetitions\": %zu,\n"
      "  \"aggregate\": {\n"
      "    \"groups\": %zu,\n"
      "    \"seed_reference_ms\": %.3f,\n"
      "    \"dop1_regression_pct\": %.2f,\n"
      "    \"dop\": [\n%s    ]\n"
      "  },\n"
      "  \"morsel_sweep\": [\n%s  ],\n"
      "  \"queries\": [\n%s  ]\n"
      "}\n",
      rows, num_cores, reps, seed_groups, seed_ms, dop1_regression_pct,
      agg_json.c_str(), sweep_json.c_str(), query_json.c_str());

  std::fputs(json.c_str(), stdout);
  FILE* f = std::fopen("BENCH_parallel.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote BENCH_parallel.json\n");
  }
  if (dop1_regression_pct > 5.0) {
    std::fprintf(stderr,
                 "FAIL: DOP=1 regression %.2f%% exceeds the 5%% budget\n",
                 dop1_regression_pct);
    return 1;
  }
  return 0;
}
