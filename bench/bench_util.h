#ifndef PCTAGG_BENCH_BENCH_UTIL_H_
#define PCTAGG_BENCH_BENCH_UTIL_H_

// Shared setup for the paper-reproduction benchmark binaries.
//
// Row counts default to laptop-friendly scales of the paper's sizes
// (employee 1M -> 1M, sales 10M -> 2.5M, transactionLine 1M/2M ->
// 250k/500k, UScensus 200k -> 200k) and can be scaled with the
// PCTAGG_BENCH_SCALE environment variable (e.g. 2.5 for the paper's
// employee size). Strategy *rankings* are scale-stable; absolute times are
// not comparable to the paper's 2004 hardware.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/database.h"
#include "workload/generators.h"

namespace pctagg_bench {

inline double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("PCTAGG_BENCH_SCALE");
    double s = env != nullptr ? std::atof(env) : 1.0;
    return s > 0 ? s : 1.0;
  }();
  return scale;
}

inline size_t Scaled(size_t base) {
  return static_cast<size_t>(static_cast<double>(base) * Scale());
}

// One process-wide database holding every benchmark table, built lazily.
// Never destroyed (trivial-teardown rule for static storage).
inline pctagg::PctDatabase& Db() {
  static pctagg::PctDatabase* db = new pctagg::PctDatabase();
  return *db;
}

inline void EnsureEmployee() {
  if (!Db().catalog().HasTable("employee")) {
    size_t n = Scaled(1000000);
    std::fprintf(stderr, "[setup] generating employee n=%zu...\n", n);
    Db().CreateTable("employee", pctagg::GenerateEmployee(n)).ok();
  }
}

inline void EnsureSales() {
  if (!Db().catalog().HasTable("sales")) {
    size_t n = Scaled(2500000);
    std::fprintf(stderr, "[setup] generating sales n=%zu...\n", n);
    Db().CreateTable("sales", pctagg::GenerateSales(n)).ok();
  }
}

inline void EnsureTransactionLine() {
  if (!Db().catalog().HasTable("transactionLine1")) {
    size_t n1 = Scaled(250000);
    size_t n2 = Scaled(500000);
    std::fprintf(stderr,
                 "[setup] generating transactionLine n=%zu and n=%zu...\n", n1,
                 n2);
    Db().CreateTable("transactionLine1", pctagg::GenerateTransactionLine(n1))
        .ok();
    Db().CreateTable("transactionLine2", pctagg::GenerateTransactionLine(n2))
        .ok();
  }
}

inline void EnsureCensus() {
  if (!Db().catalog().HasTable("uscensus")) {
    size_t n = Scaled(200000);
    std::fprintf(stderr, "[setup] generating census-like n=%zu...\n", n);
    Db().CreateTable("uscensus", pctagg::GenerateCensusLike(n)).ok();
  }
}

// Runs a query under a forced strategy, aborting the benchmark process on
// error (a broken benchmark must be loud, not silently fast).
inline void MustRunVpct(const std::string& sql,
                        const pctagg::VpctStrategy& strategy) {
  auto r = Db().QueryVpct(sql, strategy);
  if (!r.ok()) {
    std::fprintf(stderr, "benchmark query failed: %s\n%s\n",
                 r.status().ToString().c_str(), sql.c_str());
    std::abort();
  }
}

inline void MustRunHorizontal(const std::string& sql,
                              const pctagg::HorizontalStrategy& strategy) {
  auto r = Db().QueryHorizontal(sql, strategy);
  if (!r.ok()) {
    std::fprintf(stderr, "benchmark query failed: %s\n%s\n",
                 r.status().ToString().c_str(), sql.c_str());
    std::abort();
  }
}

inline void MustRunOlap(const std::string& sql) {
  auto r = Db().QueryOlapBaseline(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "benchmark query failed: %s\n%s\n",
                 r.status().ToString().c_str(), sql.c_str());
    std::abort();
  }
}

}  // namespace pctagg_bench

#endif  // PCTAGG_BENCH_BENCH_UTIL_H_
