// bench_lattice — measures the shared-scan grouping-set lattice against the
// per-level recompute baseline and reports per-DOP timings as JSON
// (BENCH_lattice.json, also echoed to stdout).
//
// The workload is a 3-dim CUBE (8 levels) of Vpct + sum over the paper's
// sales fact: the shared mode scans the fact once for the finest level and
// answers every coarser level by re-aggregating cached partials, while the
// per-level baseline runs one fused scan per level. The seed reference is
// per-level at DOP=1; "speedup_vs_seed" is per_level_ms / shared_ms measured
// on the same host in the same process, so the ratio transfers across CI
// hardware. The DOP=1 row is the guard: shared must stay >= 2x faster than
// per-level (enforced at full size; sub-5ms smoke timings only warn).
//
// A second section measures the cache story: with the summary cache on,
// every lattice level lands under its own mergeable recipe, an APPEND
// delta-merges all of them, and the follow-up query must answer every level
// straight from the cache (hard failure if any level recomputes).
//
// Flags / environment:
//   --smoke                    tiny rows (TSan/CI smoke)
//   PCTAGG_LATTICE_BENCH_ROWS  sales rows (default 1000000)
//   PCTAGG_LATTICE_BENCH_REPS  repetitions, best-of (default 3)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/database.h"
#include "obs/trace.h"
#include "workload/generators.h"

namespace {

using pctagg::LatticeMode;
using pctagg::PctDatabase;
using pctagg::QueryOptions;
using pctagg::Result;
using pctagg::StrFormat;
using pctagg::Table;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  long long n = std::atoll(v);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

constexpr size_t kDops[] = {1, 2, 4, 8};

// 3-dim CUBE: monthNo(12) x dweek(7) x store(100) => 8 levels, ~8400 groups
// at the finest. Vpct rides along so the per-level assembly work (totals
// join + divide) is part of both sides, not just the scans.
constexpr const char* kCubeSql =
    "SELECT monthNo, dweek, store, Vpct(salesAmt BY dweek) AS pct, "
    "sum(salesAmt) AS s FROM sales GROUP BY CUBE(monthNo, dweek, store)";

double LatticeQueryMs(const PctDatabase& db, LatticeMode mode, size_t dop,
                      size_t* out_rows) {
  QueryOptions options;
  options.lattice = mode;
  options.degree_of_parallelism = dop;
  pctagg::Stopwatch timer;
  Result<Table> r = db.Query(kCubeSql, options);
  double ms = timer.ElapsedMillis();
  if (!r.ok()) {
    std::fprintf(stderr, "lattice query failed: %s\n",
                 r.status().ToString().c_str());
    std::abort();
  }
  *out_rows = r.value().num_rows();
  return ms;
}

// Counts the per-level trace nodes (fused scans + rollups) and how many of
// them the summary cache answered.
void CountLevelNodes(const pctagg::obs::QueryTrace& trace, size_t* levels,
                     size_t* hits) {
  *levels = 0;
  *hits = 0;
  for (const auto& node : trace.root().children) {
    const bool level_node = node->detail.rfind("fused-scan:", 0) == 0 ||
                            node->detail.rfind("lattice-rollup:", 0) == 0;
    if (!level_node) continue;
    ++*levels;
    if (node->stats.cache_hit) ++*hits;
  }
}

template <typename Fn>
double BestOf(size_t reps, Fn&& fn) {
  double best = fn();
  for (size_t i = 1; i < reps; ++i) {
    double ms = fn();
    if (ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  size_t rows = EnvSize("PCTAGG_LATTICE_BENCH_ROWS", smoke ? 20000 : 1000000);
  size_t reps = EnvSize("PCTAGG_LATTICE_BENCH_REPS", smoke ? 1 : 3);
  size_t num_cores = std::thread::hardware_concurrency();

  std::fprintf(stderr, "[setup] generating sales n=%zu (cores=%zu)...\n", rows,
               num_cores);
  PctDatabase db;
  if (!db.CreateTable("sales", pctagg::GenerateSales(rows)).ok()) {
    std::fprintf(stderr, "table setup failed\n");
    return 1;
  }

  // --- Shared vs per-level per DOP. Per-level at DOP=1 is the seed
  // reference (one fused scan per lattice level, the plan a planner without
  // the lattice would emit 8 times over).
  size_t seed_rows = 0;
  double seed_ms = BestOf(reps, [&] {
    return LatticeQueryMs(db, LatticeMode::kPerLevel, 1, &seed_rows);
  });
  std::fprintf(stderr, "[lattice] per-level dop=1: %.2f ms (%zu rows)\n",
               seed_ms, seed_rows);

  std::string agg_json;
  double shared_dop1_ms = 0;
  for (size_t dop : kDops) {
    size_t shared_rows = 0;
    double ms = BestOf(reps, [&] {
      return LatticeQueryMs(db, LatticeMode::kShared, dop, &shared_rows);
    });
    if (shared_rows != seed_rows) {
      std::fprintf(stderr, "row count mismatch: shared %zu vs per-level %zu\n",
                   shared_rows, seed_rows);
      return 1;
    }
    if (dop == 1) shared_dop1_ms = ms;
    std::fprintf(stderr, "[lattice] shared dop=%zu: %.2f ms (%.2fx vs per-level)\n",
                 dop, ms, seed_ms / ms);
    agg_json += StrFormat(
        "      {\"dop\": %zu, \"ms\": %.3f, \"speedup_vs_seed\": %.3f}%s\n",
        dop, ms, seed_ms / ms, dop == 8 ? "" : ",");
  }
  double dop1_speedup = seed_ms / shared_dop1_ms;
  double dop1_regression_pct = (shared_dop1_ms - seed_ms) / seed_ms * 100.0;

  // --- Cache story: fill the per-level recipes, APPEND a 1% delta (merged
  // into every entry), and require the follow-up query to be all cache hits.
  PctDatabase cached_db;
  cached_db.EnableSummaryCache(true);
  if (!cached_db.CreateTable("sales", pctagg::GenerateSales(rows)).ok()) {
    std::fprintf(stderr, "cached table setup failed\n");
    return 1;
  }
  if (!cached_db.Query(kCubeSql).ok()) {
    std::fprintf(stderr, "cache-fill query failed\n");
    return 1;
  }
  Table delta = pctagg::GenerateSales(rows / 100 + 1, /*seed=*/7);
  QueryOptions merge;
  merge.append_policy = pctagg::AppendPolicy::kMerge;
  Result<pctagg::AppendOutcome> appended =
      cached_db.AppendRows("sales", delta, merge);
  if (!appended.ok()) {
    std::fprintf(stderr, "append failed: %s\n",
                 appended.status().ToString().c_str());
    return 1;
  }
  pctagg::obs::QueryTrace trace;
  QueryOptions traced;
  traced.trace = &trace;
  pctagg::Stopwatch cached_timer;
  Result<Table> after = cached_db.Query(kCubeSql, traced);
  double cached_ms = cached_timer.ElapsedMillis();
  if (!after.ok()) {
    std::fprintf(stderr, "post-append query failed: %s\n",
                 after.status().ToString().c_str());
    return 1;
  }
  size_t levels = 0, hits = 0;
  CountLevelNodes(trace, &levels, &hits);
  std::fprintf(stderr,
               "[cache] post-append: %zu/%zu levels from cache "
               "(%zu merged), %.2f ms\n",
               hits, levels, appended.value().summaries_merged, cached_ms);

  std::string json = StrFormat(
      "{\n"
      "  \"benchmark\": \"lattice\",\n"
      "  \"rows\": %zu,\n"
      "  \"num_cores\": %zu,\n"
      "  \"repetitions\": %zu,\n"
      "  \"aggregate\": {\n"
      "    \"result_rows\": %zu,\n"
      "    \"seed_reference_ms\": %.3f,\n"
      "    \"dop1_speedup\": %.3f,\n"
      "    \"dop1_regression_pct\": %.2f,\n"
      "    \"dop\": [\n%s    ]\n"
      "  },\n"
      "  \"cache\": {\n"
      "    \"levels\": %zu,\n"
      "    \"hits_after_append\": %zu,\n"
      "    \"summaries_merged\": %zu,\n"
      "    \"cached_query_ms\": %.3f\n"
      "  }\n"
      "}\n",
      rows, num_cores, reps, seed_rows, seed_ms, dop1_speedup,
      dop1_regression_pct, agg_json.c_str(), levels, hits,
      appended.value().summaries_merged,
      cached_ms);

  std::fputs(json.c_str(), stdout);
  FILE* f = std::fopen("BENCH_lattice.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote BENCH_lattice.json\n");
  }

  if (hits != levels) {
    std::fprintf(stderr,
                 "FAIL: only %zu of %zu lattice levels were answered from "
                 "the cache after APPEND\n",
                 hits, levels);
    return 1;
  }
  if (dop1_speedup < 2.0) {
    // At smoke sizes the fixed per-level costs (assembly, pivot) dominate
    // and the shared scan has little to amortize, so the 2x floor only
    // holds once the scan itself is the bottleneck: enforce at >=200k rows.
    bool hard = rows >= 200000;
    std::fprintf(stderr,
                 "%s: shared-scan DOP=1 speedup %.2fx is below the 2x floor "
                 "(per-level %.2f ms, shared %.2f ms)\n",
                 hard ? "FAIL" : "warning (smoke-size run, not enforced)",
                 dop1_speedup, seed_ms, shared_dop1_ms);
    if (hard) return 1;
  }
  return 0;
}
