// bench_mqo — measures multi-query shared-scan batching (core/mqo_plan.h +
// server/mqo_gate.h): 8 concurrent overlapping Vpct/Hpct/aggregate queries
// over one transactionLine fact, batched (one fused union scan + per-query
// rollups) against unbatched (8 independent fused scans). Emits
// BENCH_mqo.json (also echoed to stdout).
//
// Two measurements per DOP:
//   * solo_total_ms — the 8 queries executed one after another with mqo off:
//     the work a server does for the burst without batching. Sequential on
//     purpose, so the number is host-core-count independent.
//   * ms — the same 8 queries planned as one batch (PlanMqoBatch) and
//     executed through ExecuteMqoBatch: one shared scan at the union finest
//     level, then per-query rollup + assembly.
// "speedup_vs_seed" is solo_total_ms / ms at the same DOP on the same host,
// so the ratio transfers across CI hardware. The DOP=1 row is the guard: the
// batch must stay >= 2x the aggregate throughput of solo execution (enforced
// at full size; smoke sizes only warn). Every batched result is compared
// byte-for-byte against its solo CSV at every DOP — any mismatch fails, any
// size.
//
// Also measured:
//   * e2e — the burst through the real QueryExecutor gate, 8 caller threads
//     at once, batched (SET mqo on) vs unbatched (SET mqo off): aggregate
//     throughput and p99 per-query latency. Reported, not guarded (on a
//     1-core CI host the unbatched burst time-slices one core).
//   * mqo_off_overhead_pct — the executor's read path with SET mqo off vs
//     calling the database directly: the gate must cost nothing when off
//     (<= 3% enforced at full size).
//
// The summary cache stays disabled throughout so the solo baseline measures
// real scans, not cache hits.
//
// Flags / environment:
//   --smoke                 tiny rows (CI smoke)
//   PCTAGG_MQO_BENCH_ROWS   transactionLine rows (default 1000000)
//   PCTAGG_MQO_BENCH_REPS   repetitions, best-of (default 3)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/database.h"
#include "core/mqo_plan.h"
#include "engine/csv.h"
#include "server/executor.h"
#include "workload/generators.h"

namespace {

using pctagg::AnalyzedQuery;
using pctagg::ExecutorConfig;
using pctagg::FormatCsv;
using pctagg::MqoBatchPlan;
using pctagg::MqoMode;
using pctagg::PctDatabase;
using pctagg::QueryExecutor;
using pctagg::QueryOptions;
using pctagg::Result;
using pctagg::Status;
using pctagg::StrFormat;
using pctagg::Table;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  long long n = std::atoll(v);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

constexpr size_t kDops[] = {1, 2, 4, 8};

// The burst: 8 overlapping queries sharing the itemQty measure across four
// dimensions — shared-subexpression structure of a dashboard refresh. All
// measures are INT64 so batched results are bit-identical to solo execution;
// every ORDER BY is pinned so CSV comparison is exact.
const char* const kSqls[] = {
    "SELECT dayOfWeekNo, stateId, Vpct(itemQty BY stateId) AS pct FROM f "
    "GROUP BY dayOfWeekNo, stateId ORDER BY dayOfWeekNo, stateId",
    "SELECT monthNo, stateId, Vpct(itemQty BY monthNo) AS pct FROM f "
    "GROUP BY monthNo, stateId ORDER BY monthNo, stateId",
    "SELECT stateId, Hpct(itemQty BY dayOfWeekNo) FROM f "
    "GROUP BY stateId ORDER BY stateId",
    "SELECT regionId, Hpct(itemQty BY monthNo) FROM f "
    "GROUP BY regionId ORDER BY regionId",
    "SELECT stateId, sum(itemQty) AS s, count(*) AS n FROM f "
    "GROUP BY stateId ORDER BY stateId",
    "SELECT dayOfWeekNo, sum(itemQty) AS s, avg(itemQty) AS a FROM f "
    "GROUP BY dayOfWeekNo ORDER BY dayOfWeekNo",
    "SELECT monthNo, dayOfWeekNo, sum(itemQty) AS s, min(itemQty) AS mn, "
    "max(itemQty) AS mx FROM f GROUP BY monthNo, dayOfWeekNo "
    "ORDER BY monthNo, dayOfWeekNo",
    "SELECT sum(itemQty) AS total, count(*) AS n FROM f",
};
constexpr size_t kQueries = sizeof(kSqls) / sizeof(kSqls[0]);

template <typename Fn>
double BestOf(size_t reps, Fn&& fn) {
  double best = fn();
  for (size_t i = 1; i < reps; ++i) {
    double ms = fn();
    if (ms < best) best = ms;
  }
  return best;
}

[[noreturn]] void Die(const std::string& what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what.c_str(), status.ToString().c_str());
  std::abort();
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(samples.size()));
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  size_t rows = EnvSize("PCTAGG_MQO_BENCH_ROWS", smoke ? 20000 : 1000000);
  size_t reps = EnvSize("PCTAGG_MQO_BENCH_REPS", smoke ? 1 : 3);
  size_t num_cores = std::thread::hardware_concurrency();

  std::fprintf(stderr, "[setup] generating transactionLine n=%zu (cores=%zu)\n",
               rows, num_cores);
  PctDatabase db;  // summary cache disabled: solo baseline measures scans
  if (!db.CreateTable("f", pctagg::GenerateTransactionLine(rows)).ok()) {
    std::fprintf(stderr, "table setup failed\n");
    return 1;
  }

  // Analyze once; the batch plan is reused at every DOP.
  std::vector<AnalyzedQuery> analyzed;
  for (size_t i = 0; i < kQueries; ++i) {
    Result<AnalyzedQuery> q = db.PrepareQuery(kSqls[i]);
    if (!q.ok()) Die(kSqls[i], q.status());
    analyzed.push_back(std::move(*q));
  }
  std::vector<const AnalyzedQuery*> queries;
  for (const AnalyzedQuery& q : analyzed) queries.push_back(&q);
  Result<MqoBatchPlan> plan = pctagg::PlanMqoBatch(queries);
  if (!plan.ok()) Die("batch plan failed", plan.status());
  std::fprintf(stderr,
               "[plan] %zu queries -> one scan: %zu union group cols, %zu "
               "partials deduped from %zu\n",
               kQueries, plan->scan_cols.size(), plan->scan_partials.size(),
               plan->partials_requested);
  const Table* fact =
      *static_cast<const PctDatabase&>(db).catalog().GetTable("f");

  // --- Batched vs solo per DOP, with the byte-identity guard at every DOP.
  bool identical = true;
  std::string agg_json;
  double solo_dop1_ms = 0, batch_dop1_ms = 0;
  size_t result_rows = 0;
  for (size_t dop : kDops) {
    QueryOptions solo_opts;
    solo_opts.degree_of_parallelism = dop;
    solo_opts.mqo = MqoMode::kOff;
    std::vector<std::string> solo_csv(kQueries);
    double solo_total_ms = BestOf(reps, [&] {
      pctagg::Stopwatch timer;
      for (size_t i = 0; i < kQueries; ++i) {
        Result<Table> r = db.Query(kSqls[i], solo_opts);
        if (!r.ok()) Die(kSqls[i], r.status());
        solo_csv[i] = FormatCsv(*r);
      }
      return timer.ElapsedMillis();
    });

    std::vector<std::string> batch_csv(kQueries);
    double batch_ms = BestOf(reps, [&] {
      pctagg::Stopwatch timer;
      Result<std::vector<Table>> results =
          pctagg::ExecuteMqoBatch(*plan, *fact, nullptr, {}, dop);
      if (!results.ok()) Die("batch execution failed", results.status());
      for (size_t i = 0; i < kQueries; ++i) {
        batch_csv[i] = FormatCsv((*results)[i]);
      }
      result_rows = (*results)[0].num_rows();
      return timer.ElapsedMillis();
    });
    for (size_t i = 0; i < kQueries; ++i) {
      if (batch_csv[i] != solo_csv[i]) {
        std::fprintf(stderr, "MISMATCH at dop=%zu: %s\n", dop, kSqls[i]);
        identical = false;
      }
    }
    if (dop == 1) {
      solo_dop1_ms = solo_total_ms;
      batch_dop1_ms = batch_ms;
    }
    std::fprintf(stderr,
                 "[model] dop=%zu: batch %.2f ms vs solo %.2f ms for %zu "
                 "queries, %.2fx\n",
                 dop, batch_ms, solo_total_ms, kQueries,
                 solo_total_ms / batch_ms);
    agg_json += StrFormat(
        "      {\"dop\": %zu, \"ms\": %.3f, \"speedup_vs_seed\": %.3f, "
        "\"solo_total_ms\": %.3f}%s\n",
        dop, batch_ms, solo_total_ms / batch_ms, solo_total_ms,
        dop == 8 ? "" : ",");
  }
  double dop1_speedup = solo_dop1_ms / batch_dop1_ms;
  double dop1_regression_pct =
      (batch_dop1_ms - solo_dop1_ms) / solo_dop1_ms * 100.0;

  // --- e2e through the executor gate: 8 caller threads at once, batched
  // (gate collects the burst into one batch) vs unbatched (mqo off).
  auto e2e_round = [&](MqoMode mode, std::vector<double>* latencies) {
    ExecutorConfig config;
    config.worker_threads = kQueries;
    config.mqo_window_ms = 250;  // max_batch closes the batch early
    config.mqo_max_batch = kQueries;
    QueryExecutor executor(&db, config);
    double round_ms = 0;
    for (size_t rep = 0; rep < reps; ++rep) {
      std::vector<std::thread> threads;
      std::vector<double> lat(kQueries);
      pctagg::Stopwatch round;
      for (size_t i = 0; i < kQueries; ++i) {
        threads.emplace_back([&, i] {
          QueryOptions opts;
          opts.degree_of_parallelism = 1;
          opts.mqo = mode;
          pctagg::Stopwatch timer;
          Result<Table> r = executor.ExecuteStatement(kSqls[i], opts, 0);
          lat[i] = timer.ElapsedMillis();
          if (!r.ok()) Die(kSqls[i], r.status());
        });
      }
      for (std::thread& t : threads) t.join();
      round_ms += round.ElapsedMillis();
      latencies->insert(latencies->end(), lat.begin(), lat.end());
    }
    return round_ms;  // total over reps rounds
  };
  std::vector<double> solo_lat, batch_lat;
  double e2e_solo_ms = e2e_round(MqoMode::kOff, &solo_lat);
  double e2e_batch_ms = e2e_round(MqoMode::kOn, &batch_lat);
  const double total_queries = static_cast<double>(kQueries * reps);
  double solo_qps = total_queries / (e2e_solo_ms / 1e3);
  double batch_qps = total_queries / (e2e_batch_ms / 1e3);
  double solo_p99 = Percentile(solo_lat, 0.99);
  double batch_p99 = Percentile(batch_lat, 0.99);
  std::fprintf(stderr,
               "[e2e] unbatched %.1f q/s p99 %.2f ms; batched %.1f q/s p99 "
               "%.2f ms\n",
               solo_qps, solo_p99, batch_qps, batch_p99);

  // --- SET mqo off must cost nothing: executor read path vs direct calls.
  QueryOptions off_opts;
  off_opts.degree_of_parallelism = 1;
  off_opts.mqo = MqoMode::kOff;
  double direct_ms = BestOf(reps, [&] {
    pctagg::Stopwatch timer;
    for (size_t i = 0; i < kQueries; ++i) {
      Result<Table> r = db.Query(kSqls[i], off_opts);
      if (!r.ok()) Die(kSqls[i], r.status());
    }
    return timer.ElapsedMillis();
  });
  double via_executor_ms;
  {
    QueryExecutor executor(&db, ExecutorConfig{2, 64});
    via_executor_ms = BestOf(reps, [&] {
      pctagg::Stopwatch timer;
      for (size_t i = 0; i < kQueries; ++i) {
        Result<Table> r = executor.ExecuteStatement(kSqls[i], off_opts, 0);
        if (!r.ok()) Die(kSqls[i], r.status());
      }
      return timer.ElapsedMillis();
    });
  }
  double off_overhead_pct = (via_executor_ms - direct_ms) / direct_ms * 100.0;
  std::fprintf(stderr, "[off] direct %.2f ms, via executor %.2f ms (%+.2f%%)\n",
               direct_ms, via_executor_ms, off_overhead_pct);

  std::string json = StrFormat(
      "{\n"
      "  \"benchmark\": \"mqo\",\n"
      "  \"rows\": %zu,\n"
      "  \"num_cores\": %zu,\n"
      "  \"repetitions\": %zu,\n"
      "  \"queries\": %zu,\n"
      "  \"scan_partials\": %zu,\n"
      "  \"partials_requested\": %zu,\n"
      "  \"aggregate\": {\n"
      "    \"result_rows\": %zu,\n"
      "    \"seed_reference_ms\": %.3f,\n"
      "    \"dop1_speedup\": %.3f,\n"
      "    \"dop1_regression_pct\": %.2f,\n"
      "    \"dop\": [\n%s    ]\n"
      "  },\n"
      "  \"e2e\": {\n"
      "    \"unbatched\": {\"throughput_qps\": %.1f, \"p99_ms\": %.3f},\n"
      "    \"batched\": {\"throughput_qps\": %.1f, \"p99_ms\": %.3f}\n"
      "  },\n"
      "  \"mqo_off_overhead_pct\": %.2f,\n"
      "  \"bit_identical\": %s\n"
      "}\n",
      rows, num_cores, reps, kQueries, plan->scan_partials.size(),
      plan->partials_requested, result_rows, solo_dop1_ms, dop1_speedup,
      dop1_regression_pct, agg_json.c_str(), solo_qps, solo_p99, batch_qps,
      batch_p99, off_overhead_pct, identical ? "true" : "false");

  std::fputs(json.c_str(), stdout);
  FILE* f = std::fopen("BENCH_mqo.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote BENCH_mqo.json\n");
  }

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: a batched result differs from its solo execution on "
                 "an INT64 measure\n");
    return 1;
  }
  // Below ~200k rows the per-query assembly tail dominates the shrunken
  // shared scan, so the throughput floor and the off-overhead bound are only
  // meaningful at full size.
  const bool hard = rows >= 200000;
  if (dop1_speedup < 2.0) {
    std::fprintf(stderr,
                 "%s: batched DOP=1 aggregate throughput %.2fx is below the "
                 "2x floor (solo %.2f ms, batched %.2f ms)\n",
                 hard ? "FAIL" : "warning (smoke-size run, not enforced)",
                 dop1_speedup, solo_dop1_ms, batch_dop1_ms);
    if (hard) return 1;
  }
  if (off_overhead_pct > 3.0) {
    std::fprintf(stderr,
                 "%s: SET mqo off costs %.2f%% over calling the database "
                 "directly (budget 3%%)\n",
                 hard ? "FAIL" : "warning (smoke-size run, not enforced)",
                 off_overhead_pct);
    if (hard) return 1;
  }
  return 0;
}
