// bench_append_delta — steady-state latency of cached percentage queries
// under a mixed append/query workload, comparing summary maintenance modes;
// reports JSON (BENCH_append.json, also echoed to stdout).
//
// Workload: the paper's sales table. Each round appends a 1%-of-base batch
// and then runs a cached Vpct and a cached Hpct query (FromFV forced, so the
// horizontal query materializes — and caches — its FVh aggregate). Modes:
//
//   delta-merge  AppendPolicy::kMerge, cache on: the append aggregates only
//                the batch and upserts it into each cached summary, so the
//                follow-up queries answer from the maintained cache entry.
//   recompute    AppendPolicy::kRecompute, cache on: every append drops the
//                table's entries; every query re-aggregates the full table
//                to refill them (the invalidate-everything behavior this PR
//                replaces, and the bench's "seed" reference).
//   cache-off    no summary cache at all: every query re-aggregates.
//
// The JSON's "aggregate" section is shaped for scripts/bench_smoke.py:
// "seed_reference_ms" is the recompute mode's steady-state dop=1 query
// latency, "dop" rows carry the delta-merge mode at DOP 1/4 with
// "speedup_vs_seed" = recompute_ms / merge_ms on the same host. The dop=1
// speedup is the headline: under 3x the binary exits 1 (skipped in --smoke).
//
// Correctness rider: on a quantized copy (salesAmt rounded, so FLOAT64 sums
// are exact and order-independent) the final post-append query results in
// delta-merge mode must be bit-for-bit identical to a from-scratch database
// over the same rows, at DOP 1 and 4.
//
// Flags / environment:
//   --smoke                    tiny rows + 1 repetition
//   PCTAGG_APPEND_BENCH_ROWS   sales rows (default 500000)
//   PCTAGG_APPEND_BENCH_REPS   repetitions, best-of (default 3)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/database.h"
#include "engine/csv.h"
#include "engine/table_ops.h"
#include "workload/generators.h"

namespace {

using pctagg::AppendPolicy;
using pctagg::PctDatabase;
using pctagg::QueryOptions;
using pctagg::Result;
using pctagg::StrFormat;
using pctagg::Table;
using pctagg::Value;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  long long n = std::atoll(v);
  return n > 0 ? static_cast<size_t>(n) : fallback;
}

constexpr char kVpctSql[] =
    "SELECT monthNo, dweek, Vpct(salesAmt BY dweek) AS pct FROM sales "
    "GROUP BY monthNo, dweek";
constexpr char kHpctSql[] =
    "SELECT monthNo, Hpct(salesAmt BY dweek) FROM sales GROUP BY monthNo";
constexpr size_t kRounds = 30;

QueryOptions ModeOptions(AppendPolicy policy, size_t dop) {
  QueryOptions options;
  options.degree_of_parallelism = dop;
  options.append_policy = policy;
  // Only the FromFV horizontal methods materialize (and cache) the FVh
  // aggregate; force one so Hpct participates in summary maintenance.
  pctagg::HorizontalStrategy h;
  h.method = pctagg::HorizontalMethod::kCaseFromFV;
  options.horizontal_strategy = h;
  return options;
}

Table MustQuery(const PctDatabase& db, const char* sql,
                const QueryOptions& options) {
  Result<Table> r = db.Query(sql, options);
  if (!r.ok() || r.value().num_rows() == 0) {
    std::fprintf(stderr, "benchmark query failed: %s\n%s\n",
                 r.status().ToString().c_str(), sql);
    std::abort();
  }
  return std::move(r.value());
}

struct ModeResult {
  double mean_query_ms = 0;   // steady-state per-query latency
  double p99_ms = 0;          // p99 over all statements (queries + appends)
  double mean_append_ms = 0;  // per-append-statement latency
};

// One full mixed workload run: warm the cache, then kRounds of
// (append 1% batch, query Vpct, query Hpct), timing every statement.
ModeResult RunMode(const Table& base, const std::vector<Table>& deltas,
                   AppendPolicy policy, bool cache_on, size_t dop) {
  PctDatabase db;
  if (!db.CreateTable("sales", base).ok()) std::abort();
  db.EnableSummaryCache(cache_on);
  QueryOptions options = ModeOptions(policy, dop);
  // Warm-up fills the cache (when enabled) from the base table.
  MustQuery(db, kVpctSql, options);
  MustQuery(db, kHpctSql, options);

  std::vector<double> query_ms, append_ms;
  for (const Table& delta : deltas) {
    pctagg::Stopwatch append_timer;
    Result<pctagg::AppendOutcome> outcome = db.AppendRows("sales", delta,
                                                          options);
    append_ms.push_back(append_timer.ElapsedMillis());
    if (!outcome.ok()) {
      std::fprintf(stderr, "append failed: %s\n",
                   outcome.status().ToString().c_str());
      std::abort();
    }
    for (const char* sql : {kVpctSql, kHpctSql}) {
      pctagg::Stopwatch timer;
      MustQuery(db, sql, options);
      query_ms.push_back(timer.ElapsedMillis());
    }
  }

  ModeResult result;
  for (double ms : query_ms) result.mean_query_ms += ms;
  result.mean_query_ms /= static_cast<double>(query_ms.size());
  for (double ms : append_ms) result.mean_append_ms += ms;
  result.mean_append_ms /= static_cast<double>(append_ms.size());
  std::vector<double> all = query_ms;
  all.insert(all.end(), append_ms.begin(), append_ms.end());
  std::sort(all.begin(), all.end());
  result.p99_ms = all[(all.size() * 99 + 99) / 100 - 1];
  return result;
}

template <typename Fn>
ModeResult BestOf(size_t reps, Fn&& fn) {
  ModeResult best = fn();
  for (size_t i = 1; i < reps; ++i) {
    ModeResult r = fn();
    if (r.mean_query_ms < best.mean_query_ms) best = r;
  }
  return best;
}

// salesAmt rounded to whole numbers: integer-valued doubles sum exactly, so
// merged and recomputed summaries agree bit for bit (see property test P7).
Table Quantized(const Table& src) {
  Table t(src.schema());
  t.Reserve(src.num_rows());
  const size_t amt = src.schema().FindColumn("salesAmt").value();
  std::vector<Value> row;
  row.reserve(src.num_columns());
  for (size_t r = 0; r < src.num_rows(); ++r) {
    row.clear();
    for (size_t c = 0; c < src.num_columns(); ++c) {
      Value v = src.column(c).GetValue(r);
      if (c == amt && !v.is_null()) {
        v = Value::Float64(std::round(v.AsDouble()));
      }
      row.push_back(std::move(v));
    }
    t.AppendRow(row);
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  size_t rows = EnvSize("PCTAGG_APPEND_BENCH_ROWS", smoke ? 20000 : 500000);
  size_t reps = EnvSize("PCTAGG_APPEND_BENCH_REPS", smoke ? 1 : 3);
  size_t num_cores = std::thread::hardware_concurrency();

  std::fprintf(stderr,
               "[setup] generating sales n=%zu + %zu append batches of 1%% "
               "(cores=%zu)...\n",
               rows, kRounds, num_cores);
  Table base = pctagg::GenerateSales(rows);
  const size_t batch = std::max<size_t>(rows / 100, 1);
  std::vector<Table> deltas;
  deltas.reserve(kRounds);
  for (size_t i = 0; i < kRounds; ++i) {
    deltas.push_back(pctagg::GenerateSales(batch, /*seed=*/977 + i));
  }

  struct Mode {
    const char* name;
    AppendPolicy policy;
    bool cache_on;
    size_t dop;
  };
  const Mode kModes[] = {
      {"delta-merge", AppendPolicy::kMerge, true, 1},
      {"delta-merge", AppendPolicy::kMerge, true, 4},
      {"recompute", AppendPolicy::kRecompute, true, 1},
      {"recompute", AppendPolicy::kRecompute, true, 4},
      {"cache-off", AppendPolicy::kRecompute, false, 1},
  };
  ModeResult results[sizeof(kModes) / sizeof(kModes[0])];
  std::string mode_json;
  for (size_t m = 0; m < sizeof(kModes) / sizeof(kModes[0]); ++m) {
    const Mode& mode = kModes[m];
    results[m] = BestOf(reps, [&] {
      return RunMode(base, deltas, mode.policy, mode.cache_on, mode.dop);
    });
    std::fprintf(stderr,
                 "[%s dop=%zu] query mean %.3f ms, p99 %.3f ms, "
                 "append mean %.3f ms\n",
                 mode.name, mode.dop, results[m].mean_query_ms,
                 results[m].p99_ms, results[m].mean_append_ms);
    mode_json += StrFormat(
        "    {\"name\": \"%s\", \"dop\": %zu, \"query_mean_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"append_mean_ms\": %.3f}%s\n",
        mode.name, mode.dop, results[m].mean_query_ms, results[m].p99_ms,
        results[m].mean_append_ms,
        m + 1 == sizeof(kModes) / sizeof(kModes[0]) ? "" : ",");
  }
  const ModeResult& merge1 = results[0];
  const ModeResult& merge4 = results[1];
  const ModeResult& recompute1 = results[2];
  const ModeResult& recompute4 = results[3];
  const double speedup1 = recompute1.mean_query_ms / merge1.mean_query_ms;
  const double speedup4 = recompute4.mean_query_ms / merge4.mean_query_ms;
  std::fprintf(stderr, "[headline] steady-state speedup vs recompute: "
               "%.2fx (dop=1), %.2fx (dop=4)\n", speedup1, speedup4);

  // --- Correctness: quantized data, final state bit-for-bit vs recompute.
  std::fprintf(stderr, "[check] quantized merged-vs-fresh identity...\n");
  Table qbase = Quantized(base);
  std::vector<Table> qdeltas;
  for (const Table& d : deltas) qdeltas.push_back(Quantized(d));
  Table qfull = qbase;
  for (const Table& d : qdeltas) {
    if (!pctagg::InsertInto(&qfull, d).ok()) std::abort();
  }
  bool identical = true;
  for (size_t dop : {size_t{1}, size_t{4}}) {
    QueryOptions options = ModeOptions(AppendPolicy::kMerge, dop);
    PctDatabase merged_db, fresh_db;
    if (!merged_db.CreateTable("sales", qbase).ok() ||
        !fresh_db.CreateTable("sales", qfull).ok()) {
      std::abort();
    }
    merged_db.EnableSummaryCache(true);
    fresh_db.EnableSummaryCache(true);
    MustQuery(merged_db, kVpctSql, options);
    MustQuery(merged_db, kHpctSql, options);
    for (const Table& d : qdeltas) {
      if (!merged_db.AppendRows("sales", d, options).ok()) std::abort();
    }
    for (const char* sql : {kVpctSql, kHpctSql}) {
      const std::string got =
          pctagg::FormatCsv(MustQuery(merged_db, sql, options));
      const std::string want =
          pctagg::FormatCsv(MustQuery(fresh_db, sql, options));
      if (got != want) {
        std::fprintf(stderr,
                     "[check] FAIL: dop=%zu merged result differs from "
                     "recompute\n%s\n",
                     dop, sql);
        identical = false;
      }
    }
  }
  std::fprintf(stderr, "[check] merged vs recompute identical: %s\n",
               identical ? "yes" : "NO");

  std::string json = StrFormat(
      "{\n"
      "  \"benchmark\": \"append_delta\",\n"
      "  \"rows\": %zu,\n"
      "  \"batch_rows\": %zu,\n"
      "  \"rounds\": %zu,\n"
      "  \"num_cores\": %zu,\n"
      "  \"repetitions\": %zu,\n"
      "  \"aggregate\": {\n"
      "    \"seed_reference_ms\": %.3f,\n"
      "    \"dop1_regression_pct\": %.2f,\n"
      "    \"dop\": [\n"
      "      {\"dop\": 1, \"ms\": %.3f, \"speedup_vs_seed\": %.3f},\n"
      "      {\"dop\": 4, \"ms\": %.3f, \"speedup_vs_seed\": %.3f}\n"
      "    ]\n"
      "  },\n"
      "  \"modes\": [\n%s  ],\n"
      "  \"checks\": {\n"
      "    \"merged_vs_recompute_identical\": %s\n"
      "  }\n"
      "}\n",
      rows, batch, kRounds, num_cores, reps, recompute1.mean_query_ms,
      (merge1.mean_query_ms - recompute1.mean_query_ms) /
          recompute1.mean_query_ms * 100.0,
      merge1.mean_query_ms, speedup1, merge4.mean_query_ms, speedup4,
      mode_json.c_str(), identical ? "true" : "false");

  std::fputs(json.c_str(), stdout);
  FILE* f = std::fopen("BENCH_append.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote BENCH_append.json\n");
  }
  if (!identical) return 1;
  if (!smoke && speedup1 < 3.0) {
    std::fprintf(stderr,
                 "FAIL: dop=1 steady-state speedup %.2fx is under the 3x "
                 "acceptance bar\n",
                 speedup1);
    return 1;
  }
  return 0;
}
