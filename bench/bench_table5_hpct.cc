// Reproduces SIGMOD 2004 Table 5: "Comparing query optimization strategies
// for Hpct()" — computing the horizontal percentages from the vertical
// result FV versus directly from F.
//
// The CASE transposition runs in its un-optimized O(N)-per-row form (the
// behaviour of the paper's DBMS); the proposed hash-dispatch optimization is
// benchmarked separately in bench_ablation_dispatch.
//
// Expected shape (paper): from-F wins for one or two low-selectivity BY
// columns; from-FV wins when BY columns multiply into many result columns
// (employee age x marstatus; sales dept[,store] x dweek x monthNo), because
// FV is much smaller than F and the expensive N-way CASE runs over FV only.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using pctagg::HorizontalMethod;
using pctagg::HorizontalStrategy;
using pctagg_bench::MustRunHorizontal;

struct QueryShape {
  const char* label;
  const char* sql;
  bool on_sales;
};

// The Table 5 rows: GROUP BY columns in italics in the paper = D1..Dj here;
// the BY list is the transposed dimension set.
const QueryShape kQueries[] = {
    {"employee/by_gender", "SELECT Hpct(salary BY gender) FROM employee",
     false},
    {"employee/gender_by_marstatus",
     "SELECT gender, Hpct(salary BY marstatus) FROM employee GROUP BY gender",
     false},
    {"employee/gender_by_educat_marstatus",
     "SELECT gender, Hpct(salary BY educat, marstatus) FROM employee "
     "GROUP BY gender",
     false},
    {"employee/gender_educat_by_age_marstatus",
     "SELECT gender, educat, Hpct(salary BY age, marstatus) FROM employee "
     "GROUP BY gender, educat",
     false},
    {"sales/by_dweek", "SELECT Hpct(salesAmt BY dweek) FROM sales", true},
    {"sales/monthNo_by_dweek",
     "SELECT monthNo, Hpct(salesAmt BY dweek) FROM sales GROUP BY monthNo",
     true},
    {"sales/dept_by_dweek_monthNo",
     "SELECT dept, Hpct(salesAmt BY dweek, monthNo) FROM sales "
     "GROUP BY dept",
     true},
    {"sales/dept_store_by_dweek_monthNo",
     "SELECT dept, store, Hpct(salesAmt BY dweek, monthNo) FROM sales "
     "GROUP BY dept, store",
     true},
};

void BM_Table5(benchmark::State& state) {
  const QueryShape& q = kQueries[state.range(0)];
  HorizontalStrategy strategy;
  strategy.method = state.range(1) == 0 ? HorizontalMethod::kCaseFromFV
                                        : HorizontalMethod::kCaseDirect;
  strategy.hash_dispatch = false;  // the DBMS's O(N) CASE evaluation
  if (q.on_sales) {
    pctagg_bench::EnsureSales();
  } else {
    pctagg_bench::EnsureEmployee();
  }
  for (auto _ : state) {
    MustRunHorizontal(q.sql, strategy);
  }
}

void RegisterAll() {
  for (size_t qi = 0; qi < std::size(kQueries); ++qi) {
    for (int mode = 0; mode <= 1; ++mode) {
      std::string name = std::string("Table5/") + kQueries[qi].label +
                         (mode == 0 ? "/from_FV" : "/from_F");
      benchmark::RegisterBenchmark(name.c_str(), BM_Table5)
          ->Args({static_cast<long>(qi), mode})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "SIGMOD 2004 Table 5 reproduction: Hpct() computed from FV vs "
      "directly from F.\n\n");
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
