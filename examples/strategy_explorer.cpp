// Strategy explorer: run one percentage query under every evaluation
// strategy the paper studies, print the generated SQL scripts and the
// wall-clock times side by side — a miniature of the paper's Section 4.
//
//   $ ./build/examples/strategy_explorer [rows]   (default 200000)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stopwatch.h"
#include "pctagg.h"
#include "workload/generators.h"

namespace {

double TimeVpct(pctagg::PctDatabase* db, const std::string& sql,
                const pctagg::VpctStrategy& strategy) {
  pctagg::Stopwatch sw;
  auto r = db->QueryVpct(sql, strategy);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return sw.ElapsedMillis();
}

double TimeHorizontal(pctagg::PctDatabase* db, const std::string& sql,
                      const pctagg::HorizontalStrategy& strategy) {
  pctagg::Stopwatch sw;
  auto r = db->QueryHorizontal(sql, strategy);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return sw.ElapsedMillis();
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 200000;
  std::printf("Generating sales with n = %zu rows...\n\n", n);
  pctagg::PctDatabase db;
  if (!db.CreateTable("sales", pctagg::GenerateSales(n)).ok()) return 1;

  const std::string vpct_sql =
      "SELECT dept, dweek, monthNo, Vpct(salesAmt BY dweek, monthNo) AS pct "
      "FROM sales GROUP BY dept, dweek, monthNo";

  std::printf("Query: %s\n\n", vpct_sql.c_str());
  std::printf("Generated script under the recommended strategy:\n%s\n",
              db.Explain(vpct_sql)->c_str());

  struct VpctRow {
    const char* label;
    pctagg::VpctStrategy strategy;
  };
  VpctRow vpct_rows[] = {
      {"best (index + insert + Fj-from-Fk)", {}},
      {"mismatched indexes", {}},
      {"UPDATE instead of INSERT", {}},
      {"Fj from F (second scan)", {}},
  };
  vpct_rows[1].strategy.matching_indexes = false;
  vpct_rows[2].strategy.insert_result = false;
  vpct_rows[3].strategy.fj_from_fk = false;

  std::printf("%-40s %12s\n", "Vpct strategy (paper Table 4 knobs)", "ms");
  for (const VpctRow& row : vpct_rows) {
    double ms = TimeVpct(&db, vpct_sql, row.strategy);
    std::printf("%-40s %12.1f\n", row.label, ms);
  }

  pctagg::Stopwatch sw;
  auto olap = db.QueryOlapBaseline(vpct_sql);
  if (olap.ok()) {
    std::printf("%-40s %12.1f\n\n", "ANSI OLAP window baseline (Table 6)",
                sw.ElapsedMillis());
  }

  const std::string hpct_sql =
      "SELECT dept, Hpct(salesAmt BY dweek, monthNo) FROM sales "
      "GROUP BY dept";
  struct HRow {
    const char* label;
    pctagg::HorizontalStrategy strategy;
  };
  HRow h_rows[] = {
      {"CASE direct from F (hash dispatch)", {}},
      {"CASE direct from F (naive O(N) CASE)", {}},
      {"CASE from FV", {}},
      {"SPJ direct from F", {}},
      {"SPJ from FV", {}},
  };
  h_rows[1].strategy.hash_dispatch = false;
  h_rows[2].strategy.method = pctagg::HorizontalMethod::kCaseFromFV;
  h_rows[3].strategy.method = pctagg::HorizontalMethod::kSpjDirect;
  h_rows[4].strategy.method = pctagg::HorizontalMethod::kSpjFromFV;

  std::printf("%-40s %12s\n", "Hpct strategy (Table 5 / DMKD Table 3)", "ms");
  for (const HRow& row : h_rows) {
    double ms = TimeHorizontal(&db, hpct_sql, row.strategy);
    std::printf("%-40s %12.1f\n", row.label, ms);
  }
  return 0;
}
