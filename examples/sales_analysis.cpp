// Reproduces the worked examples of the SIGMOD 2004 paper:
//   * Table 1 -> Table 2: Vpct(salesAmt BY city) per state.
//   * Table 3: Hpct(salesAmt BY dweek) per store, with a 0% Monday hole.
//   * The missing-rows treatments of Section 3.1.
//
//   $ ./build/examples/sales_analysis

#include <cstdio>

#include "pctagg.h"
#include "workload/generators.h"

int main() {
  pctagg::PctDatabase db;
  if (!db.CreateTable("sales", pctagg::PaperExampleSales()).ok()) return 1;
  if (!db.CreateTable("storeSales", pctagg::PaperExampleStoreSales()).ok()) {
    return 1;
  }

  std::printf("== Paper Table 1: the fact table F ==\n%s\n",
              db.catalog().GetTable("sales").value()->ToString().c_str());

  // Table 2: percentage each city contributed to its state.
  auto table2 = db.Query(
      "SELECT state, city, Vpct(salesAmt BY city) AS pct "
      "FROM sales GROUP BY state, city ORDER BY state, city");
  if (!table2.ok()) {
    std::fprintf(stderr, "%s\n", table2.status().ToString().c_str());
    return 1;
  }
  std::printf("== Paper Table 2: Vpct(salesAmt BY city) ==\n%s\n",
              table2->ToString().c_str());

  // Table 3: day-of-week shares per store, horizontal form. Store 4 has no
  // Monday transactions — the 0%% appears as a column value, not as a
  // missing row.
  auto table3 = db.Query(
      "SELECT store, Hpct(salesAmt BY dweek), sum(salesAmt) AS totalSales "
      "FROM storeSales GROUP BY store ORDER BY store");
  if (!table3.ok()) {
    std::fprintf(stderr, "%s\n", table3.status().ToString().c_str());
    return 1;
  }
  std::printf("== Paper Table 3: Hpct(salesAmt BY dweek) ==\n%s\n",
              table3->ToString().c_str());

  // Section 3.1, missing rows: in vertical form, store 4 simply has no
  // Monday row...
  auto vertical = db.Query(
      "SELECT store, dweek, Vpct(salesAmt BY dweek) AS pct "
      "FROM storeSales GROUP BY store, dweek ORDER BY store, dweek");
  std::printf("== Vertical form: store 4 has only 6 rows ==\n%s\n",
              vertical->ToString(25).c_str());

  // ...unless the post-processing option inserts the missing combinations.
  pctagg::VpctStrategy post;
  post.missing_rows = pctagg::MissingRowPolicy::kPostProcess;
  post.order_result = true;
  auto uniform = db.QueryVpct(
      "SELECT store, dweek, Vpct(salesAmt BY dweek) AS pct "
      "FROM storeSales GROUP BY store, dweek",
      post);
  std::printf(
      "== With missing-row post-processing: uniform 7 rows per store ==\n"
      "%s\n",
      uniform->ToString(25).c_str());
  return 0;
}
