// Quickstart: create a table, run a vertical and a horizontal percentage
// query, and look at the SQL the framework generates under the hood.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "pctagg.h"

namespace {

pctagg::Table BuildSales() {
  pctagg::Table t(pctagg::Schema({{"region", pctagg::DataType::kString},
                                  {"product", pctagg::DataType::kString},
                                  {"amount", pctagg::DataType::kFloat64}}));
  using pctagg::Value;
  struct Row {
    const char* region;
    const char* product;
    double amount;
  };
  const Row rows[] = {
      {"east", "widget", 120}, {"east", "widget", 80}, {"east", "gadget", 200},
      {"west", "widget", 60},  {"west", "gadget", 90}, {"west", "gadget", 150},
      {"west", "gizmo", 100},
  };
  for (const Row& r : rows) {
    t.AppendRow({Value::String(r.region), Value::String(r.product),
                 Value::Float64(r.amount)});
  }
  return t;
}

}  // namespace

int main() {
  pctagg::PctDatabase db;
  if (!db.CreateTable("sales", BuildSales()).ok()) return 1;

  // 1. Vertical percentages: what share of its region does each product
  //    contribute? One row per percentage, like standard aggregates.
  auto vertical = db.Query(
      "SELECT region, product, Vpct(amount BY product) AS pct "
      "FROM sales GROUP BY region, product ORDER BY region, product");
  if (!vertical.ok()) {
    std::fprintf(stderr, "error: %s\n", vertical.status().ToString().c_str());
    return 1;
  }
  std::printf("Vertical percentages (Vpct):\n%s\n",
              vertical->ToString().c_str());

  // 2. Horizontal percentages: the same shares, one region per row with all
  //    of its percentages adding to 100%% — data-mining-ready tabular form.
  auto horizontal = db.Query(
      "SELECT region, Hpct(amount BY product), sum(amount) AS total "
      "FROM sales GROUP BY region ORDER BY region");
  if (!horizontal.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 horizontal.status().ToString().c_str());
    return 1;
  }
  std::printf("Horizontal percentages (Hpct):\n%s\n",
              horizontal->ToString().c_str());

  // 3. The framework is a SQL code generator at heart: inspect the
  //    multi-statement script the optimizer would run for the Vpct query.
  auto script = db.Explain(
      "SELECT region, product, Vpct(amount BY product) AS pct "
      "FROM sales GROUP BY region, product");
  if (script.ok()) {
    std::printf("Generated evaluation script:\n%s\n", script->c_str());
  }
  return 0;
}
