// Data-mining data preparation with horizontal aggregations (the DMKD 2004
// companion use case): build a point-per-row tabular data set from a
// normalized transaction table, code categoricals as binary dimensions, and
// feed the result straight into a small k-means clusterer implemented on top
// of the same Table API.
//
//   $ ./build/examples/datamining_prep

#include <cmath>
#include <cstdio>
#include <vector>

#include "pctagg.h"
#include "workload/generators.h"

namespace {

// Minimal k-means over the numeric cell columns of a horizontal result: the
// kind of consumer the paper builds these tabular data sets for.
struct KMeansResult {
  std::vector<int> assignment;
  std::vector<std::vector<double>> centroids;
};

KMeansResult KMeans(const pctagg::Table& t, size_t first_col, int k,
                    int iterations) {
  size_t dims = t.num_columns() - first_col;
  size_t n = t.num_rows();
  std::vector<std::vector<double>> points(n, std::vector<double>(dims, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dims; ++d) {
      const pctagg::Column& c = t.column(first_col + d);
      points[i][d] = c.IsNull(i) ? 0.0 : c.NumericAt(i);
    }
  }
  KMeansResult result;
  result.assignment.assign(n, 0);
  result.centroids.assign(k, std::vector<double>(dims, 0.0));
  for (int c = 0; c < k; ++c) result.centroids[c] = points[c % n];
  for (int it = 0; it < iterations; ++it) {
    for (size_t i = 0; i < n; ++i) {
      double best = 1e300;
      for (int c = 0; c < k; ++c) {
        double d2 = 0;
        for (size_t d = 0; d < dims; ++d) {
          double diff = points[i][d] - result.centroids[c][d];
          d2 += diff * diff;
        }
        if (d2 < best) {
          best = d2;
          result.assignment[i] = c;
        }
      }
    }
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0.0));
    std::vector<int> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      counts[result.assignment[i]]++;
      for (size_t d = 0; d < dims; ++d) {
        sums[result.assignment[i]][d] += points[i][d];
      }
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (size_t d = 0; d < dims; ++d) {
        result.centroids[c][d] = sums[c][d] / counts[c];
      }
    }
  }
  return result;
}

}  // namespace

int main() {
  pctagg::PctDatabase db;
  if (!db.CreateTable("transactionLine",
                      pctagg::GenerateTransactionLine(50000))
           .ok()) {
    return 1;
  }
  if (!db.CreateTable("employee", pctagg::GenerateEmployee(5000)).ok()) {
    return 1;
  }

  // 1. The DMKD flagship query: one store per row — day-of-week sales,
  //    per-day transaction counts, and total sales.
  auto stores = db.Query(
      "SELECT storeId, sum(salesAmt BY dayOfWeekNo) AS amt, "
      "count(DISTINCT rid BY dayOfWeekNo) AS txn, sum(salesAmt) AS total "
      "FROM transactionLine GROUP BY storeId ORDER BY storeId");
  if (!stores.ok()) {
    std::fprintf(stderr, "%s\n", stores.status().ToString().c_str());
    return 1;
  }
  std::printf("== Tabular store data set (first rows) ==\n%s\n",
              stores->ToString(6).c_str());

  // 2. Percentages are the better clustering features (common scale):
  //    cluster stores by their weekly sales *profile*.
  auto profiles = db.Query(
      "SELECT storeId, Hpct(salesAmt BY dayOfWeekNo) "
      "FROM transactionLine GROUP BY storeId ORDER BY storeId");
  if (!profiles.ok()) {
    std::fprintf(stderr, "%s\n", profiles.status().ToString().c_str());
    return 1;
  }
  KMeansResult clusters = KMeans(*profiles, 1, 3, 20);
  std::printf("== K-means (k=3) on Hpct weekly profiles ==\n");
  for (int c = 0; c < 3; ++c) {
    int size = 0;
    for (int a : clusters.assignment) size += a == c;
    std::printf("  cluster %d: %d stores; centroid Mon..Sun =", c, size);
    for (double v : clusters.centroids[c]) std::printf(" %.3f", v);
    std::printf("\n");
  }
  std::printf("\n");

  // 3. Binary coding of categorical attributes (DMKD Table 2):
  //    sum(1 BY gender, marstatus DEFAULT 0) gives one 0/1 column per
  //    combination — regression-ready.
  auto coded = db.Query(
      "SELECT rid, max(1 BY gender, marstatus DEFAULT 0), "
      "sum(salary) AS salary FROM employee GROUP BY rid ORDER BY rid");
  if (!coded.ok()) {
    std::fprintf(stderr, "%s\n", coded.status().ToString().c_str());
    return 1;
  }
  std::printf("== Binary-coded gender x marstatus (first rows) ==\n%s\n",
              coded->ToString(5).c_str());

  // 4. Wide results get vertically partitioned to respect column limits.
  auto wide = db.Query(
      "SELECT storeId, sum(salesAmt BY subdeptId) FROM transactionLine "
      "GROUP BY storeId");
  if (wide.ok()) {
    auto parts = pctagg::VerticallyPartition(*wide, {"storeId"}, 40);
    if (parts.ok()) {
      std::printf(
          "== Column-limit handling: %zu-column result split into %zu "
          "partitions of <= 40 columns ==\n",
          wide->num_columns(), parts->size());
    }
  }
  return 0;
}
