// Star-schema workflow (DMKD Section 2): the fact table references dimension
// lookup tables by foreign key; the data set for analysis is built by
// joining and denormalizing first ("F represents a temporary table or a view
// based on some complex SQL query joining several tables"), then running
// percentage queries against the denormalized F.
//
//   $ ./build/examples/star_schema

#include <cstdio>

#include "pctagg.h"
#include "workload/generators.h"

namespace {

using pctagg::Column;
using pctagg::DataType;
using pctagg::JoinKind;
using pctagg::JoinOutput;
using pctagg::Schema;
using pctagg::Table;
using pctagg::Value;

// Dimension lookup table: dayOfWeekNo -> dayName.
Table BuildDayOfWeekDim() {
  Table t(Schema({{"dayOfWeekNo", DataType::kInt64},
                  {"dayName", DataType::kString}}));
  const char* names[] = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  for (int64_t d = 1; d <= 7; ++d) {
    t.AppendRow({Value::Int64(d), Value::String(names[d - 1])});
  }
  return t;
}

// Dimension lookup table: regionId -> regionName.
Table BuildRegionDim() {
  Table t(Schema({{"regionId", DataType::kInt64},
                  {"regionName", DataType::kString}}));
  const char* names[] = {"north", "south", "east", "west"};
  for (int64_t r = 0; r < 4; ++r) {
    t.AppendRow({Value::Int64(r), Value::String(names[r])});
  }
  return t;
}

}  // namespace

int main() {
  pctagg::PctDatabase db;
  if (!db.CreateTable("transactionLine",
                      pctagg::GenerateTransactionLine(40000))
           .ok()) {
    return 1;
  }

  // 1. Denormalize: join the fact table with its dimension lookups. The
  //    engine's join operators build the analysis view the paper's queries
  //    assume ("FROM transactionLine, DimDayOfWeek ... WHERE ...").
  Table days = BuildDayOfWeekDim();
  Table regions = BuildRegionDim();
  const Table* fact = db.catalog().GetTable("transactionLine").value();
  std::vector<JoinOutput> outputs;
  for (size_t c = 0; c < fact->num_columns(); ++c) {
    outputs.push_back(JoinOutput::Left(fact->schema().column(c).name));
  }
  outputs.push_back(JoinOutput::Right("dayName"));
  auto with_days = pctagg::HashJoin(*fact, days, {"dayOfWeekNo"},
                                    {"dayOfWeekNo"}, JoinKind::kInner, outputs);
  if (!with_days.ok()) return 1;
  std::vector<JoinOutput> outputs2;
  for (size_t c = 0; c < with_days->num_columns(); ++c) {
    outputs2.push_back(
        JoinOutput::Left(with_days->schema().column(c).name));
  }
  outputs2.push_back(JoinOutput::Right("regionName"));
  auto denormalized =
      pctagg::HashJoin(*with_days, regions, {"regionId"}, {"regionId"},
                       JoinKind::kInner, outputs2);
  if (!denormalized.ok()) return 1;
  if (!db.CreateTable("f", std::move(*denormalized)).ok()) return 1;

  // 2. Percentage queries run against the denormalized view, producing
  //    human-readable dimension values in the result columns.
  auto profile = db.Query(
      "SELECT regionName, Hpct(salesAmt BY dayName) "
      "FROM f GROUP BY regionName ORDER BY regionName");
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  std::printf("== Day-of-week sales profile per region ==\n%s\n",
              profile->ToString().c_str());

  // 3. CREATE TABLE AS materializes intermediate results for reuse: a
  //    pre-filtered F for weekend analysis.
  if (!db.CreateTableAs("weekend",
                        "SELECT regionName, dayName, storeId, salesAmt "
                        "FROM f WHERE dayName = 'Sat' OR dayName = 'Sun'")
           .ok()) {
    return 1;
  }
  auto weekend = db.Query(
      "SELECT regionName, dayName, Vpct(salesAmt BY dayName) AS pct "
      "FROM weekend GROUP BY regionName, dayName "
      "ORDER BY regionName, dayName");
  if (!weekend.ok()) {
    std::fprintf(stderr, "%s\n", weekend.status().ToString().c_str());
    return 1;
  }
  std::printf("== Saturday vs Sunday share per region (weekend only) ==\n%s\n",
              weekend->ToString().c_str());
  return 0;
}
